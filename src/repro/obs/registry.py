"""Instrument-style metrics: counters, gauges, histograms.

The kernel's :class:`~repro.sim.metrics.MetricRecorder` stores full
timestamped series — right for post-hoc analysis, wrong for hot paths
(every sample is two list appends) and wrong for distributions (a MAC
backoff histogram at 10,000 nodes must not retain every draw).  The
:class:`MetricsRegistry` holds fixed-size *instruments* instead: a counter
is one float, a histogram is a handful of bucket counts.  Hot paths cache
the instrument object once and pay an attribute update per event.

The registry is what :mod:`repro.net` (packets tx/rx/dropped, MAC
backoffs, per-router control overhead) and :mod:`repro.faults`
(injections, recoveries) report into; :meth:`MetricsRegistry.as_records`
streams the state to sinks for ``repro.obs report``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Prometheus-style latency buckets (seconds): ~100 µs to 10 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self.value}

    def state(self) -> Dict[str, Any]:
        """Mergeable raw state (see :func:`repro.obs.merge.merge_metrics`)."""
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, live nodes, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "value": self.value}

    def state(self) -> Dict[str, Any]:
        """Mergeable raw state (see :func:`repro.obs.merge.merge_metrics`)."""
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket distribution: O(len(buckets)) memory forever.

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or in the overflow bucket.  Quantiles are
    estimated by linear interpolation inside the winning bucket, which is
    as good as fixed buckets allow and plenty for hot-path triage.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bucket whose bound is >= value; len(buckets) == overflow.
        # (bisect_left: everything before the insertion point is < value.)
        self.counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo = self.buckets[i - 1] if i > 0 else min(self.min, self.buckets[0])
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                frac = (target - cumulative) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            cumulative += bucket_count
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "histogram", "name": self.name, **self.summary()}

    def state(self) -> Dict[str, Any]:
        """Mergeable raw state: bucket bounds and counts, not quantile
        estimates — per-shard p95s cannot be combined, bucket counts can
        (see :func:`repro.obs.merge.merge_metrics`)."""
        return {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instruments; one registry per simulator.

    Instruments are created on first access and cached by callers, so a
    hot path costs one bounds-free attribute update per event.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return inst

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """State of every instrument, keyed by name."""
        out: Dict[str, Dict[str, Any]] = {}
        for store in (self._counters, self._gauges, self._histograms):
            for name, inst in store.items():
                out[name] = inst.as_dict()
        return out

    def state(self) -> Dict[str, Dict[str, Any]]:
        """Raw mergeable state of every instrument, keyed by name.

        Unlike :meth:`snapshot` (display summaries), this preserves what
        cross-shard merging needs: histogram bucket counts rather than
        interpolated quantiles.  Feed a list of these to
        :func:`repro.obs.merge.merge_metrics`.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for store in (self._counters, self._gauges, self._histograms):
            for name, inst in store.items():
                out[name] = inst.state()
        return out

    def as_records(self) -> List[Dict[str, Any]]:
        """Sink-ready records (``{"type": "metric", ...}``), name-sorted."""
        snap = self.snapshot()
        return [{"type": "metric", **snap[name]} for name in sorted(snap)]
