"""Deterministic cross-process trace and metrics merging.

Each shard of a sharded run (:mod:`repro.shard`) records its own
:class:`~repro.sim.trace.TraceLog` and :class:`~repro.obs.registry.
MetricsRegistry`; this module merges those per-shard streams into one
canonical stream and fingerprints it so a sharded run can be compared
bit-for-bit against a serial one.

Two layers of determinism:

* :func:`merge_traces` stable-sorts on ``(time, shard, local uid)`` — the
  local uid is each record's index in its shard's stream, so the merged
  order is reproducible no matter which worker finished first.
* :func:`merged_fingerprint` hashes a *canonical multiset* of records —
  sorted by ``(rounded time, category, fields)`` with shard-identifying
  fields stripped — because the relative order of same-timestamp records
  from different shards is an artifact of the partition, not of the model.
  Serial and sharded runs of the same world therefore hash identically.

:func:`merge_metrics` is the registry counterpart: counters sum across
shards (each shard observed disjoint work), *replicated* counters — fault
processes run identically in every replica — take the max instead of
multiply-counting, gauges take the max, and histograms merge bucket-wise,
which is exact because every shard uses the same bucket bounds.
:func:`payload_to_records` decodes the binary trace payload a shard ships
(:meth:`~repro.sim.trace.TraceLog.packed_payload`) into the dicts the
trace merge consumes.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.telemetry import BinaryTraceRing

__all__ = [
    "merge_traces",
    "merged_fingerprint",
    "merge_metrics",
    "payload_to_records",
]

#: Bookkeeping fields stamped by the merge itself (plus the NDJSON ``type``
#: tag); stripped before fingerprinting so serial streams hash the same.
MERGE_FIELDS = ("shard", "uid", "type")


def _as_dict(record: Any) -> Dict[str, Any]:
    """Normalize a TraceRecord or mapping into a plain field dict."""
    if isinstance(record, Mapping):
        return dict(record)
    # repro.sim.trace.TraceRecord (or anything shaped like it).
    out = {"time": record.time, "category": record.category}
    out.update(dict(record.fields))
    return out


def merge_traces(
    shard_streams: Sequence[Iterable[Any]],
) -> List[Dict[str, Any]]:
    """Merge per-shard trace streams into one deterministic stream.

    ``shard_streams[i]`` is shard ``i``'s records in emission order
    (:class:`~repro.sim.trace.TraceRecord` objects or dicts with ``time``
    and ``category`` keys).  Each merged record gains ``shard`` (stream
    index) and ``uid`` (position within its stream), and the result is
    stable-sorted on ``(time, shard, uid)`` — a total order independent
    of worker completion timing.
    """
    merged: List[Dict[str, Any]] = []
    for shard, stream in enumerate(shard_streams):
        for uid, record in enumerate(stream):
            rec = _as_dict(record)
            rec["shard"] = shard
            rec["uid"] = uid
            merged.append(rec)
    merged.sort(key=lambda r: (r["time"], r["shard"], r["uid"]))
    return merged


def _canonical_entry(
    rec: Dict[str, Any], exclude: Tuple[str, ...]
) -> Tuple[float, str, Tuple[Tuple[str, Any], ...]]:
    fields = tuple(
        sorted(
            (k, v)
            for k, v in rec.items()
            if k not in ("time", "category") and k not in exclude
        )
    )
    return (round(rec["time"], 9), rec["category"], fields)


def merged_fingerprint(
    records: Iterable[Any],
    categories: Optional[Iterable[str]] = None,
    *,
    exclude_fields: Tuple[str, ...] = MERGE_FIELDS,
) -> str:
    """Content hash of a trace stream, invariant to shard layout.

    Records are canonicalized (time rounded to 9 decimals — sub-nanosecond
    float noise is not signal — shard bookkeeping fields stripped) and
    hashed as a *sorted multiset*, so two streams fingerprint equal iff
    they contain the same records regardless of same-timestamp interleave.
    Accepts TraceRecords, plain dicts, or the output of
    :func:`merge_traces`; pass ``categories`` to restrict the comparison.
    """
    wanted = set(categories) if categories is not None else None
    entries = []
    for record in records:
        rec = _as_dict(record)
        if wanted is not None and rec["category"] not in wanted:
            continue
        entries.append(_canonical_entry(rec, exclude_fields))
    entries.sort(key=repr)
    digest = hashlib.blake2b(digest_size=16)
    for entry in entries:
        digest.update(repr(entry).encode("utf-8"))
    return digest.hexdigest()


def payload_to_records(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Decode a shard's packed trace payload into merge-ready dicts.

    The inverse of :meth:`repro.sim.trace.TraceLog.packed_payload`: the
    per-record dicts a shard used to ship across the pipe, now built on
    the coordinator side only — the pipe carries one bytes blob.
    """
    ring = BinaryTraceRing.from_payload(dict(payload))
    records: List[Dict[str, Any]] = []
    for time, category, fields in ring.iter_tuples():
        rec = {"time": time, "category": category}
        rec.update(fields)
        records.append(rec)
    return records


def merge_metrics(
    states: Sequence[Mapping[str, Mapping[str, Any]]],
    *,
    replicated_prefixes: Tuple[str, ...] = (),
) -> Dict[str, Dict[str, Any]]:
    """Merge per-shard registry states into one.

    ``states[i]`` is shard ``i``'s
    :meth:`~repro.obs.registry.MetricsRegistry.state` dict.  Merge rules:

    * **counter** — summed; names starting with ``replicated_prefixes``
      (fault processes, replicated in every shard) take the max instead.
    * **gauge** — max (a point-in-time level; summing replicas of the
      same level would overstate it).
    * **histogram** — bucket counts, count, and total sum; min/max fold.
      Bucket bounds must agree across shards — same instrument, same
      world build — anything else is a config error, raised loudly.

    The result is shard-count invariant for deterministic worlds: a
    serial run and any sharded layout of the same world merge to the same
    state (up to gauges that measure the partition itself).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for state in states:
        for name, inst in state.items():
            kind = inst.get("kind")
            cur = merged.get(name)
            if cur is None:
                merged[name] = {k: (list(v) if isinstance(v, list) else v)
                                for k, v in inst.items()}
                continue
            if cur.get("kind") != kind:
                raise ValueError(
                    f"metric {name!r} has kind {cur.get('kind')!r} in one "
                    f"shard and {kind!r} in another"
                )
            if kind == "counter":
                if name.startswith(replicated_prefixes):
                    cur["value"] = max(cur["value"], inst["value"])
                else:
                    cur["value"] += inst["value"]
            elif kind == "gauge":
                cur["value"] = max(cur["value"], inst["value"])
            elif kind == "histogram":
                if list(cur["buckets"]) != list(inst["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ between "
                        "shards; cannot merge"
                    )
                cur["counts"] = [
                    a + b for a, b in zip(cur["counts"], inst["counts"])
                ]
                cur["count"] += inst["count"]
                cur["total"] += inst["total"]
                cur["min"] = min(cur["min"], inst["min"])
                cur["max"] = max(cur["max"], inst["max"])
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
    return merged
