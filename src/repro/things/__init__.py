"""The "things" of the IoBT: sensors, actuators, compute, humans, energy.

Assets wrap network nodes with battlefield semantics: an affiliation
(blue / red / gray), a capability profile, an energy budget, and attached
devices (sensors, actuators, compute elements) or a human-source model.
"""

from repro.things.asset import Affiliation, Asset, AssetInventory
from repro.things.capabilities import (
    CapabilityProfile,
    SensingModality,
    ActuationType,
    DEVICE_CLASSES,
    make_profile,
)
from repro.things.sensors import Sensor, Environment, Detection
from repro.things.actuators import Actuator, ActuationRequest, SafetyInterlock
from repro.things.compute import ComputeElement, ComputeTask
from repro.things.humans import HumanSource, Claim
from repro.things.energy import Battery

__all__ = [
    "Affiliation",
    "Asset",
    "AssetInventory",
    "CapabilityProfile",
    "SensingModality",
    "ActuationType",
    "DEVICE_CLASSES",
    "make_profile",
    "Sensor",
    "Environment",
    "Detection",
    "Actuator",
    "ActuationRequest",
    "SafetyInterlock",
    "ComputeElement",
    "ComputeTask",
    "HumanSource",
    "Claim",
    "Battery",
]
