"""Compute elements.

A :class:`ComputeElement` is a FLOPS-rated processor with a FIFO queue,
running on the simulation clock.  Edge clouds and on-board processors are
the same class at different ratings — heterogeneity is the point.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional
from collections import deque

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

__all__ = ["ComputeTask", "ComputeElement"]

_task_ids = itertools.count(1)


@dataclass
class ComputeTask:
    """A unit of computation: ``work_flops`` of processing."""

    work_flops: float
    on_done: Optional[Callable[["ComputeTask"], None]] = None
    label: str = ""
    uid: int = field(default_factory=lambda: next(_task_ids))
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def latency_s(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ComputeElement:
    """A FLOPS-rated processor with a bounded FIFO queue.

    Tasks beyond ``queue_capacity`` are rejected (returned False), which is
    what the saturation-protection experiments probe.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        flops: float,
        *,
        queue_capacity: int = 64,
    ):
        if flops <= 0:
            raise ConfigurationError("flops must be positive")
        self.sim = sim
        self.node_id = node_id
        self.flops = flops
        self.queue_capacity = queue_capacity
        self.queue: Deque[ComputeTask] = deque()
        self.running: Optional[ComputeTask] = None
        self.completed = 0
        self.rejected = 0
        self.busy_time_s = 0.0

    @property
    def queue_length(self) -> int:
        return len(self.queue) + (1 if self.running is not None else 0)

    def utilization(self, horizon_s: Optional[float] = None) -> float:
        span = horizon_s if horizon_s is not None else self.sim.now
        return self.busy_time_s / span if span > 0 else 0.0

    def submit(self, task: ComputeTask) -> bool:
        """Enqueue a task; False when the queue is saturated."""
        if len(self.queue) >= self.queue_capacity:
            self.rejected += 1
            return False
        task.submitted_at = self.sim.now
        self.queue.append(task)
        if self.running is None:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self.queue:
            self.running = None
            return
        task = self.queue.popleft()
        task.started_at = self.sim.now
        self.running = task
        duration = task.work_flops / self.flops
        self.busy_time_s += duration
        self.sim.call_in(duration, lambda: self._finish(task))

    def _finish(self, task: ComputeTask) -> None:
        task.finished_at = self.sim.now
        self.completed += 1
        if task.on_done is not None:
            task.on_done(task)
        self._start_next()

    def service_time_s(self, work_flops: float) -> float:
        return work_flops / self.flops

    def __repr__(self) -> str:
        return (
            f"ComputeElement(node={self.node_id}, {self.flops:.2e} FLOPS, "
            f"queued={self.queue_length})"
        )
