"""Capability profiles.

The paper stresses *extreme heterogeneity*: "from tiny occupancy sensors to
drones with three-dimensional Radar and LiDar sensors; from small on-board
compute devices to powerful edge clouds with GPUs".  A
:class:`CapabilityProfile` quantifies what a device can sense, actuate,
compute, store, and transmit; :data:`DEVICE_CLASSES` provides that spectrum
(capabilities spanning several orders of magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, FrozenSet

__all__ = [
    "SensingModality",
    "ActuationType",
    "CapabilityProfile",
    "DEVICE_CLASSES",
    "make_profile",
]


class SensingModality(Enum):
    OCCUPANCY = "occupancy"
    ACOUSTIC = "acoustic"
    SEISMIC = "seismic"
    CAMERA = "camera"
    RADAR = "radar"
    LIDAR = "lidar"
    RF = "rf"
    PHYSIOLOGICAL = "physiological"


class ActuationType(Enum):
    ALARM = "alarm"
    DOOR = "door"
    RELAY_DEPLOY = "relay_deploy"
    DEMOLITION = "demolition"
    VEHICLE = "vehicle"


@dataclass(frozen=True)
class CapabilityProfile:
    """What a device can do, in physical units.

    ``compute_flops`` and ``storage_bits`` span the paper's "many orders of
    magnitude"; sensing/actuation are capability sets with per-modality
    range.
    """

    device_class: str
    sensing: FrozenSet[SensingModality] = frozenset()
    sensing_range_m: float = 0.0
    actuation: FrozenSet[ActuationType] = frozenset()
    compute_flops: float = 0.0
    storage_bits: float = 0.0
    bandwidth_bps: float = 1.0e5
    tx_power_dbm: float = 10.0
    battery_j: float = 5.0e3
    mobile: bool = False
    disposable: bool = False

    def can_sense(self, modality: SensingModality) -> bool:
        return modality in self.sensing

    def can_actuate(self, kind: ActuationType) -> bool:
        return kind in self.actuation

    def with_overrides(self, **kwargs) -> "CapabilityProfile":
        return replace(self, **kwargs)


def _fs(*items):
    return frozenset(items)


#: The heterogeneity spectrum from the paper's Figure 2 narrative.
DEVICE_CLASSES: Dict[str, CapabilityProfile] = {
    "occupancy_tag": CapabilityProfile(
        device_class="occupancy_tag",
        sensing=_fs(SensingModality.OCCUPANCY),
        sensing_range_m=10.0,
        compute_flops=1.0e6,
        storage_bits=8.0e6,
        bandwidth_bps=2.0e4,
        tx_power_dbm=0.0,
        battery_j=1.0e3,
        disposable=True,
    ),
    "ground_sensor": CapabilityProfile(
        device_class="ground_sensor",
        sensing=_fs(SensingModality.SEISMIC, SensingModality.ACOUSTIC),
        sensing_range_m=150.0,
        compute_flops=1.0e8,
        storage_bits=1.0e9,
        bandwidth_bps=2.0e5,
        tx_power_dbm=10.0,
        battery_j=2.0e4,
    ),
    "camera_pole": CapabilityProfile(
        device_class="camera_pole",
        sensing=_fs(SensingModality.CAMERA),
        sensing_range_m=300.0,
        compute_flops=1.0e9,
        storage_bits=6.4e10,
        bandwidth_bps=2.0e6,
        tx_power_dbm=17.0,
        battery_j=2.0e5,
    ),
    "wearable": CapabilityProfile(
        device_class="wearable",
        sensing=_fs(SensingModality.PHYSIOLOGICAL, SensingModality.RF),
        sensing_range_m=30.0,
        compute_flops=5.0e8,
        storage_bits=3.2e10,
        bandwidth_bps=1.0e6,
        tx_power_dbm=10.0,
        battery_j=4.0e4,
        mobile=True,
    ),
    "ugv": CapabilityProfile(
        device_class="ugv",
        sensing=_fs(
            SensingModality.CAMERA, SensingModality.LIDAR, SensingModality.ACOUSTIC
        ),
        sensing_range_m=200.0,
        actuation=_fs(ActuationType.VEHICLE, ActuationType.RELAY_DEPLOY),
        compute_flops=2.0e10,
        storage_bits=8.0e11,
        bandwidth_bps=5.0e6,
        tx_power_dbm=20.0,
        battery_j=2.0e6,
        mobile=True,
    ),
    "drone": CapabilityProfile(
        device_class="drone",
        sensing=_fs(
            SensingModality.CAMERA, SensingModality.RADAR, SensingModality.LIDAR
        ),
        sensing_range_m=800.0,
        actuation=_fs(ActuationType.VEHICLE),
        compute_flops=5.0e10,
        storage_bits=2.56e11,
        bandwidth_bps=1.0e7,
        tx_power_dbm=23.0,
        battery_j=5.0e5,
        mobile=True,
    ),
    "edge_cloud": CapabilityProfile(
        device_class="edge_cloud",
        compute_flops=1.0e13,
        storage_bits=8.0e13,
        bandwidth_bps=1.0e8,
        tx_power_dbm=27.0,
        battery_j=1.0e9,
    ),
    "demolition_charge": CapabilityProfile(
        device_class="demolition_charge",
        sensing=_fs(SensingModality.OCCUPANCY),
        sensing_range_m=20.0,
        actuation=_fs(ActuationType.DEMOLITION),
        compute_flops=1.0e6,
        storage_bits=8.0e6,
        bandwidth_bps=2.0e4,
        tx_power_dbm=4.0,
        battery_j=5.0e3,
        disposable=True,
    ),
    "smartphone": CapabilityProfile(
        device_class="smartphone",
        sensing=_fs(
            SensingModality.CAMERA, SensingModality.ACOUSTIC, SensingModality.RF
        ),
        sensing_range_m=50.0,
        compute_flops=1.0e10,
        storage_bits=5.12e11,
        bandwidth_bps=2.0e6,
        tx_power_dbm=15.0,
        battery_j=5.0e4,
        mobile=True,
    ),
}


def make_profile(device_class: str, **overrides) -> CapabilityProfile:
    """Instantiate a profile from :data:`DEVICE_CLASSES` with overrides."""
    try:
        base = DEVICE_CLASSES[device_class]
    except KeyError:
        raise KeyError(
            f"unknown device class {device_class!r}; "
            f"known: {sorted(DEVICE_CLASSES)}"
        ) from None
    return base.with_overrides(**overrides) if overrides else base
