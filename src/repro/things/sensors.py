"""Sensor models.

A :class:`Sensor` detects targets within range with a distance-decaying
probability and reports noisy position estimates.  Detection effectiveness
is modulated by the :class:`Environment` (smoke blinds cameras, rain damps
acoustics, RF jamming degrades radar/RF sensing) — exactly the modality
redundancy the paper's adaptive-perception argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.things.capabilities import SensingModality
from repro.util.geometry import Point, distance

__all__ = ["Environment", "Detection", "Sensor"]


@dataclass
class Environment:
    """Battlefield conditions that modulate sensing effectiveness.

    Each factor is in ``[0, 1]``: 0 = absent, 1 = total.
    """

    smoke: float = 0.0
    rain: float = 0.0
    night: float = 0.0
    rf_interference: float = 0.0

    def modality_factor(self, modality: SensingModality) -> float:
        """Multiplier on detection probability for a modality."""
        if modality in (SensingModality.CAMERA, SensingModality.LIDAR):
            return max(0.0, 1.0 - self.smoke) * max(0.0, 1.0 - 0.7 * self.night)
        if modality is SensingModality.ACOUSTIC:
            return max(0.0, 1.0 - 0.6 * self.rain)
        if modality is SensingModality.SEISMIC:
            return 1.0  # immune to weather/visibility
        if modality in (SensingModality.RADAR, SensingModality.RF):
            return max(0.0, 1.0 - 0.8 * self.rf_interference)
        if modality is SensingModality.OCCUPANCY:
            return 1.0
        if modality is SensingModality.PHYSIOLOGICAL:
            return 1.0
        return 1.0


#: Baseline position-noise (std-dev, meters) per modality at half range.
_MODALITY_NOISE_M: Dict[SensingModality, float] = {
    SensingModality.OCCUPANCY: 8.0,
    SensingModality.ACOUSTIC: 25.0,
    SensingModality.SEISMIC: 30.0,
    SensingModality.CAMERA: 3.0,
    SensingModality.RADAR: 8.0,
    SensingModality.LIDAR: 1.0,
    SensingModality.RF: 20.0,
    SensingModality.PHYSIOLOGICAL: 1.0,
}


@dataclass(frozen=True)
class Detection:
    """One sensor report: who saw what, where, how confidently."""

    sensor_node: int
    modality: SensingModality
    target_id: int
    time: float
    measured_position: Point
    confidence: float

    def error_m(self, true_position: Point) -> float:
        return distance(self.measured_position, true_position)


class Sensor:
    """A single-modality sensor mounted on a node.

    Parameters
    ----------
    p_detect_max:
        Detection probability at zero distance in a benign environment.
    false_alarm_rate_hz:
        Poisson rate of spurious detections (drawn by the owner per scan).
    """

    def __init__(
        self,
        node_id: int,
        modality: SensingModality,
        range_m: float,
        *,
        p_detect_max: float = 0.95,
        false_alarm_rate_hz: float = 0.0,
        noise_scale: float = 1.0,
    ):
        if range_m <= 0:
            raise ConfigurationError("range_m must be positive")
        if not (0.0 <= p_detect_max <= 1.0):
            raise ConfigurationError("p_detect_max must be in [0, 1]")
        self.node_id = node_id
        self.modality = modality
        self.range_m = range_m
        self.p_detect_max = p_detect_max
        self.false_alarm_rate_hz = false_alarm_rate_hz
        self.noise_scale = noise_scale
        self.enabled = True

    def detection_probability(
        self, sensor_pos: Point, target_pos: Point, env: Environment
    ) -> float:
        """Distance-decayed, environment-modulated detection probability."""
        if not self.enabled:
            return 0.0
        d = distance(sensor_pos, target_pos)
        if d > self.range_m:
            return 0.0
        decay = 1.0 - (d / self.range_m) ** 2
        return self.p_detect_max * decay * env.modality_factor(self.modality)

    def noise_std_m(self, d: float) -> float:
        base = _MODALITY_NOISE_M[self.modality] * self.noise_scale
        # Noise grows linearly with distance; the table value is at half range.
        return base * (0.5 + d / self.range_m)

    def scan(
        self,
        sensor_pos: Point,
        targets: Dict[int, Point],
        env: Environment,
        rng: np.random.Generator,
        time: float,
    ) -> List[Detection]:
        """Attempt to detect each target; return the resulting detections."""
        out: List[Detection] = []
        for target_id, target_pos in targets.items():
            p = self.detection_probability(sensor_pos, target_pos, env)
            if p <= 0.0 or rng.random() >= p:
                continue
            d = distance(sensor_pos, target_pos)
            sigma = self.noise_std_m(d)
            measured = Point(
                target_pos.x + float(rng.normal(0.0, sigma)),
                target_pos.y + float(rng.normal(0.0, sigma)),
            )
            out.append(
                Detection(
                    sensor_node=self.node_id,
                    modality=self.modality,
                    target_id=target_id,
                    time=time,
                    measured_position=measured,
                    confidence=p,
                )
            )
        return out

    def __repr__(self) -> str:
        return (
            f"Sensor(node={self.node_id}, {self.modality.value}, "
            f"range={self.range_m:.0f}m)"
        )
