"""Human assets as information sources (social sensing).

The paper's human-asset model follows the estimation-theoretic social
sensing line it cites (Wang et al.): each source has a latent reliability;
sources emit binary claims about world events; adversarial sources can
collude to push a false narrative.  :mod:`repro.core.learning.truth_discovery`
recovers event truth and source reliability from these claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Claim", "HumanSource"]

_claim_ids = itertools.count(1)


@dataclass(frozen=True)
class Claim:
    """A binary assertion by a source about an event variable."""

    source_id: int
    event_id: int
    value: bool
    time: float = 0.0
    uid: int = field(default_factory=lambda: next(_claim_ids))


class HumanSource:
    """A human information source with latent reliability and bias.

    Parameters
    ----------
    reliability:
        Probability the source reports an event's true value.
    report_rate:
        Probability the source reports on any given event at all.
    malicious:
        Malicious sources invert the truth (colluding disinformation);
        their ``reliability`` is the probability of *successful* inversion,
        so high-reliability malicious sources are the most damaging.
    collusion_group:
        Optional label; colluding sources share one coordinated story.
    """

    def __init__(
        self,
        source_id: int,
        *,
        reliability: float = 0.8,
        report_rate: float = 0.6,
        malicious: bool = False,
        collusion_group: Optional[str] = None,
    ):
        if not (0.0 <= reliability <= 1.0):
            raise ConfigurationError("reliability must be in [0, 1]")
        if not (0.0 <= report_rate <= 1.0):
            raise ConfigurationError("report_rate must be in [0, 1]")
        self.source_id = source_id
        self.reliability = reliability
        self.report_rate = report_rate
        self.malicious = malicious
        self.collusion_group = collusion_group

    def report(
        self,
        event_id: int,
        truth: bool,
        rng: np.random.Generator,
        time: float = 0.0,
    ) -> Optional[Claim]:
        """Maybe produce a claim about one event."""
        if rng.random() >= self.report_rate:
            return None
        if self.malicious:
            # Tell the truth only when the inversion "fails".
            value = (not truth) if rng.random() < self.reliability else truth
        else:
            value = truth if rng.random() < self.reliability else (not truth)
        return Claim(source_id=self.source_id, event_id=event_id, value=value, time=time)

    def report_all(
        self,
        truths: Dict[int, bool],
        rng: np.random.Generator,
        time: float = 0.0,
    ) -> List[Claim]:
        """Report on a batch of events (skipping per ``report_rate``)."""
        claims = []
        for event_id in sorted(truths):
            claim = self.report(event_id, truths[event_id], rng, time)
            if claim is not None:
                claims.append(claim)
        return claims

    def __repr__(self) -> str:
        tag = "malicious" if self.malicious else "honest"
        return (
            f"HumanSource({self.source_id}, {tag}, "
            f"reliability={self.reliability:.2f})"
        )
