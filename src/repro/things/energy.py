"""Battery / energy model.

Forward-deployed IoBT assets are energy-disadvantaged; every radio bit,
sensor reading, and compute cycle drains a finite budget.  The battery
invokes a callback at depletion so the network can take the node down.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError

__all__ = ["Battery"]


class Battery:
    """A finite energy budget with per-operation drain coefficients.

    Defaults are loosely calibrated to low-power radio hardware
    (~200 nJ/bit transmit, ~100 nJ/bit receive) — the absolute values only
    matter relative to each other and to the capacity.
    """

    def __init__(
        self,
        capacity_j: float,
        *,
        tx_j_per_bit: float = 2.0e-7,
        rx_j_per_bit: float = 1.0e-7,
        sense_j_per_sample: float = 5.0e-4,
        compute_j_per_flop: float = 1.0e-10,
        idle_w: float = 0.0,
        on_depleted: Optional[Callable[[], None]] = None,
    ):
        if capacity_j <= 0:
            raise ConfigurationError("capacity_j must be positive")
        self.capacity_j = capacity_j
        self.remaining_j = capacity_j
        self.tx_j_per_bit = tx_j_per_bit
        self.rx_j_per_bit = rx_j_per_bit
        self.sense_j_per_sample = sense_j_per_sample
        self.compute_j_per_flop = compute_j_per_flop
        self.idle_w = idle_w
        self.on_depleted = on_depleted
        self._depleted_notified = False

    @property
    def depleted(self) -> bool:
        return self.remaining_j <= 0.0

    @property
    def fraction_remaining(self) -> float:
        return max(0.0, self.remaining_j) / self.capacity_j

    def _drain(self, joules: float) -> None:
        if joules <= 0 or self.depleted:
            return
        self.remaining_j -= joules
        if self.remaining_j <= 0.0 and not self._depleted_notified:
            self._depleted_notified = True
            self.remaining_j = 0.0
            if self.on_depleted is not None:
                self.on_depleted()

    def drain_radio(self, bits_tx: float, bits_rx: float) -> None:
        self._drain(bits_tx * self.tx_j_per_bit + bits_rx * self.rx_j_per_bit)

    def drain_sense(self, samples: int = 1) -> None:
        self._drain(samples * self.sense_j_per_sample)

    def drain_compute(self, flops: float) -> None:
        self._drain(flops * self.compute_j_per_flop)

    def drain_idle(self, dt_s: float) -> None:
        self._drain(self.idle_w * dt_s)

    def consumed_j(self) -> float:
        return self.capacity_j - max(0.0, self.remaining_j)

    def __repr__(self) -> str:
        return (
            f"Battery({self.remaining_j:.1f}/{self.capacity_j:.1f} J, "
            f"{self.fraction_remaining:.0%})"
        )
