"""Actuator models with safety interlocks.

The paper's discussion section motivates "smarter ammunition" that withholds
activation when humans are present.  :class:`SafetyInterlock` is that
mechanism: a predicate chain evaluated at actuation time; any veto blocks
the action and is recorded for audit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.things.capabilities import ActuationType
from repro.util.geometry import Point

__all__ = ["ActuationRequest", "SafetyInterlock", "Actuator"]

_request_ids = itertools.count(1)

#: A guard inspects a request and returns a veto reason or None to allow.
Guard = Callable[["ActuationRequest"], Optional[str]]


@dataclass
class ActuationRequest:
    """A command to an actuator, carrying the authorization context."""

    kind: ActuationType
    target_position: Optional[Point] = None
    target_category: Optional[str] = None
    authorized_by: Optional[str] = None
    human_decision: bool = False
    uid: int = field(default_factory=lambda: next(_request_ids))


class SafetyInterlock:
    """An ordered chain of guards; any veto blocks actuation."""

    def __init__(self):
        self._guards: List[Tuple[str, Guard]] = []
        self.vetoes: List[Tuple[int, str, str]] = []  # (request, guard, reason)

    def add_guard(self, name: str, guard: Guard) -> None:
        self._guards.append((name, guard))

    def check(self, request: ActuationRequest) -> Optional[str]:
        """Return the first veto reason, or None when all guards pass."""
        for name, guard in self._guards:
            reason = guard(request)
            if reason is not None:
                self.vetoes.append((request.uid, name, reason))
                return f"{name}: {reason}"
        return None

    @property
    def guard_count(self) -> int:
        return len(self._guards)


class Actuator:
    """An effectuator mounted on a node.

    ``fire`` applies the interlock chain and, for lethal actuation types,
    additionally requires an explicit human decision (the paper's "decision
    to fire a weapon ... remains with humans").
    """

    LETHAL = frozenset({ActuationType.DEMOLITION})

    def __init__(
        self,
        node_id: int,
        kind: ActuationType,
        *,
        interlock: Optional[SafetyInterlock] = None,
        require_human_for_lethal: bool = True,
    ):
        self.node_id = node_id
        self.kind = kind
        self.interlock = interlock if interlock is not None else SafetyInterlock()
        self.require_human_for_lethal = require_human_for_lethal
        self.activations: List[ActuationRequest] = []
        self.blocked: List[Tuple[ActuationRequest, str]] = []

    def fire(self, request: ActuationRequest) -> bool:
        """Attempt the actuation; returns True when it was carried out."""
        if request.kind is not self.kind:
            raise ConfigurationError(
                f"actuator {self.kind.value} got request {request.kind.value}"
            )
        if (
            self.require_human_for_lethal
            and self.kind in self.LETHAL
            and not request.human_decision
        ):
            self.blocked.append((request, "lethal action requires human decision"))
            return False
        veto = self.interlock.check(request)
        if veto is not None:
            self.blocked.append((request, veto))
            return False
        self.activations.append(request)
        return True

    def __repr__(self) -> str:
        return f"Actuator(node={self.node_id}, {self.kind.value})"
