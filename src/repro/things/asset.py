"""Assets: battlefield things bound to network nodes.

An :class:`Asset` joins a capability profile, an affiliation (blue / red /
gray), optional sensors/actuators/compute/human models, an energy budget,
and a duty cycle (intermittent presence) around one :class:`NetNode`.
The :class:`AssetInventory` is the queryable population that discovery and
composition operate over.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.node import NetNode, Network
from repro.things.actuators import Actuator
from repro.things.capabilities import (
    ActuationType,
    CapabilityProfile,
    SensingModality,
)
from repro.things.compute import ComputeElement
from repro.things.energy import Battery
from repro.things.humans import HumanSource
from repro.things.sensors import Sensor
from repro.util.geometry import Point

__all__ = ["Affiliation", "Asset", "AssetInventory"]


class Affiliation(Enum):
    """Who controls the asset (the paper's blue/red/gray trichotomy)."""

    BLUE = "blue"
    RED = "red"
    GRAY = "gray"


class Asset:
    """One battlefield thing.

    ``duty_cycle`` < 1 models intermittent presence: the asset is reachable
    only a fraction of the time (its radio sleeps), which is what makes
    discovery of cyberphysical assets hard (§III-A of the paper).
    """

    def __init__(
        self,
        asset_id: int,
        node: NetNode,
        profile: CapabilityProfile,
        affiliation: Affiliation = Affiliation.BLUE,
        *,
        duty_cycle: float = 1.0,
        battery: Optional[Battery] = None,
        human: Optional[HumanSource] = None,
    ):
        if not (0.0 < duty_cycle <= 1.0):
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        self.id = asset_id
        self.node = node
        self.profile = profile
        self.affiliation = affiliation
        self.duty_cycle = duty_cycle
        self.battery = battery
        self.human = human
        self.sensors: List[Sensor] = []
        self.actuators: List[Actuator] = []
        self.compute: Optional[ComputeElement] = None
        self.captured = False  # red takeover of a formerly blue/gray asset
        if battery is not None:
            node.energy_hook = battery.drain_radio

    # ------------------------------------------------------------- properties

    @property
    def node_id(self) -> int:
        return self.node.id

    @property
    def position(self) -> Point:
        return self.node.position

    @property
    def alive(self) -> bool:
        dead_battery = self.battery is not None and self.battery.depleted
        return self.node.up and not dead_battery

    @property
    def hostile(self) -> bool:
        """True for assets under adversary control."""
        return self.affiliation is Affiliation.RED or self.captured

    # ------------------------------------------------------------ attachments

    def add_sensor(self, modality: SensingModality, **kwargs) -> Sensor:
        if not self.profile.can_sense(modality):
            raise ConfigurationError(
                f"{self.profile.device_class} cannot sense {modality.value}"
            )
        sensor = Sensor(
            self.node.id, modality, self.profile.sensing_range_m, **kwargs
        )
        self.sensors.append(sensor)
        return sensor

    def add_default_sensors(self) -> List[Sensor]:
        """Attach one sensor per modality in the capability profile."""
        return [
            self.add_sensor(m)
            for m in sorted(self.profile.sensing, key=lambda m: m.value)
        ]

    def add_actuator(self, kind: ActuationType, **kwargs) -> Actuator:
        if not self.profile.can_actuate(kind):
            raise ConfigurationError(
                f"{self.profile.device_class} cannot actuate {kind.value}"
            )
        actuator = Actuator(self.node.id, kind, **kwargs)
        self.actuators.append(actuator)
        return actuator

    def add_compute(self, sim, **kwargs) -> ComputeElement:
        self.compute = ComputeElement(
            sim, self.node.id, max(self.profile.compute_flops, 1.0), **kwargs
        )
        return self.compute

    def is_awake(self, rng: np.random.Generator) -> bool:
        """Duty-cycle draw: is the radio listening right now?"""
        return self.duty_cycle >= 1.0 or rng.random() < self.duty_cycle

    def __repr__(self) -> str:
        return (
            f"Asset({self.id}, {self.profile.device_class}, "
            f"{self.affiliation.value}, node={self.node.id})"
        )


class AssetInventory:
    """The asset population of one scenario, indexed for composition queries."""

    def __init__(self, network: Network):
        self.network = network
        self._assets: Dict[int, Asset] = {}
        self._by_node: Dict[int, Asset] = {}
        self._next_id = itertools.count(1)

    def create(
        self,
        profile: CapabilityProfile,
        position: Point,
        affiliation: Affiliation = Affiliation.BLUE,
        *,
        duty_cycle: float = 1.0,
        with_battery: bool = True,
        human: Optional[HumanSource] = None,
        node_id: Optional[int] = None,
    ) -> Asset:
        """Create an asset plus its backing network node."""
        asset_id = next(self._next_id)
        nid = node_id if node_id is not None else asset_id
        node = self.network.create_node(
            nid,
            position,
            tx_power_dbm=profile.tx_power_dbm,
            bitrate_bps=profile.bandwidth_bps,
        )
        battery = None
        if with_battery:
            battery = Battery(
                profile.battery_j,
                on_depleted=lambda n=nid: self.network.fail_node(n),
            )
        asset = Asset(
            asset_id,
            node,
            profile,
            affiliation,
            duty_cycle=duty_cycle,
            battery=battery,
            human=human,
        )
        self._assets[asset_id] = asset
        self._by_node[nid] = asset
        return asset

    def get(self, asset_id: int) -> Asset:
        return self._assets[asset_id]

    def by_node(self, node_id: int) -> Optional[Asset]:
        return self._by_node.get(node_id)

    def all(self) -> List[Asset]:
        return list(self._assets.values())

    def __iter__(self) -> Iterator[Asset]:
        return iter(self._assets.values())

    def __len__(self) -> int:
        return len(self._assets)

    # --------------------------------------------------------------- querying

    def select(
        self,
        *,
        affiliation: Optional[Affiliation] = None,
        modality: Optional[SensingModality] = None,
        actuation: Optional[ActuationType] = None,
        min_compute_flops: float = 0.0,
        alive_only: bool = True,
        device_class: Optional[str] = None,
    ) -> List[Asset]:
        """Filter the inventory on capability/affiliation predicates."""
        out = []
        for asset in self._assets.values():
            if alive_only and not asset.alive:
                continue
            if affiliation is not None and asset.affiliation is not affiliation:
                continue
            if modality is not None and not asset.profile.can_sense(modality):
                continue
            if actuation is not None and not asset.profile.can_actuate(actuation):
                continue
            if asset.profile.compute_flops < min_compute_flops:
                continue
            if device_class is not None and asset.profile.device_class != device_class:
                continue
            out.append(asset)
        return out

    def blue(self) -> List[Asset]:
        return self.select(affiliation=Affiliation.BLUE)

    def red(self) -> List[Asset]:
        return self.select(affiliation=Affiliation.RED, alive_only=False)

    def gray(self) -> List[Asset]:
        return self.select(affiliation=Affiliation.GRAY)

    def counts(self) -> Dict[str, int]:
        out = {a.value: 0 for a in Affiliation}
        for asset in self._assets.values():
            out[asset.affiliation.value] += 1
        return out
