"""Planar geometry primitives used by mobility, sensing, and scenarios.

The battlefield is modeled as a 2-D region measured in meters.  Points are
immutable; regions are axis-aligned rectangles (sufficient for urban grids
and sparse terrain alike).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

import numpy as np

__all__ = ["Point", "Region", "distance", "bearing", "centroid"]


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def toward(self, other: "Point", step: float) -> "Point":
        """Return the point ``step`` meters from self toward ``other``.

        If ``other`` is closer than ``step``, returns ``other`` exactly.
        """
        total = self.distance_to(other)
        if total <= step or total == 0.0:
            return other
        frac = step / total
        return Point(
            self.x + (other.x - self.x) * frac,
            self.y + (other.y - self.y) * frac,
        )

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in meters."""
    return a.distance_to(b)


def bearing(a: Point, b: Point) -> float:
    """Angle of the vector a->b in radians, in ``[-pi, pi]``."""
    return math.atan2(b.y - a.y, b.x - a.x)


def centroid(points: Iterable[Point]) -> Point:
    """Centroid of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("centroid of empty point set")
    return Point(
        sum(p.x for p in pts) / len(pts),
        sum(p.y for p in pts) / len(pts),
    )


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular region ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate region: {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        )

    def contains(self, p: Point) -> bool:
        return (
            self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max
        )

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the region (identity if already inside)."""
        return Point(
            min(max(p.x, self.x_min), self.x_max),
            min(max(p.y, self.y_min), self.y_max),
        )

    def sample(self, rng: np.random.Generator) -> Point:
        """Draw a uniform random point inside the region."""
        return Point(
            float(rng.uniform(self.x_min, self.x_max)),
            float(rng.uniform(self.y_min, self.y_max)),
        )

    def grid_points(self, nx: int, ny: int) -> Tuple[Point, ...]:
        """Return an ``nx * ny`` lattice of points covering the region."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        xs = np.linspace(self.x_min, self.x_max, nx)
        ys = np.linspace(self.y_min, self.y_max, ny)
        return tuple(Point(float(x), float(y)) for y in ys for x in xs)
