"""Plain-text result tables for the benchmark harness.

Each benchmark regenerates one experiment (E1..E15 in DESIGN.md) and prints
its series through a :class:`ResultTable`, so all experiments report in a
uniform, diff-friendly format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

__all__ = ["ResultTable"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class ResultTable:
    """An append-only table with named columns, rendered as aligned text.

    >>> t = ResultTable("demo", ["n", "latency_s"])
    >>> t.add_row(n=10, latency_s=0.5)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append({c: values.get(c, "") for c in self.columns})

    def column(self, name: str) -> List[Any]:
        """Return all values of one column, in insertion order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self.rows]

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(_fmt(row[c]) for c in self.columns))
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)
