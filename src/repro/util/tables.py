"""Plain-text result tables for the benchmark harness.

Each benchmark regenerates one experiment (E1..E15 in DESIGN.md) and prints
its series through a :class:`ResultTable`, so all experiments report in a
uniform, diff-friendly format.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultTable", "json_safe"]


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats (nan/inf) with ``None``.

    Metrics use NaN as the "no data" convention (e.g. delivery ratio with
    zero sends); raw NaN/Infinity is not valid JSON and silently breaks
    downstream parsers, so exported JSON is guarded through this filter.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class ResultTable:
    """An append-only table with named columns, rendered as aligned text.

    >>> t = ResultTable("demo", ["n", "latency_s"])
    >>> t.add_row(n=10, latency_s=0.5)
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []
        #: Side-channel payload (e.g. campaign run telemetry) carried into
        #: to_json() but excluded from rendering and equality.
        self.meta: Dict[str, Any] = {}

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append({c: values.get(c, "") for c in self.columns})

    def column(self, name: str) -> List[Any]:
        """Return all values of one column, in insertion order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def render(self) -> str:
        cells = [[_fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(row) for row in self.rows]

    @classmethod
    def from_dicts(
        cls,
        title: str,
        rows: Sequence[Dict[str, Any]],
        columns: Optional[Sequence[str]] = None,
    ) -> "ResultTable":
        """Rebuild a table from row dicts (e.g. a parsed JSON export).

        Column order defaults to first-seen key order across the rows.
        """
        if columns is None:
            columns = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
        table = cls(title, columns)
        for row in rows:
            table.add_row(**row)
        return table

    def to_json(self, path: Optional[str] = None) -> str:
        """Serialize as a JSON document with non-finite values nulled.

        Returns the document text; when ``path`` is given, also writes it
        there.
        """
        document = {"title": self.title, "rows": json_safe(self.to_dicts())}
        if self.meta:
            document["meta"] = json_safe(self.meta)
        text = json.dumps(document, indent=2, allow_nan=False) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def __eq__(self, other: object) -> bool:
        """Tables are equal when title, columns, and all rows match.

        NaN cells compare equal to NaN (two identical runs that both say
        "no data" are the same table), unlike raw float comparison.
        """
        if not isinstance(other, ResultTable):
            return NotImplemented
        if self.title != other.title or self.columns != other.columns:
            return False
        if len(self.rows) != len(other.rows):
            return False

        def same(a: Any, b: Any) -> bool:
            if isinstance(a, float) and isinstance(b, float):
                return a == b or (a != a and b != b)
            return a == b

        return all(
            same(ra[c], rb[c])
            for ra, rb in zip(self.rows, other.rows)
            for c in self.columns
        )

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(_fmt(row[c]) for c in self.columns))
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)
