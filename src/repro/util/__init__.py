"""Shared utilities: seeded RNG streams, geometry, statistics, result tables."""

from repro.util.rng import RngStreams, derive_seed
from repro.util.geometry import Point, Region, distance
from repro.util.stats import (
    RunningStats,
    mean_confidence_interval,
    summarize,
)
from repro.util.tables import ResultTable

__all__ = [
    "RngStreams",
    "derive_seed",
    "Point",
    "Region",
    "distance",
    "RunningStats",
    "mean_confidence_interval",
    "summarize",
    "ResultTable",
]
