"""Deterministic random-number management.

Every stochastic component in the library draws from a named stream derived
from a single experiment seed.  Two runs with the same seed produce identical
traces (a tested invariant), while distinct streams are statistically
independent, so adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation is a stable hash, so it does not depend on creation order
    or on Python's per-process hash randomization.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(name.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RngStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("mobility")
    >>> b = streams.get("channel")
    >>> a is streams.get("mobility")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.seed, name)
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Return a child ``RngStreams`` rooted under ``name``.

        Useful for handing a subsystem its own namespace of streams.
        """
        return RngStreams(derive_seed(self.seed, name))

    def reset(self) -> None:
        """Drop all streams so the next ``get`` starts from the seed again."""
        self._streams.clear()

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
