"""Deterministic random-number management.

Every stochastic component in the library draws from a named stream derived
from a single experiment seed.  Two runs with the same seed produce identical
traces (a tested invariant), while distinct streams are statistically
independent, so adding a new consumer does not perturb existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["derive_seed", "RngStreams", "generator_draws", "generator_digest"]

#: The PCG64 LCG multiplier (``PCG_DEFAULT_MULTIPLIER_128``); the state
#: advances ``s' = s * MULT + inc (mod 2**128)`` once per 64-bit output.
_PCG64_MULT = 47026247687942121848144207491837523525
_PCG64_MASK = (1 << 128) - 1


def _lcg_distance(start: int, target: int, mult: int, inc: int, mask: int) -> Optional[int]:
    """Steps from ``start`` to ``target`` along an LCG orbit, or ``None``.

    The classic O(log period) walk (Melissa O'Neill's ``pcg_extras``
    distance): at iteration ``k``, ``cur_mult/cur_plus`` jump ``2**k``
    steps, and because the low ``k`` bits of a power-of-two-modulus LCG
    have period ``2**k``, matching the target bit-by-bit recovers the
    distance.  Returns ``None`` if the states never converge within the
    state width — i.e. they belong to different increments/sequences.
    """
    the_bit = 1
    distance = 0
    cur_state, cur_mult, cur_plus = start, mult, inc
    while cur_state != target:
        if (cur_state ^ target) & the_bit:
            cur_state = (cur_state * cur_mult + cur_plus) & mask
            distance |= the_bit
        if (cur_state ^ target) & the_bit:
            return None  # different sequence: bit can no longer change
        the_bit <<= 1
        if the_bit > mask:
            return None
        cur_plus = ((cur_mult + 1) * cur_plus) & mask
        cur_mult = (cur_mult * cur_mult) & mask
    return distance


def generator_draws(gen: np.random.Generator, seed: int) -> Optional[int]:
    """How many 64-bit words ``gen`` has produced since ``seed`` created it.

    Works by measuring the LCG distance between a freshly seeded PCG64
    state and the generator's current state — no wrapping or counting on
    the draw path, so the hot path stays untouched.  Returns ``None`` for
    non-PCG64 bit generators or states from a different sequence.
    """
    state = gen.bit_generator.state
    if state.get("bit_generator") != "PCG64":
        return None
    fresh = np.random.default_rng(seed).bit_generator.state
    if fresh["state"]["inc"] != state["state"]["inc"]:
        return None
    return _lcg_distance(
        fresh["state"]["state"],
        state["state"]["state"],
        _PCG64_MULT,
        state["state"]["inc"],
        _PCG64_MASK,
    )


def generator_digest(gen: np.random.Generator) -> str:
    """Process-independent digest of a generator's exact current state."""
    state = gen.bit_generator.state
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(sorted(_flatten_state(state))).encode("utf-8"))
    return digest.hexdigest()


def _flatten_state(state: Dict[str, Any], prefix: str = ""):
    for key, value in state.items():
        if isinstance(value, dict):
            yield from _flatten_state(value, f"{prefix}{key}.")
        else:
            yield (f"{prefix}{key}", repr(value))


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation is a stable hash, so it does not depend on creation order
    or on Python's per-process hash randomization.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(name.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RngStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("mobility")
    >>> b = streams.get("channel")
    >>> a is streams.get("mobility")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.seed, name)
            )
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Return a child ``RngStreams`` rooted under ``name``.

        Useful for handing a subsystem its own namespace of streams.
        """
        return RngStreams(derive_seed(self.seed, name))

    def reset(self) -> None:
        """Drop all streams so the next ``get`` starts from the seed again."""
        self._streams.clear()

    def draw_counts(self) -> Dict[str, Optional[int]]:
        """Exact 64-bit outputs drawn per stream, by stream name.

        Computed from generator state (the LCG distance walk), so reading
        it costs nothing on the draw path; ``None`` marks a stream whose
        state cannot be attributed to its derived seed.
        """
        return {
            name: generator_draws(self._streams[name], derive_seed(self.seed, name))
            for name in sorted(self._streams)
        }

    def stream_states(self) -> list:
        """Provenance rows for every stream touched so far.

        One ``{"name", "seed", "draws", "state_digest"}`` dict per stream,
        sorted by name — the RNG identity section of a RunManifest.
        """
        out = []
        for name in sorted(self._streams):
            gen = self._streams[name]
            seed = derive_seed(self.seed, name)
            out.append(
                {
                    "name": name,
                    "seed": seed,
                    "draws": generator_draws(gen, seed),
                    "state_digest": generator_digest(gen),
                }
            )
        return out

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
