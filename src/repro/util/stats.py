"""Small statistics helpers used across experiments and metrics."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "RunningStats",
    "mean_confidence_interval",
    "summarize",
    "percentile",
]


class RunningStats:
    """Welford online mean/variance with min/max tracking.

    Constant-memory aggregation for metrics recorded over long simulations.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0 if self.count == 1 else math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan  # NaN-safe

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new RunningStats combining both windows."""
        merged = RunningStats()
        if self.count == 0:
            merged.count = other.count
            merged._mean = other._mean
            merged._m2 = other._m2
            merged.min, merged.max = other.min, other.max
            return merged
        if other.count == 0:
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged.min, merged.max = self.min, self.max
            return merged
        n = self.count + other.count
        delta = other._mean - self._mean
        merged.count = n
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / n
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


def mean_confidence_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    *,
    nan_policy: str = "propagate",
) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of a normal-approximation CI.

    Uses the t-quantile from scipy when available; falls back to 1.96 for the
    95% level with large samples.

    ``nan_policy="omit"`` drops NaN samples before computing — the campaign
    aggregator uses it so one "no data" replicate (e.g. a delivery ratio
    with zero sends) does not blank the whole cell; ``"propagate"`` (the
    default) keeps the usual contract that any NaN input yields NaN.
    """
    if nan_policy not in ("propagate", "omit"):
        raise ValueError(f"nan_policy must be 'propagate' or 'omit': {nan_policy!r}")
    arr = np.asarray(list(values), dtype=float)
    if nan_policy == "omit":
        arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return math.nan, math.nan
    if arr.size == 1:
        return float(arr[0]), 0.0
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    try:
        from scipy import stats as _st

        t = float(_st.t.ppf((1 + confidence) / 2.0, arr.size - 1))
    except Exception:  # pragma: no cover - scipy is a hard dep
        t = 1.96
    return mean, t * sem


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``; NaN when empty."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return math.nan
    return float(np.percentile(arr, q))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return a dict of mean/std/min/p50/p95/max for a sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {k: math.nan for k in ("mean", "std", "min", "p50", "p95", "max")}
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
