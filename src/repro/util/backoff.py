"""Exponential backoff with seeded jitter.

One :class:`BackoffPolicy` describes the retry pacing shared by every
retrying component in the library — the synthesis service's live-path
retries (:mod:`repro.service`) and the campaign runner's task re-attempts
(:class:`repro.campaign.runner.CampaignRunner`) use the same class, so a
"retry storm" tuned in one place behaves identically in the other.

Delays are ``base_s * factor**(attempt-1)``, capped at ``max_s``, then
scaled by a jitter draw in ``[1 - jitter, 1]`` (full-jitter-toward-zero
spreads retries without ever exceeding the deterministic envelope).  All
randomness comes from a caller-supplied generator, so a seeded caller gets
bit-identical delay schedules — :func:`delays_for` derives a per-key
generator from a root seed, making the schedule independent of call order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.util.rng import derive_seed

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``base_s * factor**(attempt-1)``, capped, jittered.

    Parameters
    ----------
    base_s:
        Delay before the first retry (attempt 1).
    factor:
        Multiplier per subsequent attempt (``>= 1``).
    max_s:
        Hard cap on any single delay, applied before jitter — so the cap
        is also the worst-case delay.
    jitter:
        Fraction of each delay that is randomized: the delay is scaled by
        a uniform draw in ``[1 - jitter, 1]``.  ``0`` disables jitter.
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError("base_s must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.max_s < 0:
            raise ValueError("max_s must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """Delay before retry number ``attempt`` (1-based).

        Without an ``rng`` the deterministic envelope (no jitter) is
        returned; with one, the jittered value — reproducible from the
        generator's state.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        if self.jitter and rng is not None:
            raw *= (1.0 - self.jitter) + self.jitter * float(rng.random())
        return raw

    def delay_for(self, attempt: int, *, seed: int, key: str = "") -> float:
        """Jittered delay addressed by ``(seed, key, attempt)``.

        Independent of call order or interleaving: every caller asking for
        the same (seed, key, attempt) gets the same delay, which is what
        keeps parallel campaign runs deterministic under a seed.
        """
        rng = np.random.default_rng(
            derive_seed(seed, "backoff", key, str(attempt))
        )
        return self.delay_s(attempt, rng)

    def schedule(
        self, attempts: int, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """The first ``attempts`` delays as a list (for tests and docs)."""
        return [self.delay_s(i, rng) for i in range(1, attempts + 1)]
