"""Command by intent.

The paper's central doctrinal shift: a commander specifies *intent* — the
goal, constraints, and acceptable end states — and subordinate units fill in
the details, exercising "disciplined initiative" within an explicit
envelope.  This module provides:

* :class:`CommanderIntent` — goal + constraints + end state.
* :class:`InitiativeEnvelope` — the freedom delegated to a subordinate
  (which knobs it may move, its risk budget, when it must escalate).
* :func:`decompose_spatial` — hierarchical decomposition of an intent into
  per-sector subordinate objectives (the game-theoretic decomposition in
  :mod:`repro.core.adaptation.games` is the behavioral counterpart).
* :func:`aggregate_compliance` — quantifiable aggregate compliance of local
  adaptations with the global intent, which is exactly the assurance the
  paper demands from autonomy ("allowing local adaptation ... that ensures
  quantifiable compliance, in aggregate, with mission goals").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.core.mission import MissionGoal
from repro.util.geometry import Region

__all__ = [
    "InitiativeEnvelope",
    "CommanderIntent",
    "SubordinateObjective",
    "decompose_spatial",
    "aggregate_compliance",
]


@dataclass(frozen=True)
class InitiativeEnvelope:
    """The delegated decision space of a subordinate.

    ``allowed_knobs`` names the adaptation knobs the subordinate may move
    without escalation; anything else requires a request up the chain.
    ``risk_budget`` bounds the acceptable probability of sector-level
    failure the subordinate may trade for responsiveness.
    """

    allowed_knobs: FrozenSet[str] = frozenset(
        {"sensing_modality", "reallocate_compute", "reposition_mobile"}
    )
    risk_budget: float = 0.1
    max_assets: int = 100
    escalation_latency_s: float = 60.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.risk_budget <= 1.0):
            raise ConfigurationError("risk_budget must be in [0, 1]")

    def permits(self, knob: str) -> bool:
        return knob in self.allowed_knobs


@dataclass(frozen=True)
class CommanderIntent:
    """Goal, constraints, and desired end state — the *what*, not the *how*."""

    goal: MissionGoal
    end_state: str = ""
    forbidden_zones: Tuple[Region, ...] = ()
    max_acceptable_risk: float = 0.2
    require_human_for_lethal: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.max_acceptable_risk <= 1.0):
            raise ConfigurationError("max_acceptable_risk must be in [0, 1]")


@dataclass(frozen=True)
class SubordinateObjective:
    """One subordinate's share of the intent: a sector plus an envelope."""

    objective_id: int
    sector: Region
    goal: MissionGoal
    envelope: InitiativeEnvelope
    weight: float = 1.0  # share of the global objective (area fraction)


def decompose_spatial(
    intent: CommanderIntent,
    nx: int,
    ny: int,
    *,
    envelope: Optional[InitiativeEnvelope] = None,
) -> List[SubordinateObjective]:
    """Decompose an intent into an ``nx * ny`` sector grid of objectives.

    Each subordinate inherits the mission goal restricted to its sector.
    Sector weights are area fractions, so aggregate compliance is a proper
    weighted average.
    """
    if nx < 1 or ny < 1:
        raise ConfigurationError("decomposition grid must be at least 1x1")
    env = envelope if envelope is not None else InitiativeEnvelope()
    area = intent.goal.area
    dx = area.width / nx
    dy = area.height / ny
    objectives: List[SubordinateObjective] = []
    oid = 0
    for j in range(ny):
        for i in range(nx):
            sector = Region(
                area.x_min + i * dx,
                area.y_min + j * dy,
                area.x_min + (i + 1) * dx,
                area.y_min + (j + 1) * dy,
            )
            sector_goal = replace(intent.goal, area=sector)
            oid += 1
            objectives.append(
                SubordinateObjective(
                    objective_id=oid,
                    sector=sector,
                    goal=sector_goal,
                    envelope=env,
                    weight=sector.area / area.area if area.area > 0 else 0.0,
                )
            )
    return objectives


def aggregate_compliance(
    results: Sequence[Tuple[SubordinateObjective, float]],
) -> float:
    """Weighted aggregate compliance in [0, 1].

    ``results`` pairs each objective with its locally-achieved satisfaction
    (e.g., achieved coverage / required coverage, capped at 1).  The return
    value is the area-weighted mean — the quantifiable aggregate guarantee
    the commander reasons about.
    """
    if not results:
        return 0.0
    total_weight = sum(obj.weight for obj, _s in results)
    if total_weight <= 0:
        return 0.0
    acc = 0.0
    for obj, satisfaction in results:
        acc += obj.weight * min(max(satisfaction, 0.0), 1.0)
    return acc / total_weight
