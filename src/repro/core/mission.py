"""Mission goals.

A :class:`MissionGoal` is the declarative, high-level description of what a
mission must achieve ("track a collection of insurgents ... within a certain
geographic area").  The synthesis pipeline compiles goals into quantitative
requirements (:mod:`repro.core.synthesis.requirements`), and the services
layer executes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet

from repro.errors import ConfigurationError
from repro.things.capabilities import SensingModality
from repro.util.geometry import Region

__all__ = ["MissionType", "MissionGoal"]


class MissionType(Enum):
    """The mission families the paper's examples draw from."""

    SURVEIL = "surveil"          # wide-area persistent surveillance
    TRACK = "track"              # track a dispersed moving group
    EVACUATE = "evacuate"        # non-combatant evacuation
    MONITOR_HEALTH = "monitor"   # physiological/psychological monitoring


@dataclass(frozen=True)
class MissionGoal:
    """A high-level mission goal.

    Parameters
    ----------
    area:
        Geographic area of responsibility.
    modalities:
        Acceptable sensing modalities (any of them satisfies a sensing
        need; redundancy across modalities is what adaptation exploits).
    min_coverage:
        Required fraction of the area within sensing range.
    max_latency_s:
        Bound on sensing-to-decision latency.
    min_confidence:
        Required confidence in fused information (0..1).
    duration_s:
        Mission time horizon.
    priority:
        Relative importance when missions compete for assets (higher wins).
    """

    mission_type: MissionType
    area: Region
    modalities: FrozenSet[SensingModality] = frozenset(
        {SensingModality.CAMERA, SensingModality.ACOUSTIC, SensingModality.SEISMIC}
    )
    min_coverage: float = 0.8
    max_latency_s: float = 10.0
    min_confidence: float = 0.8
    duration_s: float = 3600.0
    priority: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if not (0.0 < self.min_coverage <= 1.0):
            raise ConfigurationError("min_coverage must be in (0, 1]")
        if self.max_latency_s <= 0:
            raise ConfigurationError("max_latency_s must be positive")
        if not (0.0 < self.min_confidence <= 1.0):
            raise ConfigurationError("min_confidence must be in (0, 1]")
        if not self.modalities:
            raise ConfigurationError("at least one sensing modality required")

    def describe(self) -> str:
        mods = "/".join(sorted(m.value for m in self.modalities))
        return (
            f"{self.mission_type.value} over "
            f"{self.area.width:.0f}x{self.area.height:.0f}m "
            f"(coverage>={self.min_coverage:.0%}, latency<={self.max_latency_s}s, "
            f"modalities: {mods})"
        )
