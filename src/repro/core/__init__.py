"""The paper's contribution areas: synthesis, adaptation, learning, services.

Submodules:

* :mod:`repro.core.mission` / :mod:`repro.core.intent` — mission goals and
  command-by-intent decomposition.
* :mod:`repro.core.synthesis` — Challenge 1: assured synthesis of composite
  IoBT assets (discovery, characterization, composition, assurance).
* :mod:`repro.core.adaptation` — Challenge 2: adaptive reflexes
  (self-aware adaptation, self-stabilization, games, resource knobs).
* :mod:`repro.core.learning` — Challenge 3: learning & intelligent services
  (truth discovery, tomography, distributed/Byzantine learning, safety).
* :mod:`repro.core.services` — battlefield services built on the above
  (C2 models, tracking, surveillance, evacuation).
"""

from repro.core.mission import MissionGoal, MissionType
from repro.core.intent import (
    CommanderIntent,
    SubordinateObjective,
    InitiativeEnvelope,
    decompose_spatial,
    aggregate_compliance,
)

__all__ = [
    "MissionGoal",
    "MissionType",
    "CommanderIntent",
    "SubordinateObjective",
    "InitiativeEnvelope",
    "decompose_spatial",
    "aggregate_compliance",
]
