"""Challenge 1 — Assured synthesis of composite IoBT assets.

Pipeline::

    MissionGoal --compile_goal--> RequirementSet
    AssetInventory --DiscoveryService--> discovered assets
    sniffed traffic --TrafficFingerprinter--> device classes / Sybil flags
    discovery + trust --AssetCharacterizer--> characterizations
    characterizations --Recruiter--> candidate pool
    pool + requirements --GreedyComposer (or baselines)--> CompositeAsset
    CompositeAsset --assess--> AssuranceReport
"""

from repro.core.synthesis.requirements import (
    RequirementSet,
    compile_goal,
)
from repro.core.synthesis.discovery import DiscoveryService, DiscoveryRecord
from repro.core.synthesis.fingerprint import TrafficFingerprinter
from repro.core.synthesis.characterization import (
    AssetCharacterizer,
    Characterization,
)
from repro.core.synthesis.recruitment import Recruiter
from repro.core.synthesis.composer import CompositeAsset, GreedyComposer
from repro.core.synthesis.optimizer import (
    AnnealingComposer,
    RandomComposer,
    evaluate_composite,
)
from repro.core.synthesis.assurance import AssuranceReport, assess
from repro.core.synthesis.functional import (
    Stage,
    ServiceGraph,
    Placement,
    PipelinePlacer,
)

__all__ = [
    "Stage",
    "ServiceGraph",
    "Placement",
    "PipelinePlacer",
    "RequirementSet",
    "compile_goal",
    "DiscoveryService",
    "DiscoveryRecord",
    "TrafficFingerprinter",
    "AssetCharacterizer",
    "Characterization",
    "Recruiter",
    "CompositeAsset",
    "GreedyComposer",
    "AnnealingComposer",
    "RandomComposer",
    "evaluate_composite",
    "AssuranceReport",
    "assess",
]
