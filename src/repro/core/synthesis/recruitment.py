"""Recruitment: select the candidate pool for composition.

Filters characterized assets on trust / freshness / suspicion thresholds
and ranks by a suitability score, producing the pool that a composer
searches.  Recruitment decisions use only *evidence* (characterizations);
whether a hostile slips through is measured by the experiments, not
prevented by oracle knowledge.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.synthesis.characterization import (
    AssetCharacterizer,
    Characterization,
)
from repro.things.asset import Asset, AssetInventory

__all__ = ["Recruiter"]


class Recruiter:
    """Builds ranked candidate pools from characterizations."""

    def __init__(
        self,
        inventory: AssetInventory,
        characterizer: AssetCharacterizer,
        *,
        min_trust: float = 0.4,
        max_staleness_s: float = 60.0,
        exclude_suspected_hostiles: bool = True,
    ):
        self.inventory = inventory
        self.characterizer = characterizer
        self.min_trust = min_trust
        self.max_staleness_s = max_staleness_s
        self.exclude_suspected_hostiles = exclude_suspected_hostiles

    def suitability(self, c: Characterization) -> float:
        """Rank score: trusted, available, behaviorally consistent."""
        penalty = 0.0
        if c.fingerprint_anomaly is not None:
            penalty = min(1.0, c.fingerprint_anomaly / 10.0)
        return c.trust * (0.5 + 0.5 * c.availability) * (1.0 - 0.5 * penalty)

    def eligible(self, c: Characterization) -> bool:
        if c.trust < self.min_trust:
            return False
        if c.staleness_s > self.max_staleness_s:
            return False
        if self.exclude_suspected_hostiles and c.hostile_suspected:
            return False
        return True

    def recruit(
        self, *, limit: Optional[int] = None
    ) -> List[Asset]:
        """Return the ranked candidate pool (best first)."""
        characterized = self.characterizer.characterize_all()
        scored = [
            (self.suitability(c), c)
            for c in characterized
            if self.eligible(c)
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1].asset_id))
        if limit is not None:
            scored = scored[:limit]
        pool = []
        for _score, c in scored:
            asset = self.inventory.get(c.asset_id)
            if asset.alive:
                pool.append(asset)
        return pool

    def rejection_report(self) -> Dict[str, int]:
        """Counts of why characterized assets were rejected (for audits)."""
        report = {"low_trust": 0, "stale": 0, "suspected_hostile": 0, "accepted": 0}
        for c in self.characterizer.characterize_all():
            if c.trust < self.min_trust:
                report["low_trust"] += 1
            elif c.staleness_s > self.max_staleness_s:
                report["stale"] += 1
            elif self.exclude_suspected_hostiles and c.hostile_suspected:
                report["suspected_hostile"] += 1
            else:
                report["accepted"] += 1
        return report
