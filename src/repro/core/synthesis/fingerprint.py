"""Traffic fingerprinting for device identification.

§III-A lists "fingerprinting based on unique traffic characteristics" as a
cyber-discovery technique — and warns that wireless assets "may not be
amenable" to it, which is precisely what makes it a classifier rather than
a lookup.  The :class:`TrafficFingerprinter` taps the network promiscuously,
accumulates per-source traffic features, and classifies sources against
device-class centroids learned from labeled (blue) examples.  Sources whose
traffic does not match their *claimed* class are Sybil suspects.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DiscoveryError
from repro.net.node import Network
from repro.net.packet import Packet, PacketKind

__all__ = ["TrafficProfile", "TrafficFingerprinter"]

#: Packet kinds binned as features (order fixed for vector layout).
_KIND_BINS = (
    PacketKind.DATA,
    PacketKind.BEACON,
    PacketKind.CONTROL,
    PacketKind.MODEL_UPDATE,
)


@dataclass
class TrafficProfile:
    """Accumulated traffic statistics for one source node."""

    node_id: int
    packets: int = 0
    total_bits: float = 0.0
    first_time: float = math.inf
    last_time: float = -math.inf
    kind_counts: Dict[PacketKind, int] = field(default_factory=dict)
    _sizes_sum_sq: float = 0.0

    def update(self, packet: Packet, time: float) -> None:
        self.packets += 1
        self.total_bits += packet.size_bits
        self._sizes_sum_sq += float(packet.size_bits) ** 2
        self.first_time = min(self.first_time, time)
        self.last_time = max(self.last_time, time)
        self.kind_counts[packet.kind] = self.kind_counts.get(packet.kind, 0) + 1

    @property
    def mean_size_bits(self) -> float:
        return self.total_bits / self.packets if self.packets else 0.0

    @property
    def size_std(self) -> float:
        if self.packets < 2:
            return 0.0
        mean = self.mean_size_bits
        var = self._sizes_sum_sq / self.packets - mean * mean
        return math.sqrt(max(0.0, var))

    @property
    def rate_hz(self) -> float:
        span = self.last_time - self.first_time
        return self.packets / span if span > 0 else float(self.packets)

    def feature_vector(self) -> np.ndarray:
        """Log-scaled feature vector for classification."""
        kind_fracs = [
            self.kind_counts.get(k, 0) / self.packets if self.packets else 0.0
            for k in _KIND_BINS
        ]
        return np.array(
            [
                math.log1p(self.rate_hz),
                math.log1p(self.mean_size_bits),
                math.log1p(self.size_std),
                *kind_fracs,
            ],
            dtype=float,
        )


class TrafficFingerprinter:
    """Promiscuous traffic tap + nearest-centroid device classifier."""

    def __init__(self, network: Network, *, min_packets: int = 5):
        self.network = network
        self.sim = network.sim
        self.min_packets = min_packets
        self.profiles: Dict[int, TrafficProfile] = {}
        self._centroids: Dict[str, np.ndarray] = {}
        self._scale: Optional[np.ndarray] = None
        network.add_sniffer(self._on_delivery)

    # ----------------------------------------------------------------- tap

    def _on_delivery(self, packet: Packet, from_id: int, to_id: int) -> None:
        profile = self.profiles.get(from_id)
        if profile is None:
            profile = self.profiles[from_id] = TrafficProfile(node_id=from_id)
        profile.update(packet, self.sim.now)

    def profile(self, node_id: int) -> Optional[TrafficProfile]:
        return self.profiles.get(node_id)

    def observed_nodes(self) -> List[int]:
        return sorted(
            nid
            for nid, p in self.profiles.items()
            if p.packets >= self.min_packets
        )

    # ------------------------------------------------------------- training

    def fit(self, labeled: Dict[int, str]) -> None:
        """Learn class centroids from labeled node -> device_class pairs."""
        grouped: Dict[str, List[np.ndarray]] = defaultdict(list)
        for node_id, label in labeled.items():
            profile = self.profiles.get(node_id)
            if profile is None or profile.packets < self.min_packets:
                continue
            grouped[label].append(profile.feature_vector())
        if not grouped:
            raise DiscoveryError("no usable labeled examples to fit on")
        all_vecs = np.vstack([v for vecs in grouped.values() for v in vecs])
        scale = all_vecs.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._centroids = {
            label: np.mean(vecs, axis=0) for label, vecs in grouped.items()
        }

    @property
    def fitted(self) -> bool:
        return bool(self._centroids)

    # ----------------------------------------------------------- prediction

    def _distance(self, vec: np.ndarray, label: str) -> float:
        assert self._scale is not None
        diff = (vec - self._centroids[label]) / self._scale
        return float(np.linalg.norm(diff))

    def classify(self, node_id: int) -> Optional[Tuple[str, float]]:
        """Predicted (device_class, distance) for a node, or None."""
        if not self.fitted:
            raise DiscoveryError("fingerprinter is not fitted")
        profile = self.profiles.get(node_id)
        if profile is None or profile.packets < self.min_packets:
            return None
        vec = profile.feature_vector()
        best = min(self._centroids, key=lambda lbl: self._distance(vec, lbl))
        return best, self._distance(vec, best)

    def anomaly_score(self, node_id: int, claimed_class: str) -> Optional[float]:
        """Distance between a node's traffic and its *claimed* class.

        High scores mean the node does not behave like what it claims to
        be — the Sybil signature.
        """
        if not self.fitted:
            raise DiscoveryError("fingerprinter is not fitted")
        if claimed_class not in self._centroids:
            return None
        profile = self.profiles.get(node_id)
        if profile is None or profile.packets < self.min_packets:
            return None
        return self._distance(profile.feature_vector(), claimed_class)

    def flag_sybils(
        self, claims: Dict[int, str], *, threshold: float = 3.0
    ) -> List[int]:
        """Nodes whose traffic deviates from their claimed class."""
        flagged = []
        for node_id, claimed in sorted(claims.items()):
            score = self.anomaly_score(node_id, claimed)
            if score is not None and score > threshold:
                flagged.append(node_id)
        return flagged
