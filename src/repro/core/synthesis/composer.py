"""Composition: select and wire assets into a composite that meets requirements.

:class:`GreedyComposer` implements the practical algorithm: pick a fusion
sink, greedily add sensors by marginal coverage gain (the classic
(1 - 1/e) submodular-maximization heuristic), add compute until the FLOPS
requirement is met, then add relays along min-ETX paths so every member can
reach the sink.  Baseline composers for the E2 experiment live in
:mod:`repro.core.synthesis.optimizer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


from repro.core.synthesis.requirements import RequirementSet
from repro.errors import CompositionError
from repro.net.topology import TopologySnapshot
from repro.things.asset import Asset
from repro.util.geometry import Point, Region, distance

__all__ = ["CompositeAsset", "GreedyComposer", "coverage_fraction"]

#: Grid resolution used to evaluate area coverage.
_COVERAGE_GRID = 16


def _coverage_points(area: Region) -> Tuple[Point, ...]:
    return area.grid_points(_COVERAGE_GRID, _COVERAGE_GRID)


def coverage_fraction(
    sensors: Sequence[Asset], area: Region, *, range_scale: float = 1.0
) -> float:
    """Fraction of a sample grid of ``area`` within some sensor's range."""
    points = _coverage_points(area)
    if not points:
        return 0.0
    covered = 0
    ranges = [
        (s.position, s.profile.sensing_range_m * range_scale) for s in sensors
    ]
    for p in points:
        for pos, r in ranges:
            if distance(pos, p) <= r:
                covered += 1
                break
    return covered / len(points)


@dataclass
class CompositeAsset:
    """A synthesized composite: members with roles plus achieved metrics."""

    requirements: RequirementSet
    sink: Optional[int] = None  # asset id of the fusion sink
    sensors: List[int] = field(default_factory=list)
    compute: List[int] = field(default_factory=list)
    relays: List[int] = field(default_factory=list)
    coverage: float = 0.0
    total_flops: float = 0.0
    max_path_etx: float = math.inf
    connected_fraction: float = 0.0
    build_time_s: float = 0.0

    @property
    def members(self) -> List[int]:
        """All member asset ids (deduplicated, role order preserved)."""
        seen: Set[int] = set()
        out: List[int] = []
        for aid in (
            ([self.sink] if self.sink is not None else [])
            + self.sensors
            + self.compute
            + self.relays
        ):
            if aid not in seen:
                seen.add(aid)
                out.append(aid)
        return out

    @property
    def size(self) -> int:
        return len(self.members)

    def satisfies(self) -> bool:
        """Does the composite meet its compiled requirements?"""
        req = self.requirements
        return (
            self.coverage >= req.coverage_target
            and self.total_flops >= req.compute_flops
            and self.connected_fraction >= 0.99
        )

    def describe(self) -> str:
        return (
            f"composite: {len(self.sensors)} sensors, {len(self.compute)} "
            f"compute, {len(self.relays)} relays; coverage={self.coverage:.0%}, "
            f"flops={self.total_flops:.2e}, connected={self.connected_fraction:.0%}"
        )


class GreedyComposer:
    """Greedy marginal-gain composition over a candidate pool.

    Parameters
    ----------
    max_sensor_surplus:
        Stop adding sensors after requirement count times this factor even
        if coverage is short (prevents unbounded recruitment in sparse
        regions).
    energy_aware:
        When True, marginal coverage gains are discounted by battery
        depletion, so the composer spreads load onto fresh assets — the
        defense against composing a mission onto nearly-dead batteries
        (the paper's "limitations on energy, power" constraint).
    """

    name = "greedy"

    def __init__(self, *, max_sensor_surplus: float = 2.0, energy_aware: bool = False):
        self.max_sensor_surplus = max_sensor_surplus
        self.energy_aware = energy_aware

    def _energy_factor(self, asset: Asset) -> float:
        if not self.energy_aware or asset.battery is None:
            return 1.0
        return 0.25 + 0.75 * asset.battery.fraction_remaining

    def compose(
        self,
        requirements: RequirementSet,
        candidates: Sequence[Asset],
        topology: TopologySnapshot,
    ) -> CompositeAsset:
        """Build a composite from ``candidates`` under ``requirements``."""
        if not candidates:
            raise CompositionError("empty candidate pool")
        area = requirements.goal.area
        by_id = {a.id: a for a in candidates}
        composite = CompositeAsset(requirements=requirements)

        composite.sink = self._pick_sink(candidates, area, topology)
        self._add_sensors(composite, requirements, candidates, area)
        self._add_compute(composite, requirements, candidates)
        self._add_relays(composite, by_id, topology)
        self._finalize_metrics(composite, by_id, area, topology)
        return composite

    # ------------------------------------------------------------------ roles

    def _pick_sink(
        self,
        candidates: Sequence[Asset],
        area: Region,
        topology: TopologySnapshot,
    ) -> int:
        """Highest-compute candidate near the area, biased to connectivity."""
        def sink_score(asset: Asset) -> Tuple[float, float]:
            d = distance(asset.position, area.center)
            degree = (
                topology.graph.degree(asset.node_id)
                if asset.node_id in topology.graph
                else 0
            )
            return (asset.profile.compute_flops * (1 + degree), -d)

        best = max(candidates, key=sink_score)
        return best.id

    def _add_sensors(
        self,
        composite: CompositeAsset,
        requirements: RequirementSet,
        candidates: Sequence[Asset],
        area: Region,
    ) -> None:
        pool = [
            a
            for a in candidates
            if a.profile.sensing & requirements.modalities
            and a.profile.sensing_range_m > 0
        ]
        points = list(_coverage_points(area))
        uncovered: Set[int] = set(range(len(points)))
        chosen: List[Asset] = []
        budget = max(
            requirements.n_sensors,
            int(requirements.n_sensors * self.max_sensor_surplus),
        )
        while uncovered and len(chosen) < budget and pool:
            best_asset = None
            best_gain: Set[int] = set()
            best_score = 0.0
            for asset in pool:
                r = asset.profile.sensing_range_m
                gain = {
                    i
                    for i in uncovered
                    if distance(asset.position, points[i]) <= r
                }
                score = len(gain) * self._energy_factor(asset)
                if score > best_score:
                    best_score = score
                    best_gain = gain
                    best_asset = asset
            if best_asset is None or not best_gain:
                break
            chosen.append(best_asset)
            pool.remove(best_asset)
            uncovered -= best_gain
            covered_frac = 1.0 - len(uncovered) / len(points)
            if (
                covered_frac >= requirements.coverage_target
                and len(chosen) >= requirements.n_sensors
            ):
                break
        composite.sensors = [a.id for a in chosen]

    def _add_compute(
        self,
        composite: CompositeAsset,
        requirements: RequirementSet,
        candidates: Sequence[Asset],
    ) -> None:
        have = {composite.sink, *composite.sensors}
        flops = sum(
            a.profile.compute_flops
            for a in candidates
            if a.id in have
        )
        pool = sorted(
            (a for a in candidates if a.id not in have),
            key=lambda a: a.profile.compute_flops * self._energy_factor(a),
            reverse=True,
        )
        added: List[int] = []
        for asset in pool:
            if flops >= requirements.compute_flops:
                break
            if asset.profile.compute_flops <= 0:
                break
            flops += asset.profile.compute_flops
            added.append(asset.id)
        composite.compute = added
        composite.total_flops = flops

    def _add_relays(
        self,
        composite: CompositeAsset,
        by_id: Dict[int, Asset],
        topology: TopologySnapshot,
    ) -> None:
        """Add path nodes so every member reaches the sink in the topology."""
        sink_asset = by_id.get(composite.sink)
        if sink_asset is None:
            return
        sink_node = sink_asset.node_id
        node_to_asset = {a.node_id: a.id for a in by_id.values()}
        member_ids = set(composite.members)
        relays: List[int] = []
        for aid in list(member_ids):
            asset = by_id.get(aid)
            if asset is None or asset.node_id == sink_node:
                continue
            path = topology.shortest_path(asset.node_id, sink_node)
            if path is None:
                continue
            for node_id in path[1:-1]:
                relay_aid = node_to_asset.get(node_id)
                if relay_aid is not None and relay_aid not in member_ids:
                    member_ids.add(relay_aid)
                    relays.append(relay_aid)
        composite.relays = relays

    # ---------------------------------------------------------------- metrics

    def _finalize_metrics(
        self,
        composite: CompositeAsset,
        by_id: Dict[int, Asset],
        area: Region,
        topology: TopologySnapshot,
    ) -> None:
        sensor_assets = [by_id[a] for a in composite.sensors if a in by_id]
        composite.coverage = coverage_fraction(sensor_assets, area)
        sink_asset = by_id.get(composite.sink)
        if sink_asset is None:
            composite.connected_fraction = 0.0
            return
        sink_node = sink_asset.node_id
        reachable = 0
        worst_etx = 0.0
        others = [m for m in composite.members if m != composite.sink]
        for aid in others:
            asset = by_id.get(aid)
            if asset is None:
                continue
            path = topology.shortest_path(asset.node_id, sink_node)
            if path is not None:
                reachable += 1
                worst_etx = max(worst_etx, topology.path_etx(path))
        composite.connected_fraction = (
            reachable / len(others) if others else 1.0
        )
        composite.max_path_etx = worst_etx if reachable else math.inf
