"""Continuous discovery of cyberphysical assets.

§III-A: mobile, duty-cycled assets "may not consistently respond to probes",
"may not appear at consistent topological locations", and "move frequently,
so their discovery needs to be continuous".  The :class:`DiscoveryService`
runs periodic probe rounds from a set of blue discoverer nodes:

* **Active probing** — an asset is observed in a round if it is alive,
  awake (duty-cycle draw), and within radio range of some discoverer.
* **Passive side-channel** — red/gray nodes that transmit are observable
  by RF-sensing blue assets even when they ignore probes; emitters that are
  not in the blue roster are flagged as *suspected hostiles* (the paper's
  "discovery of gray/red nodes using side channel emanations").

Records age: an asset unseen for longer than ``staleness_s`` no longer
counts as discovered (continuous discovery, not one-shot census).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set


from repro.errors import DiscoveryError
from repro.scenarios.builder import Scenario
from repro.things.asset import Affiliation, Asset
from repro.things.capabilities import SensingModality
from repro.util.geometry import Point, distance

__all__ = ["DiscoveryRecord", "DiscoveryService"]


@dataclass
class DiscoveryRecord:
    """What discovery knows about one asset."""

    asset_id: int
    first_seen: float
    last_seen: float
    observations: int = 1
    last_position: Optional[Point] = None
    via_side_channel: bool = False

    def staleness(self, now: float) -> float:
        return now - self.last_seen


class DiscoveryService:
    """Periodic probe + passive RF discovery over a scenario."""

    def __init__(
        self,
        scenario: Scenario,
        discoverer_node_ids: Sequence[int],
        *,
        probe_period_s: float = 5.0,
        staleness_s: float = 60.0,
        emission_rate: float = 0.3,
    ):
        if not discoverer_node_ids:
            raise DiscoveryError("need at least one discoverer node")
        if probe_period_s <= 0:
            raise DiscoveryError("probe_period_s must be positive")
        self.scenario = scenario
        self.sim = scenario.sim
        self.network = scenario.network
        self.inventory = scenario.inventory
        self.discoverers = list(discoverer_node_ids)
        self.probe_period_s = probe_period_s
        self.staleness_s = staleness_s
        self.emission_rate = emission_rate
        self.records: Dict[int, DiscoveryRecord] = {}
        self.suspected_hostiles: Set[int] = set()
        self._rng = self.sim.rng.get("discovery")
        self._started = False
        self._blue_roster = {
            a.asset_id if hasattr(a, "asset_id") else a.id
            for a in self.inventory.blue()
        }

    def start(self) -> None:
        """Begin periodic probe rounds (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.every(self.probe_period_s, self.probe_round)

    # ------------------------------------------------------------ probe round

    def probe_round(self) -> int:
        """Run one discovery round; returns new+refreshed observation count."""
        observed = 0
        live_discoverers = [
            d for d in self.discoverers if d in self.network.nodes
            and self.network.node(d).up
        ]
        reach: Set[int] = set()
        for d in live_discoverers:
            reach.update(self.network.neighbors(d))
            reach.add(d)
        for asset in self.inventory:
            if not asset.alive:
                continue
            if asset.node_id not in reach:
                continue
            if not asset.is_awake(self._rng):
                continue
            self._observe(asset, side_channel=False)
            observed += 1
            self.sim.metrics.incr("discovery.active_observations")
        observed += self._side_channel_round()
        self.sim.metrics.sample("discovery.recall", self.recall())
        return observed

    def _side_channel_round(self) -> int:
        """Detect transmitting non-blue emitters via blue RF sensors."""
        rf_sensors = [
            a
            for a in self.inventory.blue()
            if a.alive and a.profile.can_sense(SensingModality.RF)
        ]
        if not rf_sensors:
            return 0
        observed = 0
        for asset in self.inventory:
            if not asset.alive or asset.affiliation is Affiliation.BLUE:
                continue
            # Emission draw: is this node transmitting during our dwell?
            if self._rng.random() >= self.emission_rate:
                continue
            for sensor_asset in rf_sensors:
                rf_range = max(
                    sensor_asset.profile.sensing_range_m,
                    self.network.channel.comm_range_m(asset.profile.tx_power_dbm),
                )
                if distance(sensor_asset.position, asset.position) <= rf_range:
                    self._observe(asset, side_channel=True)
                    if asset.id not in self._blue_roster:
                        self.suspected_hostiles.add(asset.id)
                    observed += 1
                    self.sim.metrics.incr("discovery.side_channel_observations")
                    break
        return observed

    def _observe(self, asset: Asset, *, side_channel: bool) -> None:
        record = self.records.get(asset.id)
        if record is None:
            self.records[asset.id] = DiscoveryRecord(
                asset_id=asset.id,
                first_seen=self.sim.now,
                last_seen=self.sim.now,
                last_position=asset.position,
                via_side_channel=side_channel,
            )
            self.sim.trace.emit(
                "discovery.new", asset=asset.id, side_channel=side_channel
            )
        else:
            record.last_seen = self.sim.now
            record.observations += 1
            record.last_position = asset.position

    # --------------------------------------------------------------- queries

    def fresh_records(self) -> List[DiscoveryRecord]:
        """Records seen within the staleness horizon."""
        now = self.sim.now
        return [
            r for r in self.records.values() if r.staleness(now) <= self.staleness_s
        ]

    def discovered_ids(self) -> Set[int]:
        return {r.asset_id for r in self.fresh_records()}

    def recall(self) -> float:
        """Fraction of alive assets currently (freshly) discovered."""
        alive = [a for a in self.inventory if a.alive]
        if not alive:
            return 0.0
        found = self.discovered_ids()
        return sum(1 for a in alive if a.id in found) / len(alive)

    def hostile_detection_stats(self) -> Dict[str, float]:
        """Detection quality of the suspicion set vs ground truth.

        Side-channel discovery flags *non-blue emitters* (it cannot tell
        red from gray from emissions alone), so precision/recall are
        reported against the non-blue population; ``red_recall`` separately
        reports how many truly hostile assets were flagged.
        """
        non_blue = {
            a.id for a in self.inventory if a.affiliation is not Affiliation.BLUE
        }
        truly_hostile = {a.id for a in self.inventory if a.hostile}
        suspected = self.suspected_hostiles
        tp = len(suspected & non_blue)
        precision = tp / len(suspected) if suspected else 0.0
        recall = tp / len(non_blue) if non_blue else 0.0
        red_recall = (
            len(suspected & truly_hostile) / len(truly_hostile)
            if truly_hostile
            else 0.0
        )
        return {
            "precision": precision,
            "recall": recall,
            "red_recall": red_recall,
            "suspected": len(suspected),
        }
