"""Reasoning from goals to means.

:func:`compile_goal` turns a declarative :class:`MissionGoal` into a
quantitative :class:`RequirementSet`: how many sensors (per the coverage
geometry), how much compute (per the expected detection load), and what the
network must provide (latency -> hop budget; confidence -> redundancy).
This is the "automatic reasoning from goals to means" step of §III-B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.mission import MissionGoal, MissionType
from repro.errors import RequirementError
from repro.things.capabilities import SensingModality

__all__ = ["RequirementSet", "compile_goal"]

#: Hexagonal-packing efficiency: disks cover at most ~90.7% of the plane;
#: randomly-placed disks do worse.  Used to inflate the naive sensor count.
_PACKING_EFFICIENCY = 0.7

#: Planning estimate of one relay hop's latency (MAC + transmission), used
#: to convert a latency budget into a hop budget.
_PER_HOP_LATENCY_S = 0.05

#: Processing cost per detection event (feature extraction + association).
_FLOPS_PER_DETECTION = 5.0e7

#: Baseline fusion cost per sensor per second of mission time.
_FLOPS_PER_SENSOR_HZ = 1.0e6


@dataclass(frozen=True)
class RequirementSet:
    """Quantitative requirements compiled from one mission goal."""

    goal: MissionGoal
    n_sensors: int
    modalities: FrozenSet[SensingModality]
    sensing_range_m: float
    compute_flops: float
    max_hops: int
    min_bandwidth_bps: float
    redundancy: int
    coverage_target: float

    def describe(self) -> str:
        return (
            f"{self.n_sensors} sensors (range~{self.sensing_range_m:.0f}m), "
            f"{self.compute_flops:.2e} FLOPS, <= {self.max_hops} hops, "
            f"redundancy x{self.redundancy}"
        )


def compile_goal(
    goal: MissionGoal,
    *,
    sensing_range_m: Optional[float] = None,
    scan_rate_hz: float = 1.0,
) -> RequirementSet:
    """Compile a mission goal into quantitative requirements.

    Parameters
    ----------
    sensing_range_m:
        Planning value for effective sensor range.  Defaults to a
        conservative 150 m (ground-sensor class); callers that know their
        inventory pass the actual median range.
    scan_rate_hz:
        How often each sensor produces a scan, driving the compute sizing.
    """
    r = sensing_range_m if sensing_range_m is not None else 150.0
    if r <= 0:
        raise RequirementError("sensing_range_m must be positive")

    # --- sensing: disk-coverage geometry with packing inefficiency.
    area_needed = goal.min_coverage * goal.area.area
    per_sensor = math.pi * r * r * _PACKING_EFFICIENCY
    n_sensors = max(1, math.ceil(area_needed / per_sensor))

    # --- redundancy: higher confidence demands independent corroboration.
    if goal.min_confidence >= 0.95:
        redundancy = 3
    elif goal.min_confidence >= 0.85:
        redundancy = 2
    else:
        redundancy = 1
    if goal.mission_type is MissionType.TRACK:
        # Tracking needs continuous custody: one extra layer of overlap.
        redundancy += 1

    # --- compute: expected detection load plus steady fusion cost.
    detection_rate = n_sensors * scan_rate_hz
    compute_flops = (
        detection_rate * _FLOPS_PER_DETECTION
        + n_sensors * scan_rate_hz * _FLOPS_PER_SENSOR_HZ
    )

    # --- network: latency budget -> hop budget; report sizing -> bandwidth.
    max_hops = max(1, int(goal.max_latency_s / _PER_HOP_LATENCY_S / redundancy))
    report_bits = 2048.0
    min_bandwidth_bps = detection_rate * report_bits * redundancy

    return RequirementSet(
        goal=goal,
        n_sensors=n_sensors * redundancy,
        modalities=goal.modalities,
        sensing_range_m=r,
        compute_flops=compute_flops,
        max_hops=max_hops,
        min_bandwidth_bps=min_bandwidth_bps,
        redundancy=redundancy,
        coverage_target=goal.min_coverage,
    )
