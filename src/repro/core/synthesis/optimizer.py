"""Baseline and search-based composers for the synthesis-scale experiment.

Three strategies share one objective, :func:`evaluate_composite`, so the E2
experiment can compare quality-vs-time fairly:

* :class:`RandomComposer` — recruit a random subset of the required size
  (the "no algorithm" baseline).
* :class:`GreedyComposer` (in :mod:`.composer`) — marginal-gain heuristic.
* :class:`AnnealingComposer` — simulated-annealing refinement of the greedy
  solution via member swaps (quality ceiling at higher cost).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.synthesis.composer import (
    CompositeAsset,
    GreedyComposer,
)
from repro.core.synthesis.requirements import RequirementSet
from repro.errors import CompositionError
from repro.net.topology import TopologySnapshot
from repro.things.asset import Asset

__all__ = ["evaluate_composite", "RandomComposer", "AnnealingComposer"]


def evaluate_composite(
    composite: CompositeAsset,
    *,
    size_penalty: float = 0.002,
) -> float:
    """Scalar quality of a composite: requirement satisfaction minus cost.

    Score = coverage attainment (0..1) + compute attainment (0..1)
    + connectivity (0..1) - size_penalty * members.  A satisfying composite
    scores near 3 minus its (small) size cost.
    """
    req = composite.requirements
    coverage_score = min(1.0, composite.coverage / req.coverage_target)
    flops_score = min(
        1.0, composite.total_flops / req.compute_flops if req.compute_flops else 1.0
    )
    return (
        coverage_score
        + flops_score
        + composite.connected_fraction
        - size_penalty * composite.size
    )


class RandomComposer:
    """Recruit a uniformly random subset of the required size."""

    name = "random"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def compose(
        self,
        requirements: RequirementSet,
        candidates: Sequence[Asset],
        topology: TopologySnapshot,
    ) -> CompositeAsset:
        if not candidates:
            raise CompositionError("empty candidate pool")
        by_id = {a.id: a for a in candidates}
        n = min(len(candidates), requirements.n_sensors + 3)
        chosen_ids = self.rng.choice(
            sorted(by_id), size=n, replace=False
        ).tolist()
        chosen = [by_id[int(i)] for i in chosen_ids]
        composite = CompositeAsset(requirements=requirements)
        # Sink: the highest-compute member of the random draw.
        sink = max(chosen, key=lambda a: a.profile.compute_flops)
        composite.sink = sink.id
        composite.sensors = [
            a.id
            for a in chosen
            if a.profile.sensing & requirements.modalities and a.id != sink.id
        ]
        composite.compute = []
        greedy = GreedyComposer()
        greedy._add_relays(composite, by_id, topology)
        greedy._finalize_metrics(
            composite, by_id, requirements.goal.area, topology
        )
        composite.total_flops = sum(
            by_id[m].profile.compute_flops for m in composite.members if m in by_id
        )
        return composite


class AnnealingComposer:
    """Simulated annealing over sensor-set swaps, seeded by greedy.

    Each move swaps one selected sensor for one unselected candidate;
    moves are accepted by the Metropolis rule on :func:`evaluate_composite`.
    """

    name = "annealing"

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        iterations: int = 150,
        t_start: float = 0.2,
        t_end: float = 0.005,
    ):
        if iterations < 1:
            raise CompositionError("iterations must be >= 1")
        self.rng = rng
        self.iterations = iterations
        self.t_start = t_start
        self.t_end = t_end

    def compose(
        self,
        requirements: RequirementSet,
        candidates: Sequence[Asset],
        topology: TopologySnapshot,
    ) -> CompositeAsset:
        greedy = GreedyComposer()
        current = greedy.compose(requirements, candidates, topology)
        by_id = {a.id: a for a in candidates}
        sensor_pool = [
            a.id
            for a in candidates
            if a.profile.sensing & requirements.modalities
            and a.profile.sensing_range_m > 0
        ]
        if len(sensor_pool) <= len(current.sensors):
            return current

        best = current
        best_score = evaluate_composite(best)
        cur_sensors = list(current.sensors)
        cur_score = best_score
        for i in range(self.iterations):
            frac = i / max(1, self.iterations - 1)
            temperature = self.t_start * (self.t_end / self.t_start) ** frac
            outside = [s for s in sensor_pool if s not in cur_sensors]
            if not outside or not cur_sensors:
                break
            drop = int(self.rng.integers(0, len(cur_sensors)))
            add = outside[int(self.rng.integers(0, len(outside)))]
            trial_sensors = list(cur_sensors)
            trial_sensors[drop] = add
            trial = self._rebuild(
                requirements, by_id, topology, current.sink, trial_sensors
            )
            trial_score = evaluate_composite(trial)
            delta = trial_score - cur_score
            if delta >= 0 or self.rng.random() < math.exp(delta / temperature):
                cur_sensors = trial_sensors
                cur_score = trial_score
                if trial_score > best_score:
                    best, best_score = trial, trial_score
        return best

    def _rebuild(
        self,
        requirements: RequirementSet,
        by_id: Dict[int, Asset],
        topology: TopologySnapshot,
        sink: Optional[int],
        sensors: List[int],
    ) -> CompositeAsset:
        composite = CompositeAsset(requirements=requirements, sink=sink)
        composite.sensors = list(sensors)
        greedy = GreedyComposer()
        candidates = list(by_id.values())
        greedy._add_compute(composite, requirements, candidates)
        greedy._add_relays(composite, by_id, topology)
        greedy._finalize_metrics(
            composite, by_id, requirements.goal.area, topology
        )
        return composite
