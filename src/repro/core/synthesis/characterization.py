"""Asset characterization: fuse discovery, fingerprints, and trust.

Produces per-asset :class:`Characterization` records — the paper's
"characterize their capabilities to meet mission goals (and/or their
potential threats, in case of gray/red nodes)".  Characterizations are what
recruitment filters on; they never read ground-truth affiliation, only
observable evidence (discovery freshness, side-channel flags, fingerprint
anomalies, reputation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.synthesis.discovery import DiscoveryService
from repro.core.synthesis.fingerprint import TrafficFingerprinter
from repro.security.trust import TrustLedger
from repro.things.asset import Asset, AssetInventory

__all__ = ["Characterization", "AssetCharacterizer"]


@dataclass(frozen=True)
class Characterization:
    """Evidence-based assessment of one asset."""

    asset_id: int
    node_id: int
    device_class_claimed: str
    device_class_estimated: Optional[str]
    trust: float
    availability: float         # observation frequency vs probe rounds
    staleness_s: float
    hostile_suspected: bool
    fingerprint_anomaly: Optional[float]

    @property
    def usable(self) -> bool:
        """Is the evidence fresh enough to recruit on at all?"""
        return self.availability > 0.0


class AssetCharacterizer:
    """Builds characterizations from the synthesis evidence sources."""

    def __init__(
        self,
        inventory: AssetInventory,
        discovery: DiscoveryService,
        *,
        fingerprinter: Optional[TrafficFingerprinter] = None,
        trust: Optional[TrustLedger] = None,
        sybil_threshold: float = 3.0,
    ):
        self.inventory = inventory
        self.discovery = discovery
        self.fingerprinter = fingerprinter
        self.trust = trust if trust is not None else TrustLedger()
        self.sybil_threshold = sybil_threshold

    def characterize(self, asset: Asset) -> Optional[Characterization]:
        """Characterize one asset from current evidence; None if unseen."""
        record = self.discovery.records.get(asset.id)
        if record is None:
            return None
        now = self.discovery.sim.now
        elapsed_rounds = max(
            1.0, now / self.discovery.probe_period_s
        )
        availability = min(1.0, record.observations / elapsed_rounds)

        estimated = None
        anomaly = None
        if self.fingerprinter is not None and self.fingerprinter.fitted:
            result = self.fingerprinter.classify(asset.node_id)
            if result is not None:
                estimated = result[0]
            anomaly = self.fingerprinter.anomaly_score(
                asset.node_id, asset.profile.device_class
            )

        hostile = asset.id in self.discovery.suspected_hostiles
        if anomaly is not None and anomaly > self.sybil_threshold:
            hostile = True

        return Characterization(
            asset_id=asset.id,
            node_id=asset.node_id,
            device_class_claimed=asset.profile.device_class,
            device_class_estimated=estimated,
            trust=self.trust.trust(asset.id),
            availability=availability,
            staleness_s=record.staleness(now),
            hostile_suspected=hostile,
            fingerprint_anomaly=anomaly,
        )

    def characterize_all(self) -> List[Characterization]:
        """Characterize every discovered asset."""
        out = []
        for asset in self.inventory:
            c = self.characterize(asset)
            if c is not None:
                out.append(c)
        return out
