"""Functional composition: placing distributed service pipelines.

§III-B's third composition challenge: "functional composition for
generating distributed services and controllers that achieve the mission
goals in a scalable manner" (the macroprogramming / service-composition
lineage of citations [5-9]).

A battlefield service is modeled as a :class:`ServiceGraph` — a DAG of
processing stages (source -> filter -> fuse -> decide ...), each with a
compute cost per data unit and a data-rate contract on its edges.  The
:class:`PipelinePlacer` maps stages onto discovered compute elements so
that end-to-end latency (compute service time + network transfer time
along min-ETX paths) is minimized, subject to per-element capacity.

This is the NP-hard task-assignment problem; the placer is the standard
greedy list-scheduler over a topological order, which is what production
stream processors use for initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import CompositionError
from repro.net.topology import TopologySnapshot
from repro.things.asset import Asset

__all__ = ["Stage", "ServiceGraph", "Placement", "PipelinePlacer"]

#: Planning value for one radio transfer of one data unit (s per bit at
#: 1 Mbps), scaled by path ETX.
_TRANSFER_S_PER_BIT = 1.0e-6


@dataclass(frozen=True)
class Stage:
    """One processing stage of a battlefield service.

    ``pinned_node`` constrains placement (e.g., a source stage must run
    where its sensor is; an actuation stage where the actuator is).
    """

    name: str
    work_flops_per_unit: float
    output_bits_per_unit: float = 2048.0
    pinned_node: Optional[int] = None


class ServiceGraph:
    """A DAG of stages with data-flow edges."""

    def __init__(self):
        self._graph = nx.DiGraph()

    def add_stage(self, stage: Stage) -> Stage:
        if stage.name in self._graph:
            raise CompositionError(f"duplicate stage {stage.name!r}")
        self._graph.add_node(stage.name, stage=stage)
        return stage

    def connect(self, upstream: str, downstream: str) -> None:
        for name in (upstream, downstream):
            if name not in self._graph:
                raise CompositionError(f"unknown stage {name!r}")
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise CompositionError(
                f"edge {upstream}->{downstream} would create a cycle"
            )

    def stage(self, name: str) -> Stage:
        try:
            return self._graph.nodes[name]["stage"]
        except KeyError:
            raise CompositionError(f"unknown stage {name!r}") from None

    def stages(self) -> List[Stage]:
        return [self._graph.nodes[n]["stage"] for n in self._graph.nodes]

    def topological_order(self) -> List[Stage]:
        return [
            self._graph.nodes[n]["stage"]
            for n in nx.topological_sort(self._graph)
        ]

    def upstream_of(self, name: str) -> List[str]:
        return sorted(self._graph.predecessors(name))

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(self._graph.edges)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @classmethod
    def linear_pipeline(cls, stages: Sequence[Stage]) -> "ServiceGraph":
        """Convenience: chain stages in order."""
        graph = cls()
        for stage in stages:
            graph.add_stage(stage)
        for a, b in zip(stages, stages[1:]):
            graph.connect(a.name, b.name)
        return graph


@dataclass
class Placement:
    """A mapping of stages to nodes, with its estimated cost."""

    assignment: Dict[str, int]
    end_to_end_latency_s: float
    transfer_latency_s: float
    compute_latency_s: float
    feasible: bool = True

    def node_of(self, stage_name: str) -> int:
        return self.assignment[stage_name]


class PipelinePlacer:
    """Greedy latency-aware placement of a service graph onto compute assets.

    Parameters
    ----------
    compute_assets:
        Candidate hosts (assets with compute capability).
    topology:
        Network snapshot for transfer-cost estimation (path ETX).
    data_rate_hz:
        Units of data entering the pipeline per second; drives the
        utilization (capacity) constraint per element.
    """

    def __init__(
        self,
        compute_assets: Sequence[Asset],
        topology: TopologySnapshot,
        *,
        data_rate_hz: float = 1.0,
        max_utilization: float = 0.8,
    ):
        hosts = [a for a in compute_assets if a.profile.compute_flops > 0]
        if not hosts:
            raise CompositionError("no compute-capable candidate hosts")
        self.hosts = hosts
        self.topology = topology
        self.data_rate_hz = data_rate_hz
        self.max_utilization = max_utilization
        self._by_node = {a.node_id: a for a in hosts}

    # ----------------------------------------------------------------- costs

    def _transfer_s(self, from_node: int, to_node: int, bits: float) -> float:
        if from_node == to_node:
            return 0.0
        path = self.topology.shortest_path(from_node, to_node)
        if path is None:
            return float("inf")
        etx = self.topology.path_etx(path)
        return bits * _TRANSFER_S_PER_BIT * etx

    def _service_s(self, host: Asset, stage: Stage) -> float:
        return stage.work_flops_per_unit / host.profile.compute_flops

    # ------------------------------------------------------------- placement

    def place(self, service: ServiceGraph) -> Placement:
        """Greedy topological placement minimizing incremental latency."""
        order = service.topological_order()
        load_flops: Dict[int, float] = {a.node_id: 0.0 for a in self.hosts}
        assignment: Dict[str, int] = {}
        compute_latency = 0.0
        transfer_latency = 0.0
        feasible = True

        for stage in order:
            candidates = self._candidates(stage, load_flops)
            if not candidates:
                feasible = False
                candidates = list(self.hosts)  # best-effort overload
            best_host = None
            best_cost = float("inf")
            for host in candidates:
                cost = self._service_s(host, stage)
                for upstream_name in service.upstream_of(stage.name):
                    upstream_stage = service.stage(upstream_name)
                    up_node = assignment[upstream_name]
                    cost += self._transfer_s(
                        up_node, host.node_id, upstream_stage.output_bits_per_unit
                    )
                if cost < best_cost:
                    best_cost = cost
                    best_host = host
            assert best_host is not None
            assignment[stage.name] = best_host.node_id
            load_flops[best_host.node_id] += (
                stage.work_flops_per_unit * self.data_rate_hz
            )
            compute_latency += self._service_s(best_host, stage)
            for upstream_name in service.upstream_of(stage.name):
                upstream_stage = service.stage(upstream_name)
                transfer_latency += self._transfer_s(
                    assignment[upstream_name],
                    best_host.node_id,
                    upstream_stage.output_bits_per_unit,
                )
        return Placement(
            assignment=assignment,
            end_to_end_latency_s=compute_latency + transfer_latency,
            transfer_latency_s=transfer_latency,
            compute_latency_s=compute_latency,
            feasible=feasible,
        )

    def _candidates(
        self, stage: Stage, load_flops: Dict[int, float]
    ) -> List[Asset]:
        if stage.pinned_node is not None:
            pinned = self._by_node.get(stage.pinned_node)
            return [pinned] if pinned is not None else []
        out = []
        for host in self.hosts:
            projected = (
                load_flops[host.node_id]
                + stage.work_flops_per_unit * self.data_rate_hz
            )
            if projected <= self.max_utilization * host.profile.compute_flops:
                out.append(host)
        return out

    def colocated_baseline(self, service: ServiceGraph) -> Placement:
        """Everything on the single largest host (the cloud-only baseline)."""
        unpinned_hosts = list(self.hosts)
        big = max(unpinned_hosts, key=lambda a: a.profile.compute_flops)
        assignment: Dict[str, int] = {}
        compute_latency = 0.0
        transfer_latency = 0.0
        for stage in service.topological_order():
            node = stage.pinned_node if stage.pinned_node is not None else big.node_id
            host = self._by_node.get(node, big)
            assignment[stage.name] = host.node_id
            compute_latency += self._service_s(host, stage)
            for upstream_name in service.upstream_of(stage.name):
                upstream_stage = service.stage(upstream_name)
                transfer_latency += self._transfer_s(
                    assignment[upstream_name],
                    host.node_id,
                    upstream_stage.output_bits_per_unit,
                )
        return Placement(
            assignment=assignment,
            end_to_end_latency_s=compute_latency + transfer_latency,
            transfer_latency_s=transfer_latency,
            compute_latency_s=compute_latency,
        )
