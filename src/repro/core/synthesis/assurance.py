"""Assurance: quantifiable guarantees about a synthesized composite.

The paper requires that "the aggregate properties of the composite,
including timeliness, performance/functionality, security, and
dependability, must be formally assured in an appropriately quantifiable
... manner, subject to well-understood assumptions."

:func:`assess` produces an :class:`AssuranceReport`:

* **coverage** — recomputed deterministic disk coverage.
* **timeliness** — worst member->sink expected latency from path ETX.
* **dependability** — Monte-Carlo probability that the composite still
  meets its coverage target after independent node failures at a stated
  rate (the well-understood assumption).
* **adversary exposure** — trust-weighted fraction of members that are
  non-blue or below the trust threshold, i.e. the composite's insider risk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.synthesis.composer import CompositeAsset, coverage_fraction
from repro.security.trust import TrustLedger
from repro.things.asset import Affiliation, AssetInventory

__all__ = ["AssuranceReport", "assess"]

#: Planning estimate of one transmission's latency (matches requirements).
_PER_TX_LATENCY_S = 0.05


@dataclass(frozen=True)
class AssuranceReport:
    """Quantified assurances for one composite, with their assumptions."""

    coverage: float
    expected_latency_s: float
    dependability: float
    adversary_exposure: float
    assumed_failure_rate: float
    trust_threshold: float
    meets_coverage: bool
    meets_latency: bool
    risk_accepted: bool

    @property
    def assured(self) -> bool:
        """All assurance clauses hold under the stated assumptions."""
        return self.meets_coverage and self.meets_latency and self.risk_accepted

    def describe(self) -> str:
        flag = "ASSURED" if self.assured else "NOT ASSURED"
        return (
            f"[{flag}] coverage={self.coverage:.0%}, "
            f"latency~{self.expected_latency_s:.2f}s, "
            f"dependability={self.dependability:.0%} "
            f"(@failure rate {self.assumed_failure_rate:.0%}), "
            f"adversary exposure={self.adversary_exposure:.0%}"
        )


def assess(
    composite: CompositeAsset,
    inventory: AssetInventory,
    *,
    trust: Optional[TrustLedger] = None,
    failure_rate: float = 0.1,
    trust_threshold: float = 0.5,
    max_risk: float = 0.2,
    n_monte_carlo: int = 200,
    rng: Optional[np.random.Generator] = None,
) -> AssuranceReport:
    """Assess a composite against its own requirements.

    ``failure_rate`` is the per-node independent failure probability over
    the mission horizon — the explicitly stated assumption under which the
    dependability number is valid.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    req = composite.requirements
    area = req.goal.area
    members = [inventory.get(aid) for aid in composite.members]
    sensors = [inventory.get(aid) for aid in composite.sensors]

    coverage = coverage_fraction(sensors, area)
    expected_latency = (
        composite.max_path_etx * _PER_TX_LATENCY_S
        if math.isfinite(composite.max_path_etx)
        else math.inf
    )

    # Dependability: survive random failures and still meet coverage.
    successes = 0
    for _trial in range(n_monte_carlo):
        alive = [s for s in sensors if rng.random() >= failure_rate]
        if coverage_fraction(alive, area) >= req.coverage_target:
            successes += 1
    dependability = successes / n_monte_carlo if n_monte_carlo else 0.0

    # Adversary exposure: members that are hostile, non-blue, or distrusted.
    exposed = 0.0
    for asset in members:
        if asset.hostile or asset.affiliation is not Affiliation.BLUE:
            exposed += 1.0
        elif trust is not None and trust.trust(asset.id) < trust_threshold:
            exposed += 1.0 - trust.trust(asset.id)
    adversary_exposure = exposed / len(members) if members else 1.0

    return AssuranceReport(
        coverage=coverage,
        expected_latency_s=expected_latency,
        dependability=dependability,
        adversary_exposure=adversary_exposure,
        assumed_failure_rate=failure_rate,
        trust_threshold=trust_threshold,
        meets_coverage=coverage >= req.coverage_target,
        meets_latency=expected_latency <= req.goal.max_latency_s,
        risk_accepted=adversary_exposure <= max_risk,
    )
