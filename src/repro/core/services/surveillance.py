"""Wide-area persistent surveillance: coverage monitoring.

Tracks the fraction of the area of responsibility within range of a live,
enabled sensor, sampled on a period.  This is the service-quality signal
for the E4 reflex experiment: an attack drops coverage; the reflex (or
re-synthesis) restores it; time-to-recover is read off the series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.synthesis.composer import coverage_fraction
from repro.errors import ConfigurationError
from repro.scenarios.builder import Scenario
from repro.things.asset import Asset
from repro.util.geometry import Region

__all__ = ["SurveillanceService"]


class SurveillanceService:
    """Periodic coverage sampling over a sensor set.

    Coverage counts only *usable* sensors: alive assets with at least one
    enabled sensor (a ModalityManager may disable all of an asset's sensors
    under hostile conditions, which correctly shows up as coverage loss).
    """

    def __init__(
        self,
        scenario: Scenario,
        sensor_assets: Sequence[Asset],
        area: Optional[Region] = None,
        *,
        sample_period_s: float = 5.0,
        metric_name: str = "surveillance.coverage",
    ):
        if sample_period_s <= 0:
            raise ConfigurationError("sample_period_s must be positive")
        self.scenario = scenario
        self.sim = scenario.sim
        self.sensor_assets = list(sensor_assets)
        self.area = area if area is not None else scenario.region
        self.sample_period_s = sample_period_s
        self.metric_name = metric_name
        self._started = False

    def usable_sensors(self) -> List[Asset]:
        return [
            asset
            for asset in self.sensor_assets
            if asset.alive and any(s.enabled for s in asset.sensors)
        ]

    def coverage(self) -> float:
        return coverage_fraction(self.usable_sensors(), self.area)

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.every(self.sample_period_s, self._sample)

    def _sample(self) -> None:
        self.sim.metrics.sample(self.metric_name, self.coverage())

    # --------------------------------------------------------------- queries

    def replace_sensors(self, sensor_assets: Sequence[Asset]) -> None:
        """Swap in a new sensor set (what re-synthesis does)."""
        self.sensor_assets = list(sensor_assets)

    def recovery_time_s(
        self, drop_time: float, target: float
    ) -> Optional[float]:
        """Time from ``drop_time`` until coverage first re-reached ``target``.

        None when it never recovered within the recorded series.
        """
        series = self.sim.metrics.series(self.metric_name)
        for t, v in zip(series.times, series.values):
            if t > drop_time and v >= target:
                return t - drop_time
        return None
