"""Distributed target tracking with networked fusion.

The paper's motivating task: "tracking a dispersed group of humans and
vehicles moving through cluttered environments."  Sensor assets scan on a
period, ship detection batches to a fusion sink over the (lossy, possibly
jammed) network, and the sink maintains per-target tracks as
exponentially-weighted position estimates.  Track error and custody are
the service-quality metrics every adaptation experiment reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.adaptation.perception import ModalityManager
from repro.errors import ConfigurationError
from repro.net.transport import MessageService
from repro.scenarios.builder import Scenario
from repro.security.attacks import DataPoisoningAttack
from repro.things.asset import Asset
from repro.things.sensors import Detection
from repro.util.geometry import Point, distance

__all__ = ["Track", "TrackingService"]


@dataclass
class Track:
    """Fused state of one target at the sink."""

    target_id: int
    estimate: Point
    last_update: float
    detections: int = 0

    def update(self, measured: Point, time: float, *, alpha: float = 0.4) -> None:
        self.estimate = Point(
            self.estimate.x + alpha * (measured.x - self.estimate.x),
            self.estimate.y + alpha * (measured.y - self.estimate.y),
        )
        self.last_update = time
        self.detections += 1


class TrackingService:
    """Periodic scan -> report -> fuse pipeline over the battlefield network.

    Parameters
    ----------
    sensor_assets:
        The composite's sensing members.
    sink_node:
        Node id where fusion runs.
    service:
        Message service (bound to some router) used for reporting.
    modality_manager:
        Optional adaptive-perception reflex; when provided, it re-evaluates
        the environment each scan period.
    poisoning:
        Optional active data-poisoning attack whose ``poison`` hook
        corrupts detection batches from compromised nodes.
    """

    def __init__(
        self,
        scenario: Scenario,
        sensor_assets: Sequence[Asset],
        sink_node: int,
        service: MessageService,
        *,
        scan_period_s: float = 2.0,
        report_bits_per_detection: int = 512,
        modality_manager: Optional[ModalityManager] = None,
        poisoning: Optional[DataPoisoningAttack] = None,
        fusion_alpha: float = 0.4,
    ):
        if scenario.targets is None:
            raise ConfigurationError("scenario has no target group to track")
        if scan_period_s <= 0:
            raise ConfigurationError("scan_period_s must be positive")
        self.scenario = scenario
        self.sim = scenario.sim
        self.sensor_assets = list(sensor_assets)
        self.sink_node = sink_node
        self.service = service
        self.scan_period_s = scan_period_s
        self.report_bits_per_detection = report_bits_per_detection
        self.modality_manager = modality_manager
        self.poisoning = poisoning
        self.fusion_alpha = fusion_alpha
        self.tracks: Dict[int, Track] = {}
        self.reports_sent = 0
        self.reports_received = 0
        self._rng = self.sim.rng.get("tracking")
        self._started = False
        self.service.on_message(sink_node, self._on_report)

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.every(self.scan_period_s, self._scan_round)

    # ------------------------------------------------------------------ scan

    def _scan_round(self) -> None:
        if self.modality_manager is not None:
            self.modality_manager.update(self.scenario.environment)
        targets = self.scenario.targets.positions()
        env = self.scenario.environment
        for asset in self.sensor_assets:
            if not asset.alive:
                continue
            detections: List[Detection] = []
            for sensor in asset.sensors:
                if asset.battery is not None:
                    asset.battery.drain_sense()
                detections.extend(
                    sensor.scan(asset.position, targets, env, self._rng, self.sim.now)
                )
            if not detections:
                continue
            if self.poisoning is not None:
                detections = self.poisoning.poison(detections, self._rng)
            if asset.node_id == self.sink_node:
                self._fuse(detections)
                continue
            self.reports_sent += 1
            self.service.send(
                asset.node_id,
                self.sink_node,
                payload=detections,
                size_bits=self.report_bits_per_detection * len(detections),
            )

    def _on_report(self, packet) -> None:
        detections = packet.payload
        if not isinstance(detections, list):
            return
        self.reports_received += 1
        self._fuse(detections)

    def _fuse(self, detections: Sequence[Detection]) -> None:
        for det in detections:
            track = self.tracks.get(det.target_id)
            if track is None:
                self.tracks[det.target_id] = Track(
                    target_id=det.target_id,
                    estimate=det.measured_position,
                    last_update=self.sim.now,
                    detections=1,
                )
            else:
                track.update(
                    det.measured_position, self.sim.now, alpha=self.fusion_alpha
                )

    # --------------------------------------------------------------- metrics

    def track_errors(self) -> Dict[int, float]:
        """Current per-target estimate error in meters (tracked only)."""
        truth = self.scenario.targets.positions()
        return {
            tid: distance(track.estimate, truth[tid])
            for tid, track in self.tracks.items()
            if tid in truth
        }

    def mean_track_error(self) -> float:
        errors = list(self.track_errors().values())
        return float(np.mean(errors)) if errors else float("nan")

    def custody_fraction(self, *, max_age_s: float = 10.0) -> float:
        """Fraction of targets with a fresh track (continuous custody)."""
        truth = self.scenario.targets.positions()
        if not truth:
            return float("nan")
        now = self.sim.now
        fresh = sum(
            1
            for tid in truth
            if tid in self.tracks
            and now - self.tracks[tid].last_update <= max_age_s
        )
        return fresh / len(truth)

    def delivery_ratio(self) -> float:
        return self.service.delivery_ratio()
