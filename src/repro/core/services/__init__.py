"""Battlefield services built on the synthesis/adaptation/learning stack.

* :mod:`repro.core.services.c2` — command-and-control decision-loop models
  (hierarchical approval vs command-by-intent vs full autonomy).
* :mod:`repro.core.services.tracking` — distributed target tracking with
  networked fusion.
* :mod:`repro.core.services.surveillance` — wide-area coverage monitoring.
* :mod:`repro.core.services.evacuation` — the non-combatant evacuation
  mission that exercises all three IoBT functions together (Figure 1).
"""

from repro.core.services.c2 import (
    C2Mode,
    DecisionRequest,
    EchelonChain,
    C2Comparison,
)
from repro.core.services.tracking import TrackingService, Track
from repro.core.services.surveillance import SurveillanceService
from repro.core.services.evacuation import (
    EvacuationMission,
    EvacuationConfig,
    EvacuationResult,
)
from repro.core.services.arbiter import (
    MissionArbiter,
    MissionRecord,
    MissionState,
)
from repro.core.services.health import (
    HealthMonitorService,
    SoldierModel,
    CasualtyKind,
    VitalsSample,
)

__all__ = [
    "MissionArbiter",
    "MissionRecord",
    "MissionState",
    "HealthMonitorService",
    "SoldierModel",
    "CasualtyKind",
    "VitalsSample",
    "C2Mode",
    "DecisionRequest",
    "EchelonChain",
    "C2Comparison",
    "TrackingService",
    "Track",
    "SurveillanceService",
    "EvacuationMission",
    "EvacuationConfig",
    "EvacuationResult",
]
