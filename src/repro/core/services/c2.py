"""Command-and-control decision-loop models.

§I: "The hierarchical nature of decisions reduces the speed of response as
authorizations to carry out actions must arrive through an appropriate
chain of command.  As a result, actions are delayed and, by the time they
are carried out, might already be based on stale information."  Command by
intent "shortens the decision loop ... improving decisions by acting faster
(and, hence, on more up-to-date data)."

The model: decision requests arrive about a *moving* situation; acting on a
request after delay ``d`` means acting on information that is ``d`` seconds
stale, during which the situation drifted at ``drift_speed``.  Three modes:

* ``HIERARCHICAL`` — every request climbs an :class:`EchelonChain` of
  approval stages (each an M/M/c-style service queue).
* ``INTENT`` — requests inside the subordinate's initiative envelope are
  decided locally after a short local-decision delay; out-of-envelope
  requests escalate up the chain.
* ``AUTONOMOUS`` — everything is decided locally (the no-assurance
  extreme, included to show the trade, not to advocate it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple
from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.util.stats import summarize

__all__ = ["C2Mode", "DecisionRequest", "EchelonChain", "C2Comparison"]

_request_ids = itertools.count(1)


class C2Mode(Enum):
    HIERARCHICAL = "hierarchical"
    INTENT = "intent"
    AUTONOMOUS = "autonomous"


@dataclass
class DecisionRequest:
    """One decision needing authorization.

    ``in_envelope`` marks whether a subordinate's initiative envelope
    covers it (only meaningful for INTENT mode).
    """

    created_at: float
    in_envelope: bool = True
    uid: int = field(default_factory=lambda: next(_request_ids))
    decided_at: Optional[float] = None

    @property
    def latency_s(self) -> Optional[float]:
        if self.decided_at is None:
            return None
        return self.decided_at - self.created_at


class _Stage:
    """One echelon: ``servers`` approvers with exponential service times."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        servers: int,
        mean_service_s: float,
        rng: np.random.Generator,
    ):
        if servers < 1 or mean_service_s <= 0:
            raise ConfigurationError("servers >= 1 and mean_service_s > 0")
        self.sim = sim
        self.name = name
        self.servers = servers
        self.mean_service_s = mean_service_s
        self.rng = rng
        self.busy = 0
        self.queue: Deque[Tuple[DecisionRequest, Callable]] = deque()

    def submit(self, request: DecisionRequest, done: Callable) -> None:
        self.queue.append((request, done))
        self._try_start()

    def _try_start(self) -> None:
        while self.busy < self.servers and self.queue:
            request, done = self.queue.popleft()
            self.busy += 1
            service = float(self.rng.exponential(self.mean_service_s))

            def finish(req=request, cb=done):
                self.busy -= 1
                self._try_start()
                cb(req)

            self.sim.call_in(service, finish)


class EchelonChain:
    """A chain of approval stages a request must clear in order."""

    def __init__(
        self,
        sim: Simulator,
        *,
        stage_specs: Sequence[Tuple[str, int, float]] = (
            ("company", 2, 20.0),
            ("battalion", 2, 40.0),
            ("brigade", 1, 60.0),
        ),
    ):
        self.sim = sim
        rng = sim.rng.get("c2")
        self.stages = [
            _Stage(sim, name, servers, mean_s, rng)
            for name, servers, mean_s in stage_specs
        ]
        if not self.stages:
            raise ConfigurationError("need at least one echelon stage")

    def submit(
        self,
        request: DecisionRequest,
        on_decided: Callable[[DecisionRequest], None],
        *,
        start_stage: int = 0,
    ) -> None:
        def advance(req: DecisionRequest, stage_idx: int) -> None:
            if stage_idx >= len(self.stages):
                req.decided_at = self.sim.now
                on_decided(req)
                return
            self.stages[stage_idx].submit(
                req, lambda r: advance(r, stage_idx + 1)
            )

        advance(request, start_stage)


class C2Comparison:
    """Run one C2 mode over a Poisson stream of decision requests.

    Staleness of a decision = drift distance accumulated while waiting:
    ``drift_speed * latency``.  ``stale_threshold_m`` marks decisions that
    acted on effectively obsolete information.
    """

    def __init__(
        self,
        sim: Simulator,
        mode: C2Mode,
        *,
        arrival_rate_hz: float = 0.1,
        envelope_fraction: float = 0.7,
        local_decision_s: float = 5.0,
        drift_speed_m_s: float = 1.5,
        stale_threshold_m: float = 100.0,
        chain: Optional[EchelonChain] = None,
    ):
        if arrival_rate_hz <= 0:
            raise ConfigurationError("arrival_rate_hz must be positive")
        if not (0.0 <= envelope_fraction <= 1.0):
            raise ConfigurationError("envelope_fraction must be in [0, 1]")
        self.sim = sim
        self.mode = mode
        self.arrival_rate_hz = arrival_rate_hz
        self.envelope_fraction = envelope_fraction
        self.local_decision_s = local_decision_s
        self.drift_speed_m_s = drift_speed_m_s
        self.stale_threshold_m = stale_threshold_m
        self.chain = chain if chain is not None else EchelonChain(sim)
        self.decided: List[DecisionRequest] = []
        self.escalations = 0
        self._rng = sim.rng.get("c2.arrivals")
        self._stopped = False

    def start(self, duration_s: float) -> None:
        self._horizon = duration_s
        self._schedule_arrival()

    def _schedule_arrival(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.arrival_rate_hz))
        if self.sim.now + gap > self._horizon:
            return
        self.sim.call_in(gap, self._arrive)

    def _arrive(self) -> None:
        request = DecisionRequest(
            created_at=self.sim.now,
            in_envelope=bool(self._rng.random() < self.envelope_fraction),
        )
        self._dispatch(request)
        self._schedule_arrival()

    def _dispatch(self, request: DecisionRequest) -> None:
        def decided(req: DecisionRequest) -> None:
            self.decided.append(req)

        if self.mode is C2Mode.AUTONOMOUS:
            self._decide_locally(request, decided)
        elif self.mode is C2Mode.INTENT:
            if request.in_envelope:
                self._decide_locally(request, decided)
            else:
                self.escalations += 1
                self.chain.submit(request, decided)
        else:
            self.chain.submit(request, decided)

    def _decide_locally(
        self, request: DecisionRequest, decided: Callable
    ) -> None:
        delay = float(self._rng.exponential(self.local_decision_s))

        def finish():
            request.decided_at = self.sim.now
            decided(request)

        self.sim.call_in(delay, finish)

    # ------------------------------------------------------------- reporting

    def staleness_m(self, request: DecisionRequest) -> float:
        latency = request.latency_s or 0.0
        return latency * self.drift_speed_m_s

    def report(self) -> Dict[str, float]:
        latencies = [r.latency_s for r in self.decided if r.latency_s is not None]
        staleness = [self.staleness_m(r) for r in self.decided]
        stale_frac = (
            sum(1 for s in staleness if s > self.stale_threshold_m)
            / len(staleness)
            if staleness
            else float("nan")
        )
        lat = summarize(latencies)
        return {
            "decisions": float(len(self.decided)),
            "latency_mean_s": lat["mean"],
            "latency_p95_s": lat["p95"],
            "staleness_mean_m": float(np.mean(staleness)) if staleness else float("nan"),
            "stale_fraction": stale_frac,
            "escalations": float(self.escalations),
        }
