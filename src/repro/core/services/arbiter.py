"""Multi-mission arbitration: competing IoBTs over one asset inventory.

§II: "There will likely be many networks operating simultaneously, possibly
competing for resources ... Tasks are not expected to start or end
simultaneously, and new tasks may emerge as others are being executed."

The :class:`MissionArbiter` owns the inventory's allocation state.  Each
submitted mission is composed from *unallocated* assets; when that fails
and the newcomer outranks an active mission, the arbiter preempts the
lowest-priority active mission(s) and retries.  Missions release their
assets on completion, unblocking any queued requests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.core.mission import MissionGoal
from repro.core.synthesis.composer import CompositeAsset, GreedyComposer
from repro.core.synthesis.requirements import compile_goal
from repro.errors import CompositionError
from repro.net.topology import TopologySnapshot, build_topology
from repro.scenarios.builder import Scenario
from repro.things.asset import Asset

__all__ = ["MissionState", "MissionRecord", "MissionArbiter"]

_mission_ids = itertools.count(1)


class MissionState(Enum):
    QUEUED = "queued"
    ACTIVE = "active"
    COMPLETED = "completed"
    PREEMPTED = "preempted"
    REJECTED = "rejected"


@dataclass
class MissionRecord:
    """Lifecycle record of one mission in the arbiter."""

    goal: MissionGoal
    state: MissionState = MissionState.QUEUED
    composite: Optional[CompositeAsset] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    ended_at: Optional[float] = None
    preemptions_caused: int = 0
    mission_id: int = field(default_factory=lambda: next(_mission_ids))

    @property
    def held_assets(self) -> Set[int]:
        if self.composite is None or self.state is not MissionState.ACTIVE:
            return set()
        return set(self.composite.members)


class MissionArbiter:
    """Admission + preemption control over a shared asset inventory."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        composer: Optional[GreedyComposer] = None,
        allow_preemption: bool = True,
    ):
        self.scenario = scenario
        self.sim = scenario.sim
        self.composer = composer if composer is not None else GreedyComposer()
        self.allow_preemption = allow_preemption
        self.missions: List[MissionRecord] = []
        self.preemption_count = 0

    # -------------------------------------------------------------- plumbing

    def active_missions(self) -> List[MissionRecord]:
        return [m for m in self.missions if m.state is MissionState.ACTIVE]

    def allocated_assets(self) -> Set[int]:
        out: Set[int] = set()
        for mission in self.active_missions():
            out |= mission.held_assets
        return out

    def free_pool(self) -> List[Asset]:
        taken = self.allocated_assets()
        return [
            a
            for a in self.scenario.inventory.blue()
            if a.alive and a.id not in taken
        ]

    def _topology(self) -> TopologySnapshot:
        return build_topology(self.scenario.network)

    # ------------------------------------------------------------ submission

    def submit(self, goal: MissionGoal) -> MissionRecord:
        """Try to admit a mission now; preempt lower priorities if allowed."""
        record = MissionRecord(goal=goal, submitted_at=self.sim.now)
        self.missions.append(record)
        if self._try_start(record):
            return record
        if self.allow_preemption and self._preempt_for(record):
            return record
        record.state = MissionState.REJECTED
        self.sim.trace.emit(
            "arbiter.rejected", mission=record.mission_id, priority=goal.priority
        )
        return record

    def _try_start(self, record: MissionRecord) -> bool:
        pool = self.free_pool()
        if not pool:
            return False
        requirements = compile_goal(record.goal)
        try:
            composite = self.composer.compose(
                requirements, pool, self._topology()
            )
        except CompositionError:
            return False
        if not composite.satisfies():
            return False
        record.composite = composite
        record.state = MissionState.ACTIVE
        record.started_at = self.sim.now
        self.sim.trace.emit(
            "arbiter.started",
            mission=record.mission_id,
            assets=composite.size,
            priority=record.goal.priority,
        )
        self.sim.call_in(record.goal.duration_s, lambda: self.complete(record))
        return True

    def _preempt_for(self, record: MissionRecord) -> bool:
        """Preempt strictly lower-priority missions until the newcomer fits."""
        victims = sorted(
            (
                m
                for m in self.active_missions()
                if m.goal.priority < record.goal.priority
            ),
            key=lambda m: (m.goal.priority, m.started_at or 0.0),
        )
        preempted: List[MissionRecord] = []
        for victim in victims:
            victim.state = MissionState.PREEMPTED
            victim.ended_at = self.sim.now
            preempted.append(victim)
            self.preemption_count += 1
            record.preemptions_caused += 1
            self.sim.trace.emit(
                "arbiter.preempted",
                mission=victim.mission_id,
                by=record.mission_id,
            )
            if self._try_start(record):
                return True
        # Could not fit even after all eligible preemptions: roll back.
        for victim in preempted:
            victim.state = MissionState.ACTIVE
            victim.ended_at = None
            self.preemption_count -= 1
            record.preemptions_caused -= 1
        return False

    # ------------------------------------------------------------- lifecycle

    def complete(self, record: MissionRecord) -> None:
        """Finish a mission and try to admit queued/rejected work."""
        if record.state is not MissionState.ACTIVE:
            return
        record.state = MissionState.COMPLETED
        record.ended_at = self.sim.now
        self.sim.trace.emit("arbiter.completed", mission=record.mission_id)
        self._retry_rejected()

    def _retry_rejected(self) -> None:
        for record in self.missions:
            if record.state is MissionState.REJECTED:
                record.state = MissionState.QUEUED
                if not self._try_start(record):
                    record.state = MissionState.REJECTED

    # --------------------------------------------------------------- metrics

    def report(self) -> Dict[str, float]:
        states = {s: 0 for s in MissionState}
        for mission in self.missions:
            states[mission.state] += 1
        admitted = states[MissionState.ACTIVE] + states[MissionState.COMPLETED]
        total = len(self.missions)
        return {
            "submitted": float(total),
            "admitted": float(admitted),
            "admission_rate": admitted / total if total else float("nan"),
            "preemptions": float(self.preemption_count),
            "active": float(states[MissionState.ACTIVE]),
            "rejected": float(states[MissionState.REJECTED]),
        }
