"""Non-combatant evacuation: the integrated Figure-1 mission.

§I's running example: "civilians must be safely removed from a zone of
increased or impending hostility.  The situation is highly dynamic.  New
information updates arrive in real-time ... [and] may impact decisions such
as evacuation routes."

The mission exercises all three IoBT functions, each independently
ablatable (that is experiment E1):

* **Synthesis** — hazard-sensing coverage comes from a greedily composed
  sensor set (ablation: a random subset of equal size).
* **Learning** — civilian reports about hazards (some from malicious
  sources) are fused by truth discovery (ablation: raw majority vote).
* **Adaptation** — evacuee groups re-route as the believed hazard map
  changes, and sensing switches modality when hazards emit smoke
  (ablation: routes fixed at start, no modality switching).

Evacuees walk the street grid toward exit gates; walking through a *truly*
hazardous intersection records an exposure.  The result reports evacuated
fraction, exposures, and evacuation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.core.adaptation.perception import ModalityManager
from repro.core.learning.truth_discovery import TruthDiscovery, majority_vote
from repro.core.synthesis.composer import GreedyComposer, coverage_fraction
from repro.core.synthesis.requirements import compile_goal
from repro.core.mission import MissionGoal, MissionType
from repro.errors import ConfigurationError
from repro.net.topology import build_topology
from repro.scenarios.builder import Scenario
from repro.things.asset import Asset
from repro.things.capabilities import SensingModality
from repro.things.humans import Claim
from repro.util.geometry import Point, distance

__all__ = ["EvacuationConfig", "EvacuationResult", "EvacuationMission"]


@dataclass
class EvacuationConfig:
    """Mission parameters and the three ablation switches."""

    n_evacuee_groups: int = 12
    n_hazards: int = 16
    hazard_onset_s: Tuple[float, float] = (5.0, 60.0)
    deadline_s: float = 600.0
    step_period_s: float = 12.0
    n_exits: int = 1
    scan_period_s: float = 5.0
    claim_period_s: float = 20.0
    walk_speed_edges_per_step: int = 1
    use_synthesis: bool = True
    use_learning: bool = True
    use_adaptation: bool = True
    sensor_budget: int = 20
    #: §VI's risk-balance knob: routes also avoid intersections within this
    #: many hops of a believed hazard.  0 = avoid only the hazard itself
    #: (fast, riskier — belief errors are unbuffered); higher = wider safety
    #: margins at the price of longer evacuation routes.
    caution_radius: int = 0

    def __post_init__(self) -> None:
        if self.n_evacuee_groups < 1:
            raise ConfigurationError("need at least one evacuee group")
        if self.deadline_s <= 0:
            raise ConfigurationError("deadline must be positive")


@dataclass
class EvacuationResult:
    """Mission outcome."""

    evacuated: int
    total_groups: int
    exposures: int
    evacuation_times: List[float]
    hazard_belief_accuracy: float
    sensor_coverage: float

    @property
    def evacuated_fraction(self) -> float:
        return self.evacuated / self.total_groups if self.total_groups else 0.0

    @property
    def mean_evacuation_time_s(self) -> float:
        return float(np.mean(self.evacuation_times)) if self.evacuation_times else float("nan")


@dataclass
class _EvacueeGroup:
    group_id: int
    node: Tuple[int, int]            # grid coordinates of current intersection
    route: List[Tuple[int, int]] = field(default_factory=list)
    evacuated_at: Optional[float] = None
    exposures: int = 0


class EvacuationMission:
    """Run one evacuation mission over a scenario."""

    def __init__(self, scenario: Scenario, config: Optional[EvacuationConfig] = None):
        self.scenario = scenario
        self.sim = scenario.sim
        self.config = config if config is not None else EvacuationConfig()
        self.grid = scenario.grid
        self._rng = self.sim.rng.get("evacuation")
        self.graph = self._street_graph()
        self.exits = self._exit_nodes()
        self.groups = self._spawn_groups()
        # Ground-truth hazards: grid node -> onset time.
        self.hazard_onset: Dict[Tuple[int, int], float] = {}
        self.believed_hazards: Set[Tuple[int, int]] = set()
        self._claims: List[Claim] = []
        self._event_ids: Dict[Tuple[int, int], int] = {
            node: i + 1 for i, node in enumerate(sorted(self.graph.nodes))
        }
        self.sensors = self._select_sensors()
        self.modality_manager = (
            ModalityManager(self.sensors) if self.config.use_adaptation else None
        )
        self._finished = False

    # ------------------------------------------------------------ world setup

    def _street_graph(self) -> nx.Graph:
        g = nx.grid_2d_graph(self.grid.blocks + 1, self.grid.blocks + 1)
        return g

    def _node_position(self, node: Tuple[int, int]) -> Point:
        return Point(
            node[0] * self.grid.block_size_m, node[1] * self.grid.block_size_m
        )

    def _nearest_node(self, p: Point) -> Tuple[int, int]:
        """The grid intersection closest to a measured position."""
        size = self.grid.block_size_m
        i = int(round(p.x / size))
        j = int(round(p.y / size))
        i = max(0, min(self.grid.blocks, i))
        j = max(0, min(self.grid.blocks, j))
        return (i, j)

    def _exit_nodes(self) -> Set[Tuple[int, int]]:
        """Exit gates: the first ``n_exits`` corners (few exits -> long,
        contested routes, which is what makes routing decisions matter)."""
        b = self.grid.blocks
        corners = [(0, 0), (b, b), (0, b), (b, 0)]
        n = max(1, min(self.config.n_exits, len(corners)))
        return set(corners[:n])

    def _spawn_groups(self) -> List[_EvacueeGroup]:
        nodes = sorted(set(self.graph.nodes) - self.exits)
        groups = []
        for gid in range(1, self.config.n_evacuee_groups + 1):
            node = nodes[int(self._rng.integers(0, len(nodes)))]
            groups.append(_EvacueeGroup(group_id=gid, node=node))
        return groups

    def _select_sensors(self) -> List[Asset]:
        """Choose the hazard-sensing set (synthesis vs random ablation)."""
        candidates = [
            a
            for a in self.scenario.inventory.blue()
            if a.sensors and a.profile.sensing_range_m > 0
        ]
        budget = min(self.config.sensor_budget, len(candidates))
        if not candidates:
            return []
        if self.config.use_synthesis:
            goal = MissionGoal(
                MissionType.EVACUATE,
                self.scenario.region,
                min_coverage=0.7,
                modalities=frozenset(
                    {
                        SensingModality.CAMERA,
                        SensingModality.SEISMIC,
                        SensingModality.ACOUSTIC,
                        SensingModality.OCCUPANCY,
                    }
                ),
            )
            requirements = compile_goal(goal)
            topology = build_topology(self.scenario.network)
            composite = GreedyComposer().compose(requirements, candidates, topology)
            chosen = [
                self.scenario.inventory.get(aid) for aid in composite.sensors
            ][:budget]
            if chosen:
                return chosen
        idx = self._rng.choice(len(candidates), size=budget, replace=False)
        return [candidates[int(i)] for i in idx]

    # ---------------------------------------------------------------- hazards

    def _schedule_hazards(self) -> None:
        nodes = sorted(set(self.graph.nodes) - self.exits)
        lo, hi = self.config.hazard_onset_s
        for _i in range(self.config.n_hazards):
            node = nodes[int(self._rng.integers(0, len(nodes)))]
            onset = float(self._rng.uniform(lo, hi))
            if node not in self.hazard_onset or onset < self.hazard_onset[node]:
                self.hazard_onset[node] = onset

        for node, onset in self.hazard_onset.items():
            self.sim.call_at(onset, lambda n=node: self._hazard_appears(n))

    def _hazard_appears(self, node: Tuple[int, int]) -> None:
        self.sim.trace.emit("evacuation.hazard", node=str(node))
        # Hazards emit smoke, degrading visual sensing mission-wide a bit.
        env = self.scenario.environment
        env.smoke = min(1.0, env.smoke + 0.25)

    def active_hazards(self) -> Set[Tuple[int, int]]:
        now = self.sim.now
        return {n for n, t in self.hazard_onset.items() if t <= now}

    # ---------------------------------------------------------------- sensing

    def _scan_round(self) -> None:
        if self.modality_manager is not None:
            self.modality_manager.update(self.scenario.environment)
        env = self.scenario.environment
        for node in self.active_hazards():
            pos = self._node_position(node)
            for asset in self.sensors:
                if not asset.alive:
                    continue
                for sensor in asset.sensors:
                    p = sensor.detection_probability(asset.position, pos, env)
                    if p > 0 and self._rng.random() < p:
                        # Localization is noisy: the belief lands on the
                        # grid node nearest the *measured* position, which
                        # for long-range / coarse modalities is often an
                        # adjacent intersection.  This mislocalization is
                        # exactly what a caution buffer (E20) insures
                        # against.
                        d = distance(asset.position, pos)
                        sigma = sensor.noise_std_m(d)
                        measured = Point(
                            pos.x + float(self._rng.normal(0.0, sigma)),
                            pos.y + float(self._rng.normal(0.0, sigma)),
                        )
                        self.believed_hazards.add(self._nearest_node(measured))
                        break

    # ----------------------------------------------------------------- claims

    def _claim_round(self) -> None:
        """Civilian (and red) human sources report on nearby intersections."""
        humans = [
            a
            for a in self.scenario.inventory
            if a.human is not None and a.alive
        ]
        active = self.active_hazards()
        for asset in humans:
            for node in sorted(self.graph.nodes):
                pos = self._node_position(node)
                if distance(asset.position, pos) > 2.5 * self.grid.block_size_m:
                    continue
                truth = node in active
                claim = asset.human.report(
                    self._event_ids[node], truth, self._rng, self.sim.now
                )
                if claim is not None:
                    self._claims.append(claim)
        self._update_beliefs_from_claims()

    def _update_beliefs_from_claims(self) -> None:
        if not self._claims:
            return
        id_to_node = {eid: node for node, eid in self._event_ids.items()}
        if self.config.use_learning:
            result = TruthDiscovery().run(self._claims)
            for eid, p in result.event_probability.items():
                node = id_to_node[eid]
                if p > 0.5:
                    self.believed_hazards.add(node)
                else:
                    # Only claims can retract a claim-induced belief; direct
                    # sensor detections are never retracted.
                    pass
        else:
            for eid, value in majority_vote(self._claims).items():
                if value:
                    self.believed_hazards.add(id_to_node[eid])

    # --------------------------------------------------------------- movement

    def _buffered_hazards(self, radius: int) -> Set[Tuple[int, int]]:
        """Believed hazards inflated by ``radius`` graph hops."""
        blocked = set(self.believed_hazards)
        frontier = set(self.believed_hazards)
        for _hop in range(radius):
            nxt: Set[Tuple[int, int]] = set()
            for node in frontier:
                if node in self.graph:
                    nxt.update(self.graph.neighbors(node))
            nxt -= blocked
            blocked |= nxt
            frontier = nxt
        return blocked

    def _route(self, group: _EvacueeGroup) -> List[Tuple[int, int]]:
        """Safest-then-shortest path to the nearest exit.

        Caution degrades gracefully: the route is first sought with the
        full hazard buffer; if the buffered map disconnects the group from
        every exit, the buffer shrinks one hop at a time before the final
        resort of walking the shortest route regardless of hazards.
        """
        for radius in range(self.config.caution_radius, -1, -1):
            g = self.graph.copy()
            blocked = self._buffered_hazards(radius) - self.exits - {group.node}
            g.remove_nodes_from(blocked)
            best: Optional[List[Tuple[int, int]]] = None
            for exit_node in sorted(self.exits):
                if group.node not in g or exit_node not in g:
                    continue
                try:
                    path = nx.shortest_path(g, group.node, exit_node)
                except nx.NetworkXNoPath:
                    continue
                if best is None or len(path) < len(best):
                    best = path
            if best is not None:
                return best
        # All safe routes blocked at every buffer level: shortest anyway.
        return min(
            (
                nx.shortest_path(self.graph, group.node, e)
                for e in sorted(self.exits)
            ),
            key=len,
        )

    def _step_groups(self) -> None:
        active_hazards = self.active_hazards()
        for group in self.groups:
            if group.evacuated_at is not None:
                continue
            if self.config.use_adaptation or not group.route:
                group.route = self._route(group)
            for _hop in range(self.config.walk_speed_edges_per_step):
                if len(group.route) <= 1:
                    break
                group.route.pop(0)
                group.node = group.route[0]
                if group.node in active_hazards:
                    group.exposures += 1
                    self.sim.trace.emit(
                        "evacuation.exposure",
                        group=group.group_id,
                        node=str(group.node),
                    )
            if group.node in self.exits:
                group.evacuated_at = self.sim.now
                self.sim.trace.emit("evacuation.out", group=group.group_id)

    # --------------------------------------------------------------------- run

    def run(self) -> EvacuationResult:
        if self._finished:
            raise ConfigurationError("mission already ran")
        self._finished = True
        cfg = self.config
        self._schedule_hazards()
        self.sim.every(cfg.scan_period_s, self._scan_round)
        self.sim.every(cfg.claim_period_s, self._claim_round)
        self.sim.every(cfg.step_period_s, self._step_groups)
        self.scenario.start()
        self.sim.run(until=cfg.deadline_s)
        return self._result()

    def _result(self) -> EvacuationResult:
        evacuated = [g for g in self.groups if g.evacuated_at is not None]
        active = self.active_hazards()
        all_nodes = set(self.graph.nodes)
        correct = sum(
            1
            for node in all_nodes
            if (node in active) == (node in self.believed_hazards)
        )
        return EvacuationResult(
            evacuated=len(evacuated),
            total_groups=len(self.groups),
            exposures=sum(g.exposures for g in self.groups),
            evacuation_times=[g.evacuated_at for g in evacuated],
            hazard_belief_accuracy=correct / len(all_nodes) if all_nodes else 0.0,
            sensor_coverage=coverage_fraction(
                [a for a in self.sensors if a.alive], self.scenario.region
            ),
        )
