"""Soldier health monitoring.

§II lists "monitoring physiological and psychological state of soldiers"
among the motivating IoBT tasks.  Wearables sample vital signs and report
them over the battlefield network to a medic station; the station maintains
per-soldier baselines and raises casualty alerts on sustained anomalies.

The physiological model is deliberately simple but has the features that
matter for the service problem: individual baselines (one threshold does
not fit all), activity noise (false-alarm pressure), and two casualty
signatures (spike -> decay for trauma, collapse for loss of consciousness).
Detection must also survive *reporting gaps* — a wearable that falls silent
because its carrier went down is itself a medical signal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.transport import MessageService
from repro.scenarios.builder import Scenario
from repro.things.asset import Asset
from repro.util.stats import RunningStats

__all__ = ["CasualtyKind", "VitalsSample", "SoldierModel", "HealthMonitorService"]

_sample_ids = itertools.count(1)


class CasualtyKind(Enum):
    TRAUMA = "trauma"        # heart-rate spike then decline
    COLLAPSE = "collapse"    # abrupt drop toward zero


@dataclass(frozen=True)
class VitalsSample:
    """One wearable report."""

    soldier_id: int
    heart_rate: float
    time: float
    uid: int = field(default_factory=lambda: next(_sample_ids))


class SoldierModel:
    """Ground-truth physiology of one monitored soldier."""

    def __init__(
        self,
        soldier_id: int,
        rng: np.random.Generator,
        *,
        resting_hr: Optional[float] = None,
    ):
        self.soldier_id = soldier_id
        self.resting_hr = (
            resting_hr if resting_hr is not None else float(rng.uniform(55, 85))
        )
        self.casualty_at: Optional[float] = None
        self.casualty_kind: Optional[CasualtyKind] = None

    def become_casualty(self, time: float, kind: CasualtyKind) -> None:
        self.casualty_at = time
        self.casualty_kind = kind

    def heart_rate(self, time: float, rng: np.random.Generator) -> float:
        """Current true heart rate (bpm)."""
        base = self.resting_hr + float(rng.normal(0.0, 4.0))
        # Activity excursions: occasional exertion bumps.
        if rng.random() < 0.1:
            base += float(rng.uniform(15, 35))
        if self.casualty_at is None or time < self.casualty_at:
            return max(35.0, base)
        elapsed = time - self.casualty_at
        if self.casualty_kind is CasualtyKind.COLLAPSE:
            return max(0.0, base * np.exp(-elapsed / 20.0))
        # Trauma: spike for ~60 s, then decline.
        if elapsed < 60.0:
            return base + 60.0 + float(rng.normal(0, 5.0))
        return max(20.0, base - 0.4 * (elapsed - 60.0))


class HealthMonitorService:
    """Wearable sampling -> networked reporting -> anomaly alerts.

    Alerts fire when either (a) ``consecutive_anomalies`` successive samples
    fall outside the soldier's learned baseline band, or (b) no sample has
    arrived for ``silence_timeout_s`` (the silent-casualty case).
    """

    def __init__(
        self,
        scenario: Scenario,
        wearers: Sequence[Asset],
        medic_node: int,
        service: MessageService,
        *,
        sample_period_s: float = 5.0,
        z_threshold: float = 3.5,
        consecutive_anomalies: int = 3,
        silence_timeout_s: float = 45.0,
        warmup_samples: int = 10,
    ):
        if not wearers:
            raise ConfigurationError("need at least one monitored soldier")
        if sample_period_s <= 0:
            raise ConfigurationError("sample_period_s must be positive")
        self.scenario = scenario
        self.sim = scenario.sim
        self.wearers = list(wearers)
        self.medic_node = medic_node
        self.service = service
        self.sample_period_s = sample_period_s
        self.z_threshold = z_threshold
        self.consecutive_anomalies = consecutive_anomalies
        self.silence_timeout_s = silence_timeout_s
        self.warmup_samples = warmup_samples
        self._rng = self.sim.rng.get("health")
        self.soldiers: Dict[int, SoldierModel] = {
            a.id: SoldierModel(a.id, self._rng) for a in self.wearers
        }
        self._baselines: Dict[int, RunningStats] = {
            a.id: RunningStats() for a in self.wearers
        }
        self._anomaly_streak: Dict[int, int] = {a.id: 0 for a in self.wearers}
        self._last_heard: Dict[int, float] = {a.id: 0.0 for a in self.wearers}
        self.alerts: Dict[int, float] = {}  # soldier -> first alert time
        self._started = False
        self.samples_received = 0
        self.service.on_message(medic_node, self._on_report)

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.every(self.sample_period_s, self._sample_round)
            self.sim.every(self.sample_period_s, self._silence_check)

    def inflict_casualty(
        self, soldier_id: int, kind: CasualtyKind = CasualtyKind.TRAUMA
    ) -> None:
        self.soldiers[soldier_id].become_casualty(self.sim.now, kind)
        self.sim.trace.emit(
            "health.casualty", soldier=soldier_id, kind=kind.value
        )

    # ---------------------------------------------------------------- sensing

    def _sample_round(self) -> None:
        for asset in self.wearers:
            if not asset.alive:
                continue
            soldier = self.soldiers[asset.id]
            sample = VitalsSample(
                soldier_id=asset.id,
                heart_rate=soldier.heart_rate(self.sim.now, self._rng),
                time=self.sim.now,
            )
            if asset.battery is not None:
                asset.battery.drain_sense()
            if asset.node_id == self.medic_node:
                self._ingest(sample)
            else:
                self.service.send(
                    asset.node_id, self.medic_node, payload=sample,
                    size_bits=256,
                )

    def _on_report(self, packet) -> None:
        sample = packet.payload
        if isinstance(sample, VitalsSample):
            self._ingest(sample)

    def _ingest(self, sample: VitalsSample) -> None:
        self.samples_received += 1
        self._last_heard[sample.soldier_id] = self.sim.now
        baseline = self._baselines[sample.soldier_id]
        if baseline.count >= self.warmup_samples:
            std = baseline.std if baseline.std > 1e-6 else 1.0
            z = abs(sample.heart_rate - baseline.mean) / std
            if z >= self.z_threshold:
                self._anomaly_streak[sample.soldier_id] += 1
                if (
                    self._anomaly_streak[sample.soldier_id]
                    >= self.consecutive_anomalies
                ):
                    self._raise_alert(sample.soldier_id, "vitals")
                return  # anomalous samples do not poison the baseline
            self._anomaly_streak[sample.soldier_id] = 0
        baseline.add(sample.heart_rate)

    def _silence_check(self) -> None:
        for asset in self.wearers:
            last = self._last_heard[asset.id]
            if (
                last > 0
                and self.sim.now - last > self.silence_timeout_s
                and asset.id not in self.alerts
            ):
                self._raise_alert(asset.id, "silence")

    def _raise_alert(self, soldier_id: int, reason: str) -> None:
        if soldier_id not in self.alerts:
            self.alerts[soldier_id] = self.sim.now
            self.sim.trace.emit(
                "health.alert", soldier=soldier_id, reason=reason
            )

    # --------------------------------------------------------------- metrics

    def detection_latency_s(self, soldier_id: int) -> Optional[float]:
        soldier = self.soldiers[soldier_id]
        if soldier.casualty_at is None or soldier_id not in self.alerts:
            return None
        return self.alerts[soldier_id] - soldier.casualty_at

    def detection_stats(self) -> Dict[str, float]:
        casualties = {
            sid for sid, s in self.soldiers.items() if s.casualty_at is not None
        }
        detected = casualties & set(self.alerts)
        false_alarms = set(self.alerts) - casualties
        latencies = [
            self.detection_latency_s(sid)
            for sid in detected
            if self.detection_latency_s(sid) is not None
        ]
        return {
            "casualties": float(len(casualties)),
            "detected": float(len(detected)),
            "recall": len(detected) / len(casualties) if casualties else 1.0,
            "false_alarms": float(len(false_alarms)),
            "mean_latency_s": float(np.mean(latencies)) if latencies else float("nan"),
        }
