"""Byzantine-resilient aggregation rules.

The fault model: of ``n`` submitted update vectors, up to ``f`` come from
compromised workers and may be arbitrary.  Resilient rules bound the
adversary's influence:

* :func:`median_aggregate` — coordinate-wise median (resists f < n/2).
* :func:`trimmed_mean_aggregate` — drop the f largest and f smallest per
  coordinate, average the rest.
* :func:`krum_aggregate` — select the vector with the smallest sum of
  distances to its n-f-2 nearest neighbors (Blanchard et al.); optional
  multi-Krum averaging of the m best.
* :func:`mean_aggregate` — the non-resilient baseline a single Byzantine
  worker can drag arbitrarily far.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import LearningError

__all__ = [
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
    "krum_aggregate",
    "AGGREGATORS",
]


def _stack(vectors: Sequence[np.ndarray]) -> np.ndarray:
    if not vectors:
        raise LearningError("no vectors to aggregate")
    matrix = np.vstack([np.asarray(v, dtype=float) for v in vectors])
    if not np.isfinite(matrix).all():
        # Byzantine vectors may be inf/nan bombs; neutralize them so the
        # robust rules can still operate (mean stays vulnerable by design
        # to *large finite* values, which is the realistic attack).
        matrix = np.nan_to_num(matrix, nan=0.0, posinf=1e12, neginf=-1e12)
    return matrix


def mean_aggregate(vectors: Sequence[np.ndarray], f: int = 0) -> np.ndarray:
    """Plain averaging — the vulnerable baseline."""
    return _stack(vectors).mean(axis=0)


def median_aggregate(vectors: Sequence[np.ndarray], f: int = 0) -> np.ndarray:
    """Coordinate-wise median."""
    return np.median(_stack(vectors), axis=0)


def trimmed_mean_aggregate(
    vectors: Sequence[np.ndarray], f: int = 0
) -> np.ndarray:
    """Coordinate-wise f-trimmed mean."""
    matrix = _stack(vectors)
    n = matrix.shape[0]
    if 2 * f >= n:
        raise LearningError(f"cannot trim {f} from each side of {n} vectors")
    if f == 0:
        return matrix.mean(axis=0)
    ordered = np.sort(matrix, axis=0)
    return ordered[f : n - f].mean(axis=0)


def krum_aggregate(
    vectors: Sequence[np.ndarray], f: int = 0, *, m: int = 1
) -> np.ndarray:
    """(Multi-)Krum: average the m most centrally located vectors.

    Requires ``n >= 2f + 3`` for its Byzantine-resilience guarantee; we
    enforce ``n > 2f`` and clamp the neighborhood size for small n.
    """
    matrix = _stack(vectors)
    n = matrix.shape[0]
    if n <= 2 * f:
        raise LearningError(f"krum needs n > 2f (n={n}, f={f})")
    # Pairwise squared distances.
    diffs = matrix[:, None, :] - matrix[None, :, :]
    d2 = (diffs**2).sum(axis=2)
    # Score: sum over the n-f-2 nearest other vectors.
    neighborhood = max(1, n - f - 2)
    scores = np.empty(n)
    for i in range(n):
        others = np.delete(d2[i], i)
        others.sort()
        scores[i] = others[:neighborhood].sum()
    best = np.argsort(scores)[: max(1, min(m, n))]
    return matrix[best].mean(axis=0)


#: Registry used by the E11 benchmark to sweep aggregation rules.
AGGREGATORS: Dict[str, Callable[..., np.ndarray]] = {
    "mean": mean_aggregate,
    "median": median_aggregate,
    "trimmed_mean": trimmed_mean_aggregate,
    "krum": krum_aggregate,
}
