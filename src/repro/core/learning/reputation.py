"""Reputation feedback: close the loop from truth discovery to trust.

After each truth-discovery pass, every source's claims are scored against
the inferred truths and pushed into the shared :class:`TrustLedger`.  Over
rounds, honest sources accumulate trust and colluding sources lose it —
which is what lets *recruitment* (synthesis) avoid sources that *learning*
has unmasked.  This is the synthesis <-> learning interaction of Figure 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.learning.truth_discovery import TruthDiscoveryResult
from repro.security.trust import TrustLedger
from repro.things.humans import Claim

__all__ = ["ReputationFeedback"]


class ReputationFeedback:
    """Scores claim batches against inferred truth and updates trust."""

    def __init__(
        self,
        ledger: Optional[TrustLedger] = None,
        *,
        confidence_floor: float = 0.7,
    ):
        """``confidence_floor``: only events whose inferred probability is
        this far from 0.5 (either side) generate reputation evidence —
        uncertain inferences should not convict or exonerate anyone."""
        self.ledger = ledger if ledger is not None else TrustLedger()
        self.confidence_floor = confidence_floor
        self.rounds = 0

    def apply(
        self, claims: Sequence[Claim], result: TruthDiscoveryResult
    ) -> Dict[int, float]:
        """Update the ledger from one round; returns new trust snapshot."""
        self.rounds += 1
        for claim in claims:
            p_true = result.event_probability.get(claim.event_id)
            if p_true is None:
                continue
            confidence = max(p_true, 1.0 - p_true)
            if confidence < self.confidence_floor:
                continue
            inferred = p_true > 0.5
            agreed = claim.value == inferred
            # Weight evidence by inference confidence.
            self.ledger.observe(claim.source_id, agreed, weight=confidence)
        self.ledger.age_all()
        return self.ledger.snapshot()

    def distrusted_sources(self, threshold: float = 0.4) -> Sequence[int]:
        return list(self.ledger.suspicious(threshold))
