"""Challenge 3 — Learning and intelligent battlefield services.

* :mod:`truth_discovery` — EM social-sensing truth discovery from
  unreliable/adversarial sources (+ majority-vote baseline).
* :mod:`reputation` — feeding truth-discovery outcomes into trust.
* :mod:`tomography` — network tomography: boolean failure localization and
  additive-delay inference from end-to-end paths.
* :mod:`anomaly` — information diagnostics: attention allocation under
  noise and deception.
* :mod:`distributed` — gossip averaging and decentralized SGD over
  time-varying topologies.
* :mod:`byzantine` — resilient aggregation rules (Krum, median, trimmed
  mean) against Byzantine workers.
* :mod:`continual` — context-conditioned continual learning vs blind
  sequential training (catastrophic forgetting).
* :mod:`adversarial` — poisoning and evasion attack generation.
* :mod:`cost` — cost-aware learning: topology activation vs accuracy.
* :mod:`safety` — runtime safety monitors and interval output-range
  analysis for small neural models.
"""

from repro.core.learning.truth_discovery import (
    TruthDiscovery,
    TruthDiscoveryResult,
    majority_vote,
)
from repro.core.learning.reputation import ReputationFeedback
from repro.core.learning.tomography import (
    BooleanTomography,
    AdditiveTomography,
    PathMeasurement,
)
from repro.core.learning.anomaly import AttentionManager, Report
from repro.core.learning.distributed import (
    GossipAverager,
    DecentralizedSGD,
    RingTopology,
    RandomTopology,
)
from repro.core.learning.byzantine import (
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
    krum_aggregate,
    AGGREGATORS,
)
from repro.core.learning.continual import (
    OnlineLinearModel,
    BlindContinualLearner,
    ContextAwareLearner,
)
from repro.core.learning.adversarial import (
    flip_labels,
    evasion_perturb,
    poisoning_detector,
)
from repro.core.learning.cost import (
    ActivationPolicy,
    TopologyOption,
    cost_accuracy_frontier,
)
from repro.core.learning.safety import (
    IntervalMlp,
    RuntimeMonitor,
    ShieldedPolicy,
)

__all__ = [
    "TruthDiscovery",
    "TruthDiscoveryResult",
    "majority_vote",
    "ReputationFeedback",
    "BooleanTomography",
    "AdditiveTomography",
    "PathMeasurement",
    "AttentionManager",
    "Report",
    "GossipAverager",
    "DecentralizedSGD",
    "RingTopology",
    "RandomTopology",
    "mean_aggregate",
    "median_aggregate",
    "trimmed_mean_aggregate",
    "krum_aggregate",
    "AGGREGATORS",
    "OnlineLinearModel",
    "BlindContinualLearner",
    "ContextAwareLearner",
    "flip_labels",
    "evasion_perturb",
    "poisoning_detector",
    "ActivationPolicy",
    "TopologyOption",
    "cost_accuracy_frontier",
    "IntervalMlp",
    "RuntimeMonitor",
    "ShieldedPolicy",
]
