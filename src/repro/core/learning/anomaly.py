"""Information diagnostics: attention allocation.

§V-A: "attention is a bottleneck.  It should be directed to situations that
deserve it the most ... [but] in the presence of failures and noisy data,
anomalous inputs might be the result of noise or misinformation."

The :class:`AttentionManager` maintains a per-signal baseline (online mean
and variance), scores incoming :class:`Report` objects by *surprise*
(z-score vs baseline), discounts by source trust, accumulates corroboration
across independent sources, and surfaces the top-k items.  A deceptive
injection is surprising but uncorroborated and low-trust, so it loses the
attention auction — which is exactly the E15 measurement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LearningError
from repro.security.trust import TrustLedger
from repro.util.stats import RunningStats

__all__ = ["Report", "AttentionManager"]

_report_ids = itertools.count(1)


@dataclass(frozen=True)
class Report:
    """An incoming observation about some monitored signal."""

    signal: str            # which quantity this reports on
    value: float
    source_id: int
    situation_id: int      # what it is evidence of (for corroboration)
    time: float = 0.0
    uid: int = field(default_factory=lambda: next(_report_ids))


@dataclass
class _Situation:
    situation_id: int
    score: float = 0.0
    sources: set = field(default_factory=set)
    reports: int = 0
    last_time: float = 0.0


class AttentionManager:
    """Trust- and corroboration-weighted anomaly attention."""

    def __init__(
        self,
        *,
        trust: Optional[TrustLedger] = None,
        corroboration_bonus: float = 0.5,
        min_baseline_samples: int = 5,
        decay_half_life_s: float = 60.0,
    ):
        self.trust = trust if trust is not None else TrustLedger()
        self.corroboration_bonus = corroboration_bonus
        self.min_baseline_samples = min_baseline_samples
        self.decay_half_life_s = decay_half_life_s
        self._baselines: Dict[str, RunningStats] = {}
        self._situations: Dict[int, _Situation] = {}

    # ---------------------------------------------------------------- scoring

    def surprise(self, report: Report) -> float:
        """Z-score of the report value against the signal's baseline."""
        baseline = self._baselines.get(report.signal)
        if baseline is None or baseline.count < self.min_baseline_samples:
            return 0.0  # no baseline yet: nothing is surprising
        std = baseline.std if baseline.std > 1e-9 else 1.0
        return abs(report.value - baseline.mean) / std

    def ingest(self, report: Report, *, update_baseline: bool = True) -> float:
        """Process one report; returns its weighted anomaly contribution."""
        z = self.surprise(report)
        source_trust = self.trust.trust(report.source_id)
        contribution = z * source_trust
        situation = self._situations.get(report.situation_id)
        if situation is None:
            situation = self._situations[report.situation_id] = _Situation(
                situation_id=report.situation_id
            )
        # Corroboration: additional *distinct* sources multiply the score.
        if report.source_id not in situation.sources:
            corroboration = 1.0 + self.corroboration_bonus * len(situation.sources)
            situation.sources.add(report.source_id)
        else:
            corroboration = 0.25  # repetition by one source adds little
        self._decay(situation, report.time)
        situation.score += contribution * corroboration
        situation.reports += 1
        situation.last_time = max(situation.last_time, report.time)
        if update_baseline:
            self._baseline(report.signal).add(report.value)
        return contribution

    def _baseline(self, signal: str) -> RunningStats:
        if signal not in self._baselines:
            self._baselines[signal] = RunningStats()
        return self._baselines[signal]

    def prime_baseline(self, signal: str, values: Sequence[float]) -> None:
        """Seed a baseline from historical normal data."""
        self._baseline(signal).extend(values)

    def _decay(self, situation: _Situation, now: float) -> None:
        dt = now - situation.last_time
        if dt <= 0 or self.decay_half_life_s <= 0:
            return
        situation.score *= 0.5 ** (dt / self.decay_half_life_s)

    # ---------------------------------------------------------------- queries

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The k situations most deserving of attention (id, score)."""
        if k < 1:
            raise LearningError("k must be >= 1")
        ranked = sorted(
            self._situations.values(),
            key=lambda s: (-s.score, s.situation_id),
        )
        return [(s.situation_id, s.score) for s in ranked[:k]]

    def precision_at_k(self, k: int, true_anomalies: set) -> float:
        """Fraction of the top-k that are genuinely anomalous situations."""
        top = self.top_k(k)
        if not top:
            return 0.0
        hits = sum(1 for sid, _score in top if sid in true_anomalies)
        return hits / len(top)

    def situation_count(self) -> int:
        return len(self._situations)
