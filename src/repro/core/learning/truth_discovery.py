"""Social-sensing truth discovery.

Implements the estimation-theoretic model of the paper's citations [1-4]
(Wang et al.): binary world events, sources with latent reliability, joint
maximum-likelihood recovery of both via EM.

Model: event ``e`` has truth ``t_e ~ Bernoulli(p)``; source ``i`` reports
``t_e`` with probability ``r_i`` and ``not t_e`` otherwise (a symmetric
noisy channel — an adversarial source is simply one with ``r_i < 0.5``,
which the EM happily estimates, automatically *inverting* its testimony).

:func:`majority_vote` is the baseline that weighs all sources equally and
is what colluding false sources defeat (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import LearningError
from repro.things.humans import Claim

__all__ = ["TruthDiscoveryResult", "TruthDiscovery", "majority_vote"]


@dataclass
class TruthDiscoveryResult:
    """Inferred event truths and source reliabilities."""

    event_probability: Dict[int, float]   # P(event true | claims)
    source_reliability: Dict[int, float]  # estimated r_i
    iterations: int
    converged: bool

    def truths(self, threshold: float = 0.5) -> Dict[int, bool]:
        return {e: p > threshold for e, p in self.event_probability.items()}

    def accuracy(self, ground_truth: Dict[int, bool]) -> float:
        """Fraction of events whose inferred truth matches ground truth."""
        inferred = self.truths()
        common = [e for e in ground_truth if e in inferred]
        if not common:
            return float("nan")
        hits = sum(1 for e in common if inferred[e] == ground_truth[e])
        return hits / len(common)


def majority_vote(claims: Sequence[Claim]) -> Dict[int, bool]:
    """Unweighted per-event majority (ties break toward True)."""
    votes: Dict[int, List[bool]] = {}
    for claim in claims:
        votes.setdefault(claim.event_id, []).append(claim.value)
    return {
        e: (sum(v) >= len(v) / 2.0) for e, v in votes.items()
    }


class TruthDiscovery:
    """EM estimator for event truths and source reliabilities."""

    def __init__(
        self,
        *,
        prior_true: float = 0.5,
        initial_reliability: float = 0.8,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        anchors: Optional[Dict[int, float]] = None,
    ):
        """``anchors`` maps source ids to *known* reliabilities that the
        M-step never updates.  The symmetric-channel EM has a label-switching
        symmetry: a colluding majority can pull it into the mirrored
        solution where the liars look reliable.  Anchoring even a couple of
        vetted sources (blue-force scouts with established track records)
        breaks that symmetry — this is the operational reason recruitment
        keeps trusted sources in every report stream."""
        if not (0.0 < prior_true < 1.0):
            raise LearningError("prior_true must be in (0, 1)")
        if not (0.0 < initial_reliability < 1.0):
            raise LearningError("initial_reliability must be in (0, 1)")
        self.prior_true = prior_true
        self.initial_reliability = initial_reliability
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.anchors = dict(anchors) if anchors else {}
        for source_id, value in self.anchors.items():
            if not (0.0 < value < 1.0):
                raise LearningError(
                    f"anchor reliability for source {source_id} must be in (0, 1)"
                )

    def run(self, claims: Sequence[Claim]) -> TruthDiscoveryResult:
        if not claims:
            raise LearningError("no claims to run truth discovery on")
        events = sorted({c.event_id for c in claims})
        sources = sorted({c.source_id for c in claims})
        e_index = {e: i for i, e in enumerate(events)}
        s_index = {s: i for i, s in enumerate(sources)}

        # Claim matrix: +1 (true), -1 (false), 0 (no claim).
        matrix = np.zeros((len(sources), len(events)), dtype=np.int8)
        for claim in claims:
            matrix[s_index[claim.source_id], e_index[claim.event_id]] = (
                1 if claim.value else -1
            )
        mask = matrix != 0

        anchor_idx = {
            s_index[s]: r for s, r in self.anchors.items() if s in s_index
        }
        # With anchors, unknown sources start *uninformative* (0.5): the
        # first E-step is then driven solely by anchored testimony, which
        # places EM in the correct basin even when colluders are the
        # majority.  Without anchors, a symmetric start would be a fixed
        # point, so the optimistic initial_reliability is used instead.
        base = 0.5 if anchor_idx else self.initial_reliability
        reliability = np.full(len(sources), base)
        for idx, r in anchor_idx.items():
            reliability[idx] = r
        prob_true = np.full(len(events), self.prior_true)
        eps = 1e-9

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            # ---------------- E-step: posterior P(event true | claims, r)
            log_r = np.log(np.clip(reliability, eps, 1 - eps))
            log_nr = np.log(np.clip(1 - reliability, eps, 1 - eps))
            # If event true: claim +1 has prob r, claim -1 has prob (1-r).
            ll_true = ((matrix == 1).T @ log_r) + ((matrix == -1).T @ log_nr)
            ll_false = ((matrix == 1).T @ log_nr) + ((matrix == -1).T @ log_r)
            prior = np.log(self.prior_true) - np.log(1 - self.prior_true)
            logit = ll_true - ll_false + prior
            new_prob = 1.0 / (1.0 + np.exp(-np.clip(logit, -500, 500)))

            # ---------------- M-step: r_i = expected agreement rate
            # Agreement weight: P(true)*1{claim=+1} + P(false)*1{claim=-1}.
            agree = (matrix == 1) * new_prob[None, :] + (matrix == -1) * (
                1.0 - new_prob[None, :]
            )
            claim_counts = mask.sum(axis=1)
            with np.errstate(invalid="ignore", divide="ignore"):
                new_reliability = np.where(
                    claim_counts > 0,
                    agree.sum(axis=1) / np.maximum(claim_counts, 1),
                    self.initial_reliability,
                )
            # Keep away from 0/1 so the log-likelihood stays finite.
            new_reliability = np.clip(new_reliability, 0.01, 0.99)
            for idx, r in anchor_idx.items():
                new_reliability[idx] = r  # anchored sources are pinned

            delta = max(
                float(np.abs(new_prob - prob_true).max()),
                float(np.abs(new_reliability - reliability).max()),
            )
            prob_true = new_prob
            reliability = new_reliability
            if delta < self.tolerance:
                converged = True
                break

        return TruthDiscoveryResult(
            event_probability={e: float(prob_true[e_index[e]]) for e in events},
            source_reliability={
                s: float(reliability[s_index[s]]) for s in sources
            },
            iterations=iteration,
            converged=converged,
        )


class StreamingTruthDiscovery:
    """Windowed streaming wrapper: re-estimates over a sliding claim window.

    Matches the "parallel and streaming truth discovery" citation [4]: new
    claim batches arrive over time; estimates update per batch while memory
    stays bounded by the window.
    """

    def __init__(self, *, window: int = 5000, **td_kwargs):
        if window < 1:
            raise LearningError("window must be >= 1")
        self.window = window
        self._estimator = TruthDiscovery(**td_kwargs)
        self._claims: List[Claim] = []
        self.last_result: Optional[TruthDiscoveryResult] = None

    def add_batch(self, claims: Sequence[Claim]) -> TruthDiscoveryResult:
        self._claims.extend(claims)
        if len(self._claims) > self.window:
            self._claims = self._claims[-self.window:]
        self.last_result = self._estimator.run(self._claims)
        return self.last_result
