"""Distributed learning over heterogeneous, time-varying networks.

§V-B: distributed ML "assumes models and algorithms are run over secure,
reliable networks" and is "only marginally tolerant of heterogeneous
hardware" — this module provides the IoBT alternative:

* :class:`GossipAverager` — decentralized averaging by pairwise/neighbor
  gossip; converges to the global mean on any connected (even time-varying)
  topology, with no coordinator.
* :class:`DecentralizedSGD` — each worker holds a data shard and a model
  replica; rounds alternate local gradient steps with neighbor aggregation
  under a pluggable (possibly Byzantine-resilient) rule.  Workers may be
  Byzantine (send crafted updates) and the topology may change every round.

Topology providers (:class:`RingTopology`, :class:`RandomTopology`) yield
the neighbor map per round, modeling failure-driven churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.learning.byzantine import mean_aggregate
from repro.errors import LearningError

__all__ = [
    "RingTopology",
    "RandomTopology",
    "GossipAverager",
    "DecentralizedSGD",
]

NeighborMap = Dict[int, List[int]]
Aggregator = Callable[..., np.ndarray]


class RingTopology:
    """Static ring: worker i talks to i±1 (mod n)."""

    def __init__(self, n: int):
        if n < 2:
            raise LearningError("ring needs >= 2 workers")
        self.n = n

    def neighbors(self, round_idx: int) -> NeighborMap:
        return {
            i: [(i - 1) % self.n, (i + 1) % self.n] for i in range(self.n)
        }


class RandomTopology:
    """Time-varying random graph: each round, each node keeps each
    potential link with probability ``p`` (failure-driven churn)."""

    def __init__(self, n: int, p: float, rng: np.random.Generator):
        if n < 2:
            raise LearningError("topology needs >= 2 workers")
        if not (0.0 < p <= 1.0):
            raise LearningError("p must be in (0, 1]")
        self.n = n
        self.p = p
        self.rng = rng

    def neighbors(self, round_idx: int) -> NeighborMap:
        out: NeighborMap = {i: [] for i in range(self.n)}
        for i in range(self.n):
            for j in range(i + 1, self.n):
                if self.rng.random() < self.p:
                    out[i].append(j)
                    out[j].append(i)
        return out


class GossipAverager:
    """Decentralized averaging by Metropolis-weight neighbor mixing.

    Naive "average yourself with your neighbors" is *not* mean-preserving
    on irregular topologies (the mixing matrix is row- but not
    column-stochastic), so consensus would land on a degree-weighted value
    instead of the true mean.  Metropolis-Hastings weights
    ``w_ij = 1 / (1 + max(deg_i, deg_j))`` are symmetric and doubly
    stochastic, so the global mean is invariant on any topology — including
    the time-varying ones failures produce.
    """

    def __init__(self, values: Sequence[float], topology) -> None:
        self.values = np.asarray(values, dtype=float).copy()
        if self.values.ndim != 1 or len(self.values) < 2:
            raise LearningError("need a 1-D array of >= 2 values")
        self.topology = topology
        self.true_mean = float(self.values.mean())
        self.round_idx = 0
        self.disagreement_trace: List[float] = [self.disagreement()]

    def disagreement(self) -> float:
        return float(np.abs(self.values - self.true_mean).max())

    def round(self) -> float:
        neighbor_map = self.topology.neighbors(self.round_idx)
        n = len(self.values)
        degree = {
            i: len([j for j in neighbor_map.get(i, []) if 0 <= j < n])
            for i in range(n)
        }
        new_values = self.values.copy()
        for i in range(n):
            acc = 0.0
            self_weight = 1.0
            for j in neighbor_map.get(i, []):
                if not (0 <= j < n):
                    continue
                w = 1.0 / (1.0 + max(degree[i], degree[j]))
                acc += w * self.values[j]
                self_weight -= w
            new_values[i] = acc + self_weight * self.values[i]
        self.values = new_values
        self.round_idx += 1
        d = self.disagreement()
        self.disagreement_trace.append(d)
        return d

    def run(self, rounds: int) -> float:
        for _ in range(rounds):
            self.round()
        return self.disagreement()

    def rounds_to(self, epsilon: float, max_rounds: int = 10_000) -> int:
        """Rounds until disagreement < epsilon (conservation permitting)."""
        r = 0
        while self.disagreement() >= epsilon:
            if r >= max_rounds:
                raise LearningError(
                    f"no convergence to {epsilon} within {max_rounds} rounds"
                )
            self.round()
            r += 1
        return r


@dataclass
class _Worker:
    worker_id: int
    x: np.ndarray          # features (n_i, d)
    y: np.ndarray          # targets (n_i,)
    w: np.ndarray          # model replica (d,)
    byzantine: bool = False


class DecentralizedSGD:
    """Decentralized SGD for linear least-squares with Byzantine workers.

    The learning task is linear regression ``y = x . w*`` (convex, so
    convergence behavior is attributable to the aggregation rule rather
    than to optimization pathologies).  Byzantine workers submit their
    honest update *negated and amplified* — a strong directed attack.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[np.ndarray, np.ndarray]],
        topology,
        *,
        aggregator: Aggregator = mean_aggregate,
        byzantine_workers: Optional[Set[int]] = None,
        attack_scale: float = 10.0,
        learning_rate: float = 0.05,
        rng: Optional[np.random.Generator] = None,
    ):
        if not shards:
            raise LearningError("need at least one data shard")
        d = shards[0][0].shape[1]
        self.dim = d
        self.topology = topology
        self.aggregator = aggregator
        self.byzantine_workers = set(byzantine_workers or ())
        self.attack_scale = attack_scale
        self.learning_rate = learning_rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.workers: List[_Worker] = []
        for i, (x, y) in enumerate(shards):
            if x.shape[1] != d:
                raise LearningError("inconsistent feature dimensions")
            self.workers.append(
                _Worker(
                    worker_id=i,
                    x=np.asarray(x, dtype=float),
                    y=np.asarray(y, dtype=float),
                    w=np.zeros(d),
                    byzantine=i in self.byzantine_workers,
                )
            )
        self.round_idx = 0

    # ---------------------------------------------------------------- fitness

    def honest_workers(self) -> List[_Worker]:
        return [w for w in self.workers if not w.byzantine]

    def global_loss(self, w: Optional[np.ndarray] = None) -> float:
        """Mean squared error over all honest shards."""
        total, count = 0.0, 0
        for worker in self.honest_workers():
            weights = w if w is not None else worker.w
            residual = worker.x @ weights - worker.y
            total += float((residual**2).sum())
            count += len(worker.y)
        return total / count if count else float("nan")

    def consensus_model(self) -> np.ndarray:
        """Mean model across honest workers (the quantity that matters)."""
        return np.mean([w.w for w in self.honest_workers()], axis=0)

    # ------------------------------------------------------------------ round

    def _local_update(self, worker: _Worker) -> np.ndarray:
        gradient = 2.0 * worker.x.T @ (worker.x @ worker.w - worker.y) / len(
            worker.y
        )
        proposed = worker.w - self.learning_rate * gradient
        if worker.byzantine:
            # Directed attack: push the aggregate away from the optimum.
            return -self.attack_scale * proposed
        return proposed

    def round(self) -> float:
        neighbor_map = self.topology.neighbors(self.round_idx)
        proposals = {w.worker_id: self._local_update(w) for w in self.workers}
        f_local = max(1, len(self.byzantine_workers)) if self.byzantine_workers else 0
        new_models: Dict[int, np.ndarray] = {}
        for worker in self.workers:
            group_ids = [worker.worker_id] + [
                j for j in neighbor_map.get(worker.worker_id, [])
            ]
            vectors = [proposals[j] for j in group_ids if j in proposals]
            f = min(f_local, max(0, (len(vectors) - 1) // 2))
            try:
                new_models[worker.worker_id] = self.aggregator(vectors, f)
            except LearningError:
                new_models[worker.worker_id] = proposals[worker.worker_id]
        for worker in self.workers:
            if not worker.byzantine:
                worker.w = new_models[worker.worker_id]
        self.round_idx += 1
        return self.global_loss(self.consensus_model())

    def run(self, rounds: int) -> List[float]:
        """Run and return the consensus-loss trace."""
        return [self.round() for _ in range(rounds)]


def make_regression_shards(
    n_workers: int,
    samples_per_worker: int,
    dim: int,
    rng: np.random.Generator,
    *,
    noise: float = 0.1,
    heterogeneous: bool = True,
) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Synthetic linear-regression shards with per-worker covariate shift.

    Returns (shards, true_weights).  ``heterogeneous`` gives each worker a
    different input distribution — the non-IID regime the paper highlights.
    """
    true_w = rng.normal(0, 1, dim)
    shards = []
    for i in range(n_workers):
        shift = rng.normal(0, 1, dim) if heterogeneous else np.zeros(dim)
        x = rng.normal(0, 1, (samples_per_worker, dim)) + shift
        y = x @ true_w + rng.normal(0, noise, samples_per_worker)
        shards.append((x, y))
    return shards, true_w
