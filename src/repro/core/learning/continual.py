"""Continual learning with and without context awareness.

§V-B: "In systems that learn blindly without proper contextualization, new
information can often erase previously learned knowledge ... the system
must learn the different relevant underlying contexts automatically."

* :class:`OnlineLinearModel` — SGD linear regressor (the shared primitive).
* :class:`BlindContinualLearner` — one model trained on whatever arrives;
  suffers catastrophic forgetting when the data distribution shifts.
* :class:`ContextAwareLearner` — detects context shifts from input
  statistics (no labels needed), maintains one model per inferred context,
  and routes both training and prediction through the detected context —
  so old knowledge survives new regimes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import LearningError

__all__ = ["OnlineLinearModel", "BlindContinualLearner", "ContextAwareLearner"]


class OnlineLinearModel:
    """Linear regression trained by normalized LMS.

    The update ``w -= mu * (pred - y) * x / (eps + ||x||^2)`` is stable for
    ``0 < mu < 2`` regardless of input scale — plain SGD diverges on
    large-norm inputs, which battlefield feature streams (unnormalized
    sensor values) readily produce.
    """

    def __init__(self, dim: int, *, learning_rate: float = 0.5):
        if dim < 1:
            raise LearningError("dim must be >= 1")
        if not (0.0 < learning_rate < 2.0):
            raise LearningError("NLMS learning_rate must be in (0, 2)")
        self.dim = dim
        self.learning_rate = learning_rate
        self.w = np.zeros(dim)
        self.samples_seen = 0

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float) @ self.w

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_1d(np.asarray(y, dtype=float))
        for xi, yi in zip(x, y):
            error = xi @ self.w - yi
            norm_sq = float(xi @ xi) + 1e-9
            self.w -= self.learning_rate * error * xi / norm_sq
            self.samples_seen += 1

    def mse(self, x: np.ndarray, y: np.ndarray) -> float:
        residual = self.predict(x) - np.asarray(y, dtype=float)
        return float(np.mean(residual**2))


class BlindContinualLearner:
    """One model, trained sequentially on everything (the baseline)."""

    def __init__(self, dim: int, **model_kwargs):
        self.model = OnlineLinearModel(dim, **model_kwargs)

    def learn(self, x: np.ndarray, y: np.ndarray) -> None:
        self.model.partial_fit(x, y)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        return self.model.mse(x, y)


class ContextAwareLearner:
    """Context-detecting continual learner.

    Context detection is unsupervised: each batch's input mean vector is
    compared against stored context signatures; a batch farther than
    ``context_threshold`` from every known signature opens a new context.
    Signatures are running means, so drifting contexts track slowly while
    jumps open fresh models.
    """

    def __init__(
        self,
        dim: int,
        *,
        context_threshold: float = 2.0,
        max_contexts: int = 16,
        **model_kwargs,
    ):
        if context_threshold <= 0:
            raise LearningError("context_threshold must be positive")
        self.dim = dim
        self.context_threshold = context_threshold
        self.max_contexts = max_contexts
        self._model_kwargs = model_kwargs
        self.models: Dict[int, OnlineLinearModel] = {}
        self.signatures: Dict[int, np.ndarray] = {}
        self._signature_counts: Dict[int, int] = {}
        self._next_context = 0

    # ------------------------------------------------------------ detection

    def detect_context(self, x: np.ndarray) -> int:
        """Return the context id for a batch (possibly a new one)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        center = x.mean(axis=0)
        best_ctx, best_dist = None, float("inf")
        for ctx, signature in self.signatures.items():
            dist = float(np.linalg.norm(center - signature))
            if dist < best_dist:
                best_dist = dist
                best_ctx = ctx
        if best_ctx is not None and best_dist <= self.context_threshold:
            return best_ctx
        if len(self.models) >= self.max_contexts:
            return best_ctx if best_ctx is not None else 0
        ctx = self._next_context
        self._next_context += 1
        self.models[ctx] = OnlineLinearModel(self.dim, **self._model_kwargs)
        self.signatures[ctx] = center.copy()
        self._signature_counts[ctx] = 0
        return ctx

    def _update_signature(self, ctx: int, x: np.ndarray) -> None:
        center = np.atleast_2d(x).mean(axis=0)
        count = self._signature_counts[ctx]
        self.signatures[ctx] = (self.signatures[ctx] * count + center) / (
            count + 1
        )
        self._signature_counts[ctx] = count + 1

    # ------------------------------------------------------------- learning

    def learn(self, x: np.ndarray, y: np.ndarray) -> int:
        """Train on a batch; returns the context it was routed to."""
        ctx = self.detect_context(x)
        self.models[ctx].partial_fit(x, y)
        self._update_signature(ctx, x)
        return ctx

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Route to the detected context's model and score."""
        if not self.models:
            raise LearningError("learner has no contexts yet")
        ctx = self.detect_context(np.atleast_2d(x))
        return self.models[ctx].mse(x, y)

    @property
    def context_count(self) -> int:
        return len(self.models)
