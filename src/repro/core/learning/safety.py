"""Learning safety: runtime monitoring and output-range verification.

§V-B: "novel methodologies ... might rely on runtime monitoring,
certificate-based verification" — and the citations include output-range
analysis for neural networks (Dutta et al.) and simulation-driven
falsification (Dreossi et al.).

* :class:`IntervalMlp` — interval bound propagation (IBP) through a small
  ReLU MLP: given an input box, compute a *sound* enclosure of the output
  range.  If the unsafe region lies outside the enclosure, the network is
  verified safe on that box (certificate-based verification).
* :class:`RuntimeMonitor` — a predicate evaluated on every proposed action
  with veto power and an audit trail.
* :class:`ShieldedPolicy` — a learned policy wrapped by a monitor plus a
  verified-safe fallback: the runtime-assurance (Simplex) architecture.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LearningError

__all__ = ["IntervalMlp", "RuntimeMonitor", "ShieldedPolicy"]


class IntervalMlp:
    """A ReLU MLP with interval bound propagation.

    ``layers`` is a list of (weight, bias) pairs; ReLU is applied between
    layers (not after the last).  ``propagate`` soundly encloses the output
    over an input box using the standard IBP rules:
    ``center = W (l+u)/2 + b``, ``radius = |W| (u-l)/2``.
    """

    def __init__(self, layers: Sequence[Tuple[np.ndarray, np.ndarray]]):
        if not layers:
            raise LearningError("need at least one layer")
        self.layers = [
            (np.asarray(w, dtype=float), np.asarray(b, dtype=float))
            for w, b in layers
        ]
        for i, (w, b) in enumerate(self.layers):
            if w.ndim != 2 or b.ndim != 1 or w.shape[0] != b.shape[0]:
                raise LearningError(f"layer {i} shapes inconsistent")
            if i > 0 and w.shape[1] != self.layers[i - 1][0].shape[0]:
                raise LearningError(f"layer {i} does not compose with {i-1}")

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = np.asarray(x, dtype=float)
        for i, (w, b) in enumerate(self.layers):
            h = w @ h + b
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)
        return h

    def propagate(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sound output bounds over the input box [lower, upper]."""
        lo = np.asarray(lower, dtype=float)
        hi = np.asarray(upper, dtype=float)
        if lo.shape != hi.shape or np.any(lo > hi):
            raise LearningError("invalid input box")
        for i, (w, b) in enumerate(self.layers):
            center = (lo + hi) / 2.0
            radius = (hi - lo) / 2.0
            new_center = w @ center + b
            new_radius = np.abs(w) @ radius
            lo = new_center - new_radius
            hi = new_center + new_radius
            if i < len(self.layers) - 1:
                lo = np.maximum(lo, 0.0)
                hi = np.maximum(hi, 0.0)
        return lo, hi

    def verify_output_below(
        self, lower: np.ndarray, upper: np.ndarray, threshold: float, output_index: int = 0
    ) -> bool:
        """Certify ``output[output_index] < threshold`` over the box.

        True means *verified safe* (sound); False means *unknown* — IBP
        bounds are conservative, so False does not imply a violation.
        """
        _lo, hi = self.propagate(lower, upper)
        return bool(hi[output_index] < threshold)

    def falsify(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        threshold: float,
        rng: np.random.Generator,
        *,
        output_index: int = 0,
        samples: int = 1000,
    ) -> Optional[np.ndarray]:
        """Simulation-driven falsification: search the box for a violation.

        Returns a counterexample input, or None if none was found.
        """
        lo = np.asarray(lower, dtype=float)
        hi = np.asarray(upper, dtype=float)
        for _i in range(samples):
            x = rng.uniform(lo, hi)
            if self.forward(x)[output_index] >= threshold:
                return x
        return None


class RuntimeMonitor:
    """A safety predicate with veto power and an audit trail."""

    def __init__(
        self,
        name: str,
        predicate: Callable[[np.ndarray, np.ndarray], bool],
    ):
        """``predicate(state, action) -> True`` means the action is safe."""
        self.name = name
        self.predicate = predicate
        self.checks = 0
        self.vetoes = 0
        self.veto_log: List[Tuple[int, float]] = []

    def allows(self, state: np.ndarray, action: np.ndarray) -> bool:
        self.checks += 1
        ok = bool(self.predicate(state, action))
        if not ok:
            self.vetoes += 1
        return ok


class ShieldedPolicy:
    """Runtime assurance: learned policy + monitor + safe fallback.

    ``act`` consults the learned policy; if the monitor vetoes its output,
    the verified-safe fallback acts instead.  Interception statistics are
    what E14 reports.
    """

    def __init__(
        self,
        policy: Callable[[np.ndarray], np.ndarray],
        monitor: RuntimeMonitor,
        fallback: Callable[[np.ndarray], np.ndarray],
    ):
        self.policy = policy
        self.monitor = monitor
        self.fallback = fallback
        self.interventions = 0
        self.actions = 0

    def act(self, state: np.ndarray) -> np.ndarray:
        self.actions += 1
        proposed = np.asarray(self.policy(state), dtype=float)
        if self.monitor.allows(state, proposed):
            return proposed
        self.interventions += 1
        return np.asarray(self.fallback(state), dtype=float)

    @property
    def intervention_rate(self) -> float:
        return self.interventions / self.actions if self.actions else 0.0
