"""Cost-aware learning: topology activation vs accuracy.

§V-B (citing the information-theoretic line [28-33]): "one might activate
different network topologies based on the trade-off between network
learning and communication ... self-configure to jointly optimize both
learning cost and decision making accuracy."

Concretely: N sensors hold noisy observations of a common quantity; fusing
over an activated topology averages whatever values can reach the fusion
point, at a per-round energy cost proportional to activated links.  Denser
activation -> lower estimation error, higher energy.  The
:class:`ActivationPolicy` picks the cheapest option meeting an error
target; :func:`cost_accuracy_frontier` sweeps the options for E12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import LearningError

__all__ = ["TopologyOption", "ActivationPolicy", "cost_accuracy_frontier"]


@dataclass(frozen=True)
class TopologyOption:
    """One activatable communication pattern.

    ``participation`` is the fraction of sensors whose values reach fusion
    per round; ``links`` is the energy proxy (transmissions per round).
    """

    name: str
    participation: float
    links: int
    energy_per_link_j: float = 1.0e-3

    def __post_init__(self) -> None:
        if not (0.0 < self.participation <= 1.0):
            raise LearningError("participation must be in (0, 1]")
        if self.links < 0:
            raise LearningError("links must be non-negative")

    @property
    def energy_j(self) -> float:
        return self.links * self.energy_per_link_j


def standard_options(n_sensors: int) -> List[TopologyOption]:
    """The canonical activation ladder for ``n_sensors`` nodes."""
    if n_sensors < 2:
        raise LearningError("need >= 2 sensors")
    return [
        TopologyOption("single", participation=1.0 / n_sensors, links=1),
        TopologyOption(
            "sparse_quarter",
            participation=max(0.25, 1.0 / n_sensors),
            links=max(1, n_sensors // 4),
        ),
        TopologyOption("half", participation=0.5, links=n_sensors // 2),
        TopologyOption("tree", participation=1.0, links=n_sensors - 1),
        TopologyOption(
            "dense_redundant", participation=1.0, links=2 * (n_sensors - 1)
        ),
    ]


def estimation_error(
    option: TopologyOption,
    n_sensors: int,
    noise_std: float,
    rng: np.random.Generator,
    *,
    trials: int = 200,
) -> float:
    """Monte-Carlo RMSE of fusing a participating subset's observations.

    The redundant option additionally averages two independent rounds
    (its extra links buy retransmission diversity).
    """
    k = max(1, int(round(option.participation * n_sensors)))
    rounds = 2 if option.links > n_sensors - 1 else 1
    errors = np.empty(trials)
    for t in range(trials):
        estimates = [
            float(np.mean(rng.normal(0.0, noise_std, k))) for _ in range(rounds)
        ]
        errors[t] = np.mean(estimates)
    return float(np.sqrt(np.mean(errors**2)))


class ActivationPolicy:
    """Pick the cheapest topology meeting an error target.

    ``choose`` evaluates options (cached Monte-Carlo error) and returns the
    minimum-energy option whose RMSE is below the target; if none qualifies
    it returns the most accurate one (graceful degradation).
    """

    def __init__(
        self,
        n_sensors: int,
        noise_std: float,
        *,
        options: Optional[Sequence[TopologyOption]] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.n_sensors = n_sensors
        self.noise_std = noise_std
        self.options = (
            list(options) if options is not None else standard_options(n_sensors)
        )
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._error_cache: Dict[str, float] = {}

    def error_of(self, option: TopologyOption) -> float:
        if option.name not in self._error_cache:
            self._error_cache[option.name] = estimation_error(
                option, self.n_sensors, self.noise_std, self.rng
            )
        return self._error_cache[option.name]

    def choose(self, error_target: float) -> TopologyOption:
        qualifying = [
            o for o in self.options if self.error_of(o) <= error_target
        ]
        if qualifying:
            return min(qualifying, key=lambda o: (o.energy_j, o.name))
        return min(self.options, key=lambda o: (self.error_of(o), o.name))


def cost_accuracy_frontier(
    n_sensors: int,
    noise_std: float,
    *,
    rng: Optional[np.random.Generator] = None,
) -> List[Dict[str, float]]:
    """Evaluate every standard option; rows of name/energy/error (E12)."""
    policy = ActivationPolicy(n_sensors, noise_std, rng=rng)
    rows = []
    for option in policy.options:
        rows.append(
            {
                "name": option.name,
                "links": option.links,
                "energy_j": option.energy_j,
                "rmse": policy.error_of(option),
            }
        )
    return rows
