"""Adversarial attacks on learners, and a detection primitive.

§V-B: "Adversarial attacks may supply malicious inputs (i.e., inputs
modified to yield erroneous model outputs)" — and in an IoBT the adversary
controls red/gray nodes, so both *training-time* (poisoning) and
*test-time* (evasion) attacks are in scope.

* :func:`flip_labels` — training-set label-flip poisoning.
* :func:`evasion_perturb` — FGSM-style bounded input perturbation against
  a linear scorer (the gradient-sign attack of the paper's citation [27]).
* :func:`poisoning_detector` — loss-based filtering: samples whose loss
  under a trusted reference model is anomalously high are flagged.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import LearningError

__all__ = ["flip_labels", "evasion_perturb", "poisoning_detector"]


def flip_labels(
    y: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Flip the sign of a random ``fraction`` of regression/class labels.

    Returns ``(poisoned_labels, poisoned_mask)``.
    """
    if not (0.0 <= fraction <= 1.0):
        raise LearningError("fraction must be in [0, 1]")
    y = np.asarray(y, dtype=float).copy()
    n = len(y)
    k = int(round(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if k > 0:
        idx = rng.choice(n, size=k, replace=False)
        y[idx] = -y[idx]
        mask[idx] = True
    return y, mask


def evasion_perturb(
    x: np.ndarray,
    w: np.ndarray,
    epsilon: float,
    *,
    target_down: bool = True,
) -> np.ndarray:
    """Gradient-sign evasion against a linear scorer ``score = x . w``.

    Shifts each input by ``epsilon`` per coordinate in the direction that
    lowers (``target_down``) or raises the score — the linear-model
    specialization of FGSM.
    """
    if epsilon < 0:
        raise LearningError("epsilon must be non-negative")
    x = np.atleast_2d(np.asarray(x, dtype=float))
    direction = -np.sign(w) if target_down else np.sign(w)
    return x + epsilon * direction[None, :]


def poisoning_detector(
    x: np.ndarray,
    y: np.ndarray,
    reference_w: np.ndarray,
    *,
    z_threshold: float = 2.5,
) -> np.ndarray:
    """Flag samples whose residual under a trusted model is anomalous.

    Returns a boolean mask of suspected-poisoned samples.  The reference
    model is assumed to come from a vetted (e.g., pre-deployment) training
    phase; at IoBT scale, that assumption is the documented limitation.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float)
    residuals = np.abs(x @ reference_w - y)
    med = np.median(residuals)
    mad = np.median(np.abs(residuals - med)) + 1e-9
    z = 0.6745 * (residuals - med) / mad  # robust z-score
    return z > z_threshold
