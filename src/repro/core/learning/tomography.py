"""Network tomography: infer internal state from end-to-end observations.

§V-A: "Health ... needs to be inferred (and damage, if any, assessed)
without direct component observation.  In communication networks, this
problem is sometimes known as network tomography."

Two classical flavors over path measurements:

* :class:`BooleanTomography` — localize failed links from path success /
  failure bits.  Links on any successful path are exonerated; failures are
  explained by a minimal hitting set over the remaining suspects (greedy
  set-cover, the standard heuristic).
* :class:`AdditiveTomography` — estimate per-link delays from end-to-end
  path delays by non-negative least squares on the routing matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import LearningError

__all__ = ["PathMeasurement", "BooleanTomography", "AdditiveTomography"]

Link = Tuple[int, int]


def _norm(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class PathMeasurement:
    """One end-to-end observation over a known path."""

    path: Tuple[int, ...]          # node sequence
    success: bool = True
    delay_s: Optional[float] = None

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(_norm((a, b)) for a, b in zip(self.path, self.path[1:]))


class BooleanTomography:
    """Failure localization from path success/failure observations."""

    def __init__(self, measurements: Sequence[PathMeasurement]):
        if not measurements:
            raise LearningError("no measurements")
        self.measurements = list(measurements)

    def localize(self) -> Set[Link]:
        """Return the inferred failed-link set (greedy minimal hitting set)."""
        good_links: Set[Link] = set()
        for m in self.measurements:
            if m.success:
                good_links.update(m.links)
        # Each failed path must be "explained" by >= 1 bad link among its
        # non-exonerated links.
        unexplained: List[Set[Link]] = []
        for m in self.measurements:
            if m.success:
                continue
            suspects = set(m.links) - good_links
            if suspects:
                unexplained.append(suspects)
        failed: Set[Link] = set()
        while unexplained:
            # Pick the suspect covering the most unexplained failures.
            counts: Dict[Link, int] = {}
            for suspects in unexplained:
                for link in suspects:
                    counts[link] = counts.get(link, 0) + 1
            best = max(sorted(counts), key=lambda link: counts[link])
            failed.add(best)
            unexplained = [s for s in unexplained if best not in s]
        return failed

    def identifiable_links(self) -> Set[Link]:
        """Links covered by at least one measurement (others are invisible)."""
        out: Set[Link] = set()
        for m in self.measurements:
            out.update(m.links)
        return out

    def score(self, true_failed: Set[Link]) -> Dict[str, float]:
        """Precision/recall of localization vs ground truth, over
        identifiable links only (unobserved links cannot be localized)."""
        observable = self.identifiable_links()
        truth = {_norm(link) for link in true_failed} & observable
        inferred = self.localize()
        tp = len(inferred & truth)
        precision = tp / len(inferred) if inferred else (1.0 if not truth else 0.0)
        recall = tp / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall}


class AdditiveTomography:
    """Per-link delay estimation from end-to-end path delays."""

    def __init__(self, measurements: Sequence[PathMeasurement]):
        usable = [
            m for m in measurements if m.success and m.delay_s is not None
        ]
        if not usable:
            raise LearningError("no successful delay measurements")
        self.measurements = usable
        self.links: List[Link] = sorted(
            {link for m in usable for link in m.links}
        )
        self._index = {link: i for i, link in enumerate(self.links)}

    def routing_matrix(self) -> np.ndarray:
        matrix = np.zeros((len(self.measurements), len(self.links)))
        for row, m in enumerate(self.measurements):
            for link in m.links:
                matrix[row, self._index[link]] += 1.0
        return matrix

    def estimate(self) -> Dict[Link, float]:
        """Non-negative least-squares link-delay estimates."""
        from scipy.optimize import nnls

        matrix = self.routing_matrix()
        delays = np.array([m.delay_s for m in self.measurements])
        solution, _residual = nnls(matrix, delays)
        return {link: float(solution[i]) for link, i in self._index.items()}

    def rank_deficiency(self) -> int:
        """Unidentifiable dimensions (0 means fully identifiable)."""
        matrix = self.routing_matrix()
        return len(self.links) - int(np.linalg.matrix_rank(matrix))

    def estimation_error(self, true_delays: Dict[Link, float]) -> float:
        """Mean absolute error over links present in both maps."""
        estimates = self.estimate()
        common = [link for link in estimates if _norm(link) in {_norm(k) for k in true_delays}]
        truth = { _norm(k): v for k, v in true_delays.items() }
        if not common:
            return float("nan")
        return float(
            np.mean([abs(estimates[link] - truth[_norm(link)]) for link in common])
        )
