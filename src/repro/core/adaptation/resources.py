"""Dynamic resource allocation for compute and communication.

§IV-B requires allocators that (i) reallocate heterogeneous edge resources
as conditions change, (ii) scale with spatio-temporally varying workloads,
and (iii) "prevent any subset of IoBT devices (including attackers) from
saturating cloud processing".

* :class:`EdgeAllocator` — dispatches tasks across compute elements
  (join-shortest-expected-delay), re-dispatches around failures, and
  enforces per-source admission quotas (the saturation defense).
* :class:`AdaptiveRateController` — an integral controller adjusting a
  source's offered rate to hold queueing delay at a setpoint.
* :class:`CoordinatedRateControllers` — the E7 contrast: several such
  controllers sharing one resource either observe *total* delay and split a
  negotiated budget (coordinated) or each chase the shared delay signal
  independently (uncoordinated), which is the oscillation pathology of the
  paper's citation [12].
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AdaptationError
from repro.things.compute import ComputeElement, ComputeTask

__all__ = [
    "EdgeAllocator",
    "AdaptiveRateController",
    "CoordinatedRateControllers",
]


class EdgeAllocator:
    """Dispatch tasks to compute elements with failure-aware admission.

    ``submit`` picks the element with the least expected completion time
    (queue work / flops), skipping failed elements.  Per-source token
    quotas refill each ``quota_window_s``; a source exceeding its quota is
    rejected *before* dispatch, so an attacker flooding tasks cannot starve
    other sources (saturation protection).
    """

    def __init__(
        self,
        elements: Sequence[ComputeElement],
        *,
        per_source_quota: Optional[int] = None,
        quota_window_s: float = 10.0,
    ):
        if not elements:
            raise AdaptationError("need at least one compute element")
        self.elements = list(elements)
        self.per_source_quota = per_source_quota
        self.quota_window_s = quota_window_s
        self.sim = self.elements[0].sim
        self._used: Dict[int, int] = {}
        self._window_started = False
        self.submitted = 0
        self.quota_rejections = 0
        self.dispatch_rejections = 0
        self.failed_elements: set = set()

    def _ensure_window_timer(self) -> None:
        if not self._window_started and self.per_source_quota is not None:
            self._window_started = True
            self.sim.every(self.quota_window_s, self._used.clear)

    def fail_element(self, node_id: int) -> None:
        """Mark an element failed; future dispatch avoids it."""
        self.failed_elements.add(node_id)

    def restore_element(self, node_id: int) -> None:
        self.failed_elements.discard(node_id)

    def _expected_delay(self, element: ComputeElement, work: float) -> float:
        queued_work = sum(t.work_flops for t in element.queue)
        if element.running is not None:
            queued_work += element.running.work_flops / 2.0  # half done, avg
        return (queued_work + work) / element.flops

    def live_elements(self) -> List[ComputeElement]:
        return [
            e for e in self.elements if e.node_id not in self.failed_elements
        ]

    def submit(self, source_id: int, task: ComputeTask) -> bool:
        """Admit and dispatch a task; False when rejected."""
        self._ensure_window_timer()
        if self.per_source_quota is not None:
            used = self._used.get(source_id, 0)
            if used >= self.per_source_quota:
                self.quota_rejections += 1
                return False
            self._used[source_id] = used + 1
        live = self.live_elements()
        if not live:
            self.dispatch_rejections += 1
            return False
        best = min(live, key=lambda e: self._expected_delay(e, task.work_flops))
        ok = best.submit(task)
        if ok:
            self.submitted += 1
        else:
            self.dispatch_rejections += 1
        return ok

    def utilizations(self) -> Dict[int, float]:
        return {e.node_id: e.utilization() for e in self.elements}


class AdaptiveRateController:
    """Integral controller holding observed delay at a setpoint.

    ``update(observed_delay)`` adjusts the offered rate multiplicatively:
    above-setpoint delay cuts the rate, below-setpoint delay grows it.
    ``gain`` controls aggressiveness — the uncoordinated-interaction
    pathology needs realistically aggressive controllers.
    """

    def __init__(
        self,
        *,
        setpoint_s: float = 1.0,
        rate: float = 1.0,
        gain: float = 0.5,
        rate_bounds: Tuple[float, float] = (0.05, 100.0),
    ):
        if setpoint_s <= 0:
            raise AdaptationError("setpoint must be positive")
        self.setpoint_s = setpoint_s
        self.rate = rate
        self.gain = gain
        self.rate_bounds = rate_bounds
        self.history: List[Tuple[float, float]] = []  # (observed, new rate)

    def update(self, observed_delay_s: float) -> float:
        """Adjust and return the new offered rate."""
        # Multiplicative integral action on the relative error.
        error = (self.setpoint_s - observed_delay_s) / self.setpoint_s
        factor = 1.0 + self.gain * error
        factor = max(0.1, min(10.0, factor))
        lo, hi = self.rate_bounds
        self.rate = max(lo, min(hi, self.rate * factor))
        self.history.append((observed_delay_s, self.rate))
        return self.rate

    def oscillation_index(self) -> float:
        """Mean absolute relative rate change over the run (0 = smooth)."""
        if len(self.history) < 2:
            return 0.0
        rates = [r for _d, r in self.history]
        changes = [
            abs(b - a) / max(a, 1e-9) for a, b in zip(rates, rates[1:])
        ]
        return float(np.mean(changes))


class CoordinatedRateControllers:
    """N rate controllers sharing one bottleneck, with/without coordination.

    The shared resource is an M/D/1-ish bottleneck: delay grows as
    ``service_time / (1 - rho)`` for total utilization rho < 1 (and blows
    up beyond).  Uncoordinated mode: every controller reacts to the same
    shared delay at full gain — their corrections compound, overshooting in
    both directions.  Coordinated mode: controllers share the correction,
    each applying 1/N of it, which restores the aggregate loop gain the
    setpoint math assumed.
    """

    def __init__(
        self,
        controllers: Sequence[AdaptiveRateController],
        *,
        capacity: float = 10.0,
        service_time_s: float = 0.1,
        coordinated: bool = True,
    ):
        if not controllers:
            raise AdaptationError("need at least one controller")
        self.controllers = list(controllers)
        self.capacity = capacity
        self.service_time_s = service_time_s
        self.coordinated = coordinated
        self.delay_trace: List[float] = []

    def shared_delay(self) -> float:
        rho = sum(c.rate for c in self.controllers) / self.capacity
        if rho >= 0.999:
            return self.service_time_s * 1000.0  # saturated
        return self.service_time_s / (1.0 - rho)

    def step(self) -> float:
        """One control epoch; returns the post-adjustment shared delay."""
        delay = self.shared_delay()
        self.delay_trace.append(delay)
        n = len(self.controllers)
        for controller in self.controllers:
            if self.coordinated:
                # Share the correction: damp each controller's gain by N.
                original_gain = controller.gain
                controller.gain = original_gain / n
                controller.update(delay)
                controller.gain = original_gain
            else:
                controller.update(delay)
        return self.shared_delay()

    def run(self, epochs: int) -> Dict[str, float]:
        for _i in range(epochs):
            self.step()
        # Judge behavior on the latter half (after transients).
        tail = self.delay_trace[len(self.delay_trace) // 2:]
        setpoint = self.controllers[0].setpoint_s
        rmse = float(
            np.sqrt(np.mean([(d - setpoint) ** 2 for d in tail]))
        )
        return {
            "delay_rmse": rmse,
            "mean_delay": float(np.mean(tail)),
            "oscillation": float(
                np.mean([c.oscillation_index() for c in self.controllers])
            ),
        }
