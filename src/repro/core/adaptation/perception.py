"""Adaptive perception: sensing-modality switching.

§IV-B: "seismic sensing may be used when smoke or other phenomena render
visual tracking unreliable, or when connection is lost with the camera due
to a wireless jamming attack."  The :class:`ModalityManager` scores each
available modality under the current :class:`Environment` and enables the
best usable set, switching automatically as conditions change — the
concrete redundancy-exploiting reflex.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import AdaptationError
from repro.things.asset import Asset
from repro.things.capabilities import SensingModality
from repro.things.sensors import Environment

__all__ = ["ModalityManager"]


class ModalityManager:
    """Keeps each asset's best-usable sensor modalities enabled.

    Parameters
    ----------
    min_effectiveness:
        A modality below this environment-modulated effectiveness is
        considered unusable and disabled.
    hysteresis:
        A currently-active modality is only abandoned when a challenger
        beats it by this margin (prevents flapping on noisy conditions).
    """

    def __init__(
        self,
        assets: Sequence[Asset],
        *,
        min_effectiveness: float = 0.3,
        hysteresis: float = 0.1,
    ):
        if not (0.0 <= min_effectiveness <= 1.0):
            raise AdaptationError("min_effectiveness must be in [0, 1]")
        self.assets = list(assets)
        self.min_effectiveness = min_effectiveness
        self.hysteresis = hysteresis
        self.switches = 0
        self._active: Dict[int, Optional[SensingModality]] = {}

    def effectiveness(
        self, modality: SensingModality, env: Environment
    ) -> float:
        return env.modality_factor(modality)

    def best_modality(
        self, asset: Asset, env: Environment
    ) -> Optional[SensingModality]:
        """Highest-effectiveness usable modality for one asset."""
        usable = [
            (self.effectiveness(s.modality, env), s.modality.value, s.modality)
            for s in asset.sensors
        ]
        usable = [u for u in usable if u[0] >= self.min_effectiveness]
        if not usable:
            return None
        usable.sort(key=lambda u: (-u[0], u[1]))
        return usable[0][2]

    def update(self, env: Environment) -> int:
        """Re-evaluate all assets; returns the number of switches made."""
        switched = 0
        for asset in self.assets:
            if not asset.sensors:
                continue
            seen_before = asset.id in self._active
            current = self._active.get(asset.id)
            best = self.best_modality(asset, env)
            if seen_before and best is current:
                self._apply(asset, current)
                continue
            if not seen_before:
                # First evaluation: record and apply without hysteresis.
                self._active[asset.id] = best
                self._apply(asset, best)
                switched += 1
                continue
            # Hysteresis: keep a still-usable current modality unless the
            # challenger is clearly better.
            if current is not None and best is not None:
                cur_eff = self.effectiveness(current, env)
                new_eff = self.effectiveness(best, env)
                if (
                    cur_eff >= self.min_effectiveness
                    and new_eff - cur_eff < self.hysteresis
                ):
                    self._apply(asset, current)
                    continue
            self._active[asset.id] = best
            self._apply(asset, best)
            switched += 1
        self.switches += switched
        return switched

    def _apply(self, asset: Asset, active: Optional[SensingModality]) -> None:
        for sensor in asset.sensors:
            sensor.enabled = active is not None and sensor.modality is active

    def active_modality(self, asset_id: int) -> Optional[SensingModality]:
        return self._active.get(asset_id)

    def active_counts(self) -> Dict[SensingModality, int]:
        counts: Dict[SensingModality, int] = {}
        for modality in self._active.values():
            if modality is not None:
                counts[modality] = counts.get(modality, 0) + 1
        return counts

    def blinded_assets(self) -> List[int]:
        """Assets with no usable modality under current conditions."""
        return sorted(
            aid for aid, m in self._active.items() if m is None
        )
