"""Game-theoretic intent decomposition.

§IV-A: "by suitably choosing agent objective functions, one may be able to
guarantee that the interactions between the multiple agents in the
battlefield will converge to an equilibrium in which the desired objectives
are met ... coordination ... naturally result[s] from each agent seeking to
optimize its given objective function."

:class:`TaskAssignmentGame` is a congestion/potential game: agents pick one
task each; a task of value ``v`` staffed by ``k`` agents pays each of them
``v / k`` (equal-share reward).  This game admits the exact potential
function ``Phi = sum_t v_t * H(k_t)`` (harmonic numbers), so best-response
dynamics provably converge to a pure Nash equilibrium — the analytic
embodiment of command by intent.

Malicious agents (the paper's derailment concern) pick the move that
*minimizes social welfare* instead of maximizing their own payoff; E5
measures the welfare loss they cause.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.errors import AdaptationError

__all__ = [
    "TaskAssignmentGame",
    "BestResponseDynamics",
    "GameResult",
    "game_from_objectives",
]


def game_from_objectives(objectives, n_agents: int) -> "TaskAssignmentGame":
    """Build the assignment game for a spatial intent decomposition.

    This is the bridge between :func:`repro.core.intent.decompose_spatial`
    and the game layer: each subordinate objective becomes a task whose
    value is its area weight scaled by the mission priority, so
    best-response dynamics *are* the sector-staffing mechanism — agents
    self-assign to sectors, high-value sectors get staffed first, and the
    equilibrium realizes the commander's spatial emphasis without explicit
    coordination.
    """
    if not objectives:
        raise AdaptationError("no objectives to build a game from")
    values = []
    for objective in objectives:
        value = objective.weight * max(1, objective.goal.priority)
        values.append(max(value, 1e-6))
    return TaskAssignmentGame(values, n_agents)


class TaskAssignmentGame:
    """Equal-share task-assignment potential game."""

    def __init__(self, task_values: Sequence[float], n_agents: int):
        if not task_values or any(v <= 0 for v in task_values):
            raise AdaptationError("task values must be positive and non-empty")
        if n_agents < 1:
            raise AdaptationError("need at least one agent")
        self.task_values = list(task_values)
        self.n_tasks = len(task_values)
        self.n_agents = n_agents

    # ------------------------------------------------------------- mechanics

    def counts(self, assignment: Sequence[int]) -> List[int]:
        counts = [0] * self.n_tasks
        for task in assignment:
            counts[task] += 1
        return counts

    def payoff(self, assignment: Sequence[int], agent: int) -> float:
        """Agent's equal share of its task's value."""
        task = assignment[agent]
        k = self.counts(assignment)[task]
        return self.task_values[task] / k

    def welfare(self, assignment: Sequence[int]) -> float:
        """Total value captured: sum of values of staffed tasks."""
        counts = self.counts(assignment)
        return sum(
            v for v, k in zip(self.task_values, counts) if k > 0
        )

    def optimal_welfare(self) -> float:
        """Welfare of an optimal assignment (staff the top-min(n,m) tasks)."""
        top = sorted(self.task_values, reverse=True)[
            : min(self.n_agents, self.n_tasks)
        ]
        return sum(top)

    def potential(self, assignment: Sequence[int]) -> float:
        """Rosenthal potential: sum_t v_t * H(k_t)."""
        total = 0.0
        for v, k in zip(self.task_values, self.counts(assignment)):
            total += v * sum(1.0 / i for i in range(1, k + 1))
        return total

    def best_response(self, assignment: List[int], agent: int) -> int:
        """Task maximizing the agent's payoff given others' choices."""
        counts = self.counts(assignment)
        current = assignment[agent]
        counts[current] -= 1  # remove self
        best_task, best_pay = current, -math.inf
        for task in range(self.n_tasks):
            pay = self.task_values[task] / (counts[task] + 1)
            if pay > best_pay + 1e-12:
                best_pay = pay
                best_task = task
        return best_task

    def worst_response(self, assignment: List[int], agent: int) -> int:
        """Welfare-minimizing move (the malicious-agent strategy)."""
        best_task, worst_welfare = assignment[agent], math.inf
        for task in range(self.n_tasks):
            trial = list(assignment)
            trial[agent] = task
            w = self.welfare(trial)
            if w < worst_welfare - 1e-12:
                worst_welfare = w
                best_task = task
        return best_task


@dataclass
class GameResult:
    """Outcome of one best-response run."""

    assignment: List[int]
    rounds: int
    converged: bool
    welfare: float
    optimal_welfare: float
    potential_trace: List[float] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Welfare as a fraction of optimum (price-of-anarchy empirically)."""
        return self.welfare / self.optimal_welfare if self.optimal_welfare else 0.0


class BestResponseDynamics:
    """Round-robin best-response with optional malicious agents.

    Honest agents best-respond; malicious agents worst-respond (welfare
    minimizing).  With no malicious agents the run provably converges (the
    potential strictly increases on every improving move and is bounded);
    with them it may cycle, which the ``converged`` flag reports.
    """

    def __init__(
        self,
        game: TaskAssignmentGame,
        *,
        malicious: Optional[Set[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.game = game
        self.malicious = set(malicious) if malicious else set()
        bad = [a for a in self.malicious if not (0 <= a < game.n_agents)]
        if bad:
            raise AdaptationError(f"malicious agent ids out of range: {bad}")
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def initial_assignment(self) -> List[int]:
        return [
            int(self.rng.integers(0, self.game.n_tasks))
            for _ in range(self.game.n_agents)
        ]

    def run(
        self,
        *,
        max_rounds: int = 200,
        assignment: Optional[List[int]] = None,
    ) -> GameResult:
        game = self.game
        state = (
            list(assignment)
            if assignment is not None
            else self.initial_assignment()
        )
        potential_trace = [game.potential(state)]
        converged = False
        rounds_used = max_rounds
        for round_idx in range(max_rounds):
            moved = False
            for agent in range(game.n_agents):
                if agent in self.malicious:
                    choice = game.worst_response(state, agent)
                else:
                    choice = game.best_response(state, agent)
                if choice != state[agent]:
                    state[agent] = choice
                    moved = True
            potential_trace.append(game.potential(state))
            if not moved:
                converged = True
                rounds_used = round_idx + 1
                break
        return GameResult(
            assignment=state,
            rounds=rounds_used,
            converged=converged,
            welfare=game.welfare(state),
            optimal_welfare=game.optimal_welfare(),
            potential_trace=potential_trace,
        )

    def is_nash(self, assignment: List[int]) -> bool:
        """No single honest deviation improves its payoff."""
        game = self.game
        for agent in range(game.n_agents):
            if game.best_response(list(assignment), agent) != assignment[agent]:
                current = game.payoff(assignment, agent)
                trial = list(assignment)
                trial[agent] = game.best_response(trial, agent)
                if game.payoff(trial, agent) > current + 1e-12:
                    return False
        return True
