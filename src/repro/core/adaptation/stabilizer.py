"""Self-stabilizing network protocols.

Two classics run over the live network's neighbor relation in synchronous
rounds, as the concrete "adapt to maintain an invariant" reflexes:

* :class:`SpanningTreeProtocol` — BFS spanning tree toward a root
  (Dolev-Israeli-Moran style).  After any perturbation (node loss, link
  churn, corrupted state) the tree re-converges; convergence time is the
  measured reflex latency.
* :class:`LeaderElection` — max-id flooding; every connected component
  agrees on its maximum live id.

Both expose ``legitimate()`` — the invariant — and count rounds to
re-stabilization, which E4 reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import AdaptationError
from repro.net.node import Network

__all__ = ["SpanningTreeProtocol", "LeaderElection"]

_INF = 10**9


class SpanningTreeProtocol:
    """Self-stabilizing BFS spanning tree over the live topology.

    Each node repeatedly sets ``dist = min(neighbor dists) + 1`` and adopts
    the minimizing neighbor as parent; the root pins ``dist = 0``.  This is
    self-stabilizing: from *any* state (including adversarially corrupted
    distance values) it converges to a legitimate BFS tree within O(diameter)
    rounds.
    """

    def __init__(self, network: Network, root: int, node_ids: Optional[List[int]] = None):
        self.network = network
        self.sim = network.sim
        self.root = root
        self.node_ids = sorted(node_ids) if node_ids is not None else sorted(network.nodes)
        if root not in self.node_ids:
            raise AdaptationError(f"root {root} not among protocol nodes")
        self.dist: Dict[int, int] = {n: _INF for n in self.node_ids}
        self.parent: Dict[int, Optional[int]] = {n: None for n in self.node_ids}
        self.rounds = 0

    # ------------------------------------------------------------------ round

    def _live(self, node_id: int) -> bool:
        return node_id in self.network.nodes and self.network.node(node_id).up

    def round(self) -> int:
        """One synchronous round; returns the number of nodes that changed."""
        self.rounds += 1
        changed = 0
        new_dist: Dict[int, int] = {}
        new_parent: Dict[int, Optional[int]] = {}
        for node_id in self.node_ids:
            if not self._live(node_id):
                new_dist[node_id] = _INF
                new_parent[node_id] = None
                continue
            if node_id == self.root:
                new_dist[node_id] = 0
                new_parent[node_id] = None
                continue
            best_parent, best_dist = None, _INF
            for nb in self.network.neighbors(node_id):
                if nb not in self.dist or not self._live(nb):
                    continue
                d = self.dist[nb]
                if d + 1 < best_dist:
                    best_dist = d + 1
                    best_parent = nb
            new_dist[node_id] = best_dist if best_dist < _INF else _INF
            new_parent[node_id] = best_parent
        for node_id in self.node_ids:
            if (
                new_dist[node_id] != self.dist[node_id]
                or new_parent[node_id] != self.parent[node_id]
            ):
                changed += 1
        self.dist = new_dist
        self.parent = new_parent
        return changed

    def stabilize(self, max_rounds: int = 1000) -> int:
        """Run rounds until quiescent; returns rounds used."""
        for i in range(max_rounds):
            if self.round() == 0:
                return i + 1
        raise AdaptationError(f"tree did not stabilize in {max_rounds} rounds")

    # -------------------------------------------------------------- invariant

    def legitimate(self) -> bool:
        """Is the current state a correct BFS tree of the live topology?"""
        if not self._live(self.root):
            return False
        # Ground truth BFS distances over live nodes.
        truth = self._bfs_distances()
        for node_id in self.node_ids:
            if not self._live(node_id):
                continue
            true_d = truth.get(node_id, _INF)
            if self.dist[node_id] != true_d:
                return False
            if node_id != self.root and true_d < _INF:
                p = self.parent[node_id]
                if p is None or truth.get(p, _INF) != true_d - 1:
                    return False
        return True

    def _bfs_distances(self) -> Dict[int, int]:
        frontier = [self.root]
        dist = {self.root: 0}
        while frontier:
            nxt = []
            for node_id in frontier:
                for nb in self.network.neighbors(node_id):
                    if nb in dist or nb not in self.dist:
                        continue
                    if not self._live(nb):
                        continue
                    dist[nb] = dist[node_id] + 1
                    nxt.append(nb)
            frontier = nxt
        return dist

    def corrupt(self, node_id: int, fake_dist: int) -> None:
        """Adversarially corrupt one node's state (for stabilization tests)."""
        self.dist[node_id] = fake_dist

    def tree_edges(self) -> List[tuple]:
        return [
            (n, p)
            for n, p in self.parent.items()
            if p is not None and self.dist[n] < _INF
        ]


class LeaderElection:
    """Self-stabilizing max-id leader election with age-stamped beliefs.

    Naive max-propagation is *not* self-stabilizing: after the leader dies,
    nodes can sustain each other's stale belief forever ("ghost leader").
    The standard repair is to age beliefs: a node advertises
    ``(leader_id, age)``; ages grow by one per hop/round and only the leader
    itself regenerates age 0.  Beliefs older than ``max_age`` (the network
    size bounds true ages) are discarded, so ghosts age out.
    """

    def __init__(self, network: Network, node_ids: Optional[List[int]] = None):
        self.network = network
        self.node_ids = sorted(node_ids) if node_ids is not None else sorted(network.nodes)
        self.leader: Dict[int, int] = {n: n for n in self.node_ids}
        self.age: Dict[int, int] = {n: 0 for n in self.node_ids}
        self.max_age = len(self.node_ids) + 1
        self.rounds = 0

    def _live(self, node_id: int) -> bool:
        return node_id in self.network.nodes and self.network.node(node_id).up

    def round(self) -> int:
        self.rounds += 1
        changed = 0
        new_leader: Dict[int, int] = {}
        new_age: Dict[int, int] = {}
        for node_id in self.node_ids:
            if not self._live(node_id):
                new_leader[node_id], new_age[node_id] = node_id, 0
                continue
            # Self-nomination is always a valid candidate at age 0.
            candidates = [(node_id, 0)]
            for nb in self.network.neighbors(node_id):
                if nb not in self.leader or not self._live(nb):
                    continue
                aged = self.age[nb] + 1
                if aged <= self.max_age:
                    candidates.append((self.leader[nb], aged))
            # Highest id wins; among equal ids prefer the freshest belief.
            best_id = max(c[0] for c in candidates)
            best_age = min(a for cid, a in candidates if cid == best_id)
            new_leader[node_id], new_age[node_id] = best_id, best_age
            # Age changes count as instability too: a ghost id's ages keep
            # inflating while the id looks stable, and quiescence must not
            # be declared until the ghost is fully flushed.
            if best_id != self.leader[node_id] or best_age != self.age[node_id]:
                changed += 1
        self.leader = new_leader
        self.age = new_age
        return changed

    def stabilize(self, max_rounds: int = 1000) -> int:
        for i in range(max_rounds):
            if self.round() == 0:
                return i + 1
        raise AdaptationError(f"election did not stabilize in {max_rounds} rounds")

    def legitimate(self) -> bool:
        """Every live node agrees with its component's maximum live id."""
        components = self._components()
        for comp in components:
            expected = max(comp)
            for node_id in comp:
                if self.leader[node_id] != expected:
                    return False
        return True

    def _components(self) -> List[Set[int]]:
        live = [n for n in self.node_ids if self._live(n)]
        seen: Set[int] = set()
        out: List[Set[int]] = []
        for start in live:
            if start in seen:
                continue
            comp = {start}
            frontier = [start]
            while frontier:
                node_id = frontier.pop()
                for nb in self.network.neighbors(node_id):
                    if nb in self.leader and self._live(nb) and nb not in comp:
                        comp.add(nb)
                        frontier.append(nb)
            seen |= comp
            out.append(comp)
        return out
