"""Adaptation knobs.

"Concrete degrees of freedom expressed in 'adaptation knobs'" (§IV-B).
A knob is a named, bounded parameter an adaptation policy may move — if the
subordinate's :class:`~repro.core.intent.InitiativeEnvelope` permits it.
The registry records every movement for after-action audit, which is how
experiments attribute behavior changes to specific adaptations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.intent import InitiativeEnvelope
from repro.errors import AdaptationError

__all__ = ["AdaptationKnob", "KnobRegistry"]


@dataclass
class AdaptationKnob:
    """A bounded scalar or categorical degree of freedom.

    Exactly one of (``bounds``) or (``choices``) must be provided.
    ``on_change`` is invoked with the new value after validation.
    """

    name: str
    value: Any
    bounds: Optional[Tuple[float, float]] = None
    choices: Optional[Tuple[Any, ...]] = None
    on_change: Optional[Callable[[Any], None]] = None

    def __post_init__(self) -> None:
        if (self.bounds is None) == (self.choices is None):
            raise AdaptationError(
                f"knob {self.name}: exactly one of bounds/choices required"
            )
        self._validate(self.value)

    def _validate(self, value: Any) -> None:
        if self.bounds is not None:
            lo, hi = self.bounds
            if not (lo <= value <= hi):
                raise AdaptationError(
                    f"knob {self.name}: {value} outside [{lo}, {hi}]"
                )
        elif self.choices is not None and value not in self.choices:
            raise AdaptationError(
                f"knob {self.name}: {value!r} not among {self.choices}"
            )

    def set(self, value: Any) -> None:
        self._validate(value)
        self.value = value
        if self.on_change is not None:
            self.on_change(value)


class KnobRegistry:
    """Envelope-gated knob store with a movement audit log."""

    def __init__(self, envelope: Optional[InitiativeEnvelope] = None):
        self.envelope = envelope
        self._knobs: Dict[str, AdaptationKnob] = {}
        self.audit_log: List[Tuple[float, str, Any, Any]] = []

    def register(self, knob: AdaptationKnob) -> AdaptationKnob:
        if knob.name in self._knobs:
            raise AdaptationError(f"duplicate knob {knob.name}")
        self._knobs[knob.name] = knob
        return knob

    def get(self, name: str) -> AdaptationKnob:
        try:
            return self._knobs[name]
        except KeyError:
            raise AdaptationError(f"unknown knob {name!r}") from None

    def permitted(self, name: str) -> bool:
        if self.envelope is None:
            return True
        return self.envelope.permits(name)

    def move(self, name: str, value: Any, *, time: float = 0.0) -> bool:
        """Move a knob if the envelope permits; returns whether it moved.

        A denied move is recorded in the audit log as an escalation point —
        the subordinate would have to ask up the chain.
        """
        knob = self.get(name)
        if not self.permitted(name):
            self.audit_log.append((time, name, knob.value, "DENIED"))
            return False
        old = knob.value
        knob.set(value)
        self.audit_log.append((time, name, old, value))
        return True

    def names(self) -> List[str]:
        return sorted(self._knobs)

    def denied_moves(self) -> List[Tuple[float, str, Any, Any]]:
        return [entry for entry in self.audit_log if entry[3] == "DENIED"]
