"""Challenge 2 — Adaptive reflexes for IoBTs.

* :mod:`repro.core.adaptation.selfaware` — the unified self-aware
  adaptation abstraction (state / goal / model / actions) instantiated for
  the three disciplines the paper names (self-stabilization, error
  correction, adaptive control).
* :mod:`repro.core.adaptation.stabilizer` — self-stabilizing spanning-tree
  and leader-election protocols over the live network.
* :mod:`repro.core.adaptation.games` — game-theoretic decomposition of
  global goals into agent objectives with best-response convergence.
* :mod:`repro.core.adaptation.knobs` — the adaptation-knob registry tied to
  initiative envelopes.
* :mod:`repro.core.adaptation.perception` — sensing-modality switching.
* :mod:`repro.core.adaptation.resources` — dynamic compute/bandwidth
  reallocation with saturation protection; coordinated vs uncoordinated
  adaptive controllers.
* :mod:`repro.core.adaptation.controllers` — diverse vs homogeneous
  controller teams.
"""

from repro.core.adaptation.selfaware import (
    SelfModel,
    SelfAwareAgent,
    InvariantMaintainer,
    SetpointController,
    CodewordCorrector,
)
from repro.core.adaptation.stabilizer import SpanningTreeProtocol, LeaderElection
from repro.core.adaptation.games import (
    TaskAssignmentGame,
    BestResponseDynamics,
    GameResult,
)
from repro.core.adaptation.knobs import AdaptationKnob, KnobRegistry
from repro.core.adaptation.perception import ModalityManager
from repro.core.adaptation.resources import (
    EdgeAllocator,
    AdaptiveRateController,
    CoordinatedRateControllers,
)
from repro.core.adaptation.comms import TransportSwitcher
from repro.core.adaptation.controllers import (
    TrackingController,
    ControllerTeam,
    make_homogeneous_team,
    make_diverse_team,
)

__all__ = [
    "SelfModel",
    "SelfAwareAgent",
    "InvariantMaintainer",
    "SetpointController",
    "CodewordCorrector",
    "SpanningTreeProtocol",
    "LeaderElection",
    "TaskAssignmentGame",
    "BestResponseDynamics",
    "GameResult",
    "AdaptationKnob",
    "KnobRegistry",
    "ModalityManager",
    "EdgeAllocator",
    "AdaptiveRateController",
    "CoordinatedRateControllers",
    "TransportSwitcher",
    "TrackingController",
    "ControllerTeam",
    "make_homogeneous_team",
    "make_diverse_team",
]
