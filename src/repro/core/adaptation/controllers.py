"""Diverse vs homogeneous controller teams.

§IV-B: "diversity is well documented as a way to improve the performance of
human workgroups ... instead [of] brittle controllers designed with fixed
assumptions, one may design novel controllers that are parameterized
differently but adapt their parameterization by observing their neighbors."

:class:`TrackingController` is a first-order tracker with a smoothing
parameter; a :class:`ControllerTeam` fuses member estimates and (optionally)
lets poor performers imitate their best-performing neighbor.  A diverse team
spans slow-to-fast parameterizations, so *some* member is near-optimal in
any signal regime, and neighbor-imitation pulls the team there — which is
why it beats any single fixed parameterization across regime changes (E8).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import AdaptationError

__all__ = [
    "TrackingController",
    "ControllerTeam",
    "make_homogeneous_team",
    "make_diverse_team",
]


class TrackingController:
    """Exponential tracker ``estimate += alpha * (signal - estimate)``.

    Low alpha filters noise but lags fast signals; high alpha follows fast
    signals but amplifies noise.  There is no universally good alpha — that
    is the premise the diversity claim rests on.
    """

    def __init__(self, alpha: float):
        if not (0.0 < alpha <= 1.0):
            raise AdaptationError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.estimate = 0.0
        self.squared_error = 0.0
        self.steps = 0

    def update(self, observation: float, truth: float) -> float:
        self.estimate += self.alpha * (observation - self.estimate)
        self.squared_error += (self.estimate - truth) ** 2
        self.steps += 1
        return self.estimate

    @property
    def rmse(self) -> float:
        if self.steps == 0:
            return 0.0
        return float(np.sqrt(self.squared_error / self.steps))

    def recent_error(self) -> float:
        """Error rate proxy used for neighbor comparison."""
        return self.rmse


class ControllerTeam:
    """A team of trackers with fused output and optional social adaptation."""

    def __init__(
        self,
        controllers: Sequence[TrackingController],
        *,
        imitate: bool = True,
        imitation_period: int = 25,
        imitation_blend: float = 0.5,
    ):
        if not controllers:
            raise AdaptationError("team needs at least one controller")
        self.controllers = list(controllers)
        self.imitate = imitate
        self.imitation_period = imitation_period
        self.imitation_blend = imitation_blend
        self._step = 0
        self.team_squared_error = 0.0
        self.team_steps = 0

    def fused_estimate(self) -> float:
        return float(np.mean([c.estimate for c in self.controllers]))

    def step(self, observation: float, truth: float) -> float:
        for controller in self.controllers:
            controller.update(observation, truth)
        self._step += 1
        if self.imitate and self._step % self.imitation_period == 0:
            self._imitation_round()
        fused = self.fused_estimate()
        self.team_squared_error += (fused - truth) ** 2
        self.team_steps += 1
        return fused

    def _imitation_round(self) -> None:
        """Worst performers move their parameter toward the best's."""
        best = min(self.controllers, key=lambda c: c.recent_error())
        for controller in self.controllers:
            if controller is best:
                continue
            if controller.recent_error() > best.recent_error():
                controller.alpha += self.imitation_blend * (
                    best.alpha - controller.alpha
                )
                controller.alpha = min(1.0, max(1e-3, controller.alpha))

    @property
    def team_rmse(self) -> float:
        if self.team_steps == 0:
            return 0.0
        return float(np.sqrt(self.team_squared_error / self.team_steps))

    def alphas(self) -> List[float]:
        return [c.alpha for c in self.controllers]


def make_homogeneous_team(
    n: int, alpha: float = 0.3, **team_kwargs
) -> ControllerTeam:
    """All members share one fixed-assumption parameterization."""
    return ControllerTeam(
        [TrackingController(alpha) for _ in range(n)], **team_kwargs
    )


def make_diverse_team(
    n: int,
    *,
    alpha_range: tuple = (0.05, 0.95),
    **team_kwargs,
) -> ControllerTeam:
    """Members span the parameter spectrum (geometric spacing)."""
    if n < 1:
        raise AdaptationError("team size must be >= 1")
    lo, hi = alpha_range
    alphas = np.geomspace(lo, hi, n)
    return ControllerTeam(
        [TrackingController(float(a)) for a in alphas], **team_kwargs
    )
