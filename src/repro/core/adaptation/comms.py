"""Adaptive communications: switching transports with connectivity.

§IV-B calls for "dynamically (re)allocat[ing] computing and network
resources" as conditions change.  One of the sharpest such knobs is the
*transport regime*: mesh routing (AODV-style) is efficient while the force
is connected, but delivers nothing across partitions, where
store-carry-forward (DTN) is the only thing that works — at much higher
overhead.  The :class:`TransportSwitcher` monitors the attached nodes'
connectivity (giant-component fraction) and migrates the node set between
registered routers, with hysteresis so border-line connectivity does not
flap.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import AdaptationError
from repro.net.node import Network
from repro.net.routing.base import Router
from repro.net.routing.dtn import _StoreCarryForwardRouter
from repro.net.topology import build_topology
from repro.net.transport import DeliveryReceipt, MessageService

__all__ = ["TransportSwitcher"]


class TransportSwitcher:
    """Connectivity-driven migration between routing transports.

    Parameters
    ----------
    routers:
        ``{"mesh": <router>, "dtn": <router>}`` — exactly these two keys.
        Neither router may be pre-attached; the switcher owns attachment.
    partition_threshold:
        Giant-component fraction below which the force counts as
        partitioned (switch to DTN).
    hysteresis:
        The reverse switch (back to mesh) requires the fraction to exceed
        ``partition_threshold + hysteresis``.
    """

    def __init__(
        self,
        network: Network,
        node_ids: Sequence[int],
        routers: Dict[str, Router],
        *,
        check_period_s: float = 10.0,
        partition_threshold: float = 0.9,
        hysteresis: float = 0.05,
    ):
        if set(routers) != {"mesh", "dtn"}:
            raise AdaptationError('routers must have exactly keys {"mesh", "dtn"}')
        if check_period_s <= 0:
            raise AdaptationError("check_period_s must be positive")
        if not node_ids:
            raise AdaptationError("need at least one node")
        self.network = network
        self.sim = network.sim
        self.node_ids = sorted(node_ids)
        self.routers = dict(routers)
        self.check_period_s = check_period_s
        self.partition_threshold = partition_threshold
        self.hysteresis = hysteresis
        self.current = "mesh"
        self.switches = 0
        self._services: Dict[str, MessageService] = {}
        self._receipts: List[DeliveryReceipt] = []
        self._user_handlers: Dict[int, Callable] = {}
        self._started = False
        self._attach_current()

    # -------------------------------------------------------------- plumbing

    def _attach_current(self) -> None:
        router = self.routers[self.current]
        for node_id in self.node_ids:
            node = self.network.node(node_id)
            if node.router is not None and node.router is not router:
                node.router = None  # detach from whichever held it
            if node.router is None:
                router.attach(node_id)
        service = MessageService(router)
        for node_id, handler in self._user_handlers.items():
            service.on_message(node_id, handler)
        self._services[self.current] = service
        if isinstance(router, _StoreCarryForwardRouter):
            router.start()

    def service(self) -> MessageService:
        return self._services[self.current]

    # ------------------------------------------------------------ monitoring

    def connectivity(self) -> float:
        """Giant-component fraction over the switcher's (live) nodes."""
        topology = build_topology(self.network)
        live = [
            n for n in self.node_ids
            if n in topology.graph
        ]
        if not live:
            return 0.0
        sub = topology.graph.subgraph(live)
        import networkx as nx

        if sub.number_of_nodes() == 0:
            return 0.0
        giant = max(
            (len(c) for c in nx.connected_components(sub)), default=0
        )
        return giant / len(self.node_ids)

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.sim.every(self.check_period_s, self.check)

    def check(self) -> str:
        """One monitoring pass; returns the (possibly new) current regime."""
        fraction = self.connectivity()
        self.sim.metrics.sample("comms.connectivity", fraction)
        if self.current == "mesh" and fraction < self.partition_threshold:
            self._switch("dtn", fraction)
        elif (
            self.current == "dtn"
            and fraction > self.partition_threshold + self.hysteresis
        ):
            self._switch("mesh", fraction)
        return self.current

    def _switch(self, target: str, fraction: float) -> None:
        old_router = self.routers[self.current]
        for node_id in list(old_router.attached):
            if node_id in set(self.node_ids):
                old_router.detach(node_id)
        self.current = target
        self._attach_current()
        self.switches += 1
        self.sim.trace.emit(
            "comms.switch", to=target, connectivity=round(fraction, 4)
        )

    # --------------------------------------------------------------- sending

    def on_message(self, node_id: int, handler: Callable) -> None:
        self._user_handlers[node_id] = handler
        for service in self._services.values():
            service.on_message(node_id, handler)

    def send(
        self, src: int, dst: Optional[int], payload: Any = None, **kwargs
    ) -> DeliveryReceipt:
        receipt = self.service().send(src, dst, payload, **kwargs)
        self._receipts.append(receipt)
        return receipt

    # --------------------------------------------------------------- metrics

    def delivery_ratio(self) -> float:
        if not self._receipts:
            return float("nan")
        done = sum(1 for r in self._receipts if r.delivered)
        return done / len(self._receipts)

    def delivered_count(self) -> int:
        return sum(1 for r in self._receipts if r.delivered)
