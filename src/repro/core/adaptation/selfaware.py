"""A unified theory of self-aware adaptation.

§IV-A argues that self-stabilizing algorithms, error-correcting decoders,
and adaptive controllers "all implicitly share the notion of *self* that
encapsulates state, models, actions, and goals, and that adapts its actions
and models as needed, such that its goals are met."

This module is that notion made concrete:

* :class:`SelfModel` — the four ingredients (state, goal, model, actions).
* :class:`SelfAwareAgent` — the adaptation loop: sense -> detect mismatch
  against the goal -> select a corrective action (and/or revise the model)
  -> act.  One loop, three disciplinary instantiations:

  - :class:`InvariantMaintainer` (distributed computing / self-stabilization)
  - :class:`CodewordCorrector` (information theory / error correction)
  - :class:`SetpointController` (control theory / adaptive control)

The tests verify the *unification claim* behaviorally: all three subclasses
restore their goal predicate after arbitrary single-fault perturbations,
through the same loop, without subclass-specific orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AdaptationError

__all__ = [
    "SelfModel",
    "SelfAwareAgent",
    "InvariantMaintainer",
    "CodewordCorrector",
    "SetpointController",
]


@dataclass
class SelfModel:
    """State, goal, model, actions — the encapsulated 'self'.

    ``goal`` is a predicate over state; ``model`` is whatever internal
    representation the agent uses to predict action outcomes; ``actions``
    maps action names to callables mutating state.
    """

    state: Any
    goal: Callable[[Any], bool]
    model: Any = None
    actions: Dict[str, Callable[[Any], Any]] = field(default_factory=dict)

    def goal_met(self) -> bool:
        return bool(self.goal(self.state))


class SelfAwareAgent:
    """The generic adaptation loop over a :class:`SelfModel`.

    Subclasses implement :meth:`select_action` (which corrective action to
    take on mismatch) and optionally :meth:`revise_model` (model adaptation
    on persistent mismatch).  ``step`` returns True when the goal holds
    after the step.
    """

    def __init__(self, self_model: SelfModel, *, max_steps_per_adapt: int = 100):
        self.self_model = self_model
        self.max_steps_per_adapt = max_steps_per_adapt
        self.adaptations = 0
        self.model_revisions = 0

    # ------------------------------------------------------------- extension

    def select_action(self) -> Optional[str]:
        """Name of the corrective action to run, or None when stuck."""
        raise NotImplementedError

    def revise_model(self) -> bool:
        """Adapt the internal model; return True if something changed."""
        return False

    # ------------------------------------------------------------------ loop

    def step(self) -> bool:
        """One monitor-analyze-plan-execute pass."""
        if self.self_model.goal_met():
            return True
        action_name = self.select_action()
        if action_name is None:
            if self.revise_model():
                self.model_revisions += 1
                action_name = self.select_action()
        if action_name is None:
            return False
        action = self.self_model.actions.get(action_name)
        if action is None:
            raise AdaptationError(f"unknown action {action_name!r}")
        self.self_model.state = action(self.self_model.state)
        self.adaptations += 1
        return self.self_model.goal_met()

    def adapt_until_stable(self) -> int:
        """Run steps until the goal holds; returns steps used.

        Raises :class:`AdaptationError` if the goal is not restored within
        ``max_steps_per_adapt`` steps (divergent adaptation).
        """
        for i in range(self.max_steps_per_adapt):
            if self.step():
                return i + 1
        raise AdaptationError(
            f"goal not restored within {self.max_steps_per_adapt} steps"
        )


class InvariantMaintainer(SelfAwareAgent):
    """Self-stabilization flavor: ordered corrective rules.

    Rules are ``(guard, action_name)`` pairs; the first rule whose guard
    holds fires — the classic guarded-command form of self-stabilizing
    algorithms.
    """

    def __init__(
        self,
        self_model: SelfModel,
        rules: Sequence[Tuple[Callable[[Any], bool], str]],
        **kwargs,
    ):
        super().__init__(self_model, **kwargs)
        self.rules = list(rules)

    def select_action(self) -> Optional[str]:
        for guard, action_name in self.rules:
            if guard(self.self_model.state):
                return action_name
        return None


class CodewordCorrector(SelfAwareAgent):
    """Error-correction flavor: re-enforce code constraints.

    State is a bit vector; the goal is even parity on every parity group
    (a simple single-error-correcting structure when groups are chosen as
    in a Hamming code).  The corrective action flips the single bit whose
    flip repairs the most violated groups — decoding *as* adaptation.
    """

    def __init__(
        self,
        bits: Sequence[int],
        parity_groups: Sequence[Sequence[int]],
        **kwargs,
    ):
        self.parity_groups = [list(g) for g in parity_groups]
        state = np.array(bits, dtype=int) % 2

        def goal(s: np.ndarray) -> bool:
            return all(int(s[list(g)].sum()) % 2 == 0 for g in self.parity_groups)

        model = SelfModel(
            state=state,
            goal=goal,
            actions={"flip_best": self._flip_best},
        )
        super().__init__(model, **kwargs)

    def _violations(self, state: np.ndarray) -> List[int]:
        return [
            i
            for i, g in enumerate(self.parity_groups)
            if int(state[list(g)].sum()) % 2 != 0
        ]

    def _flip_best(self, state: np.ndarray) -> np.ndarray:
        violated = set(self._violations(state))
        if not violated:
            return state
        best_bit, best_fix = None, -1
        for bit in range(len(state)):
            fixes = sum(
                1 for i in violated if bit in self.parity_groups[i]
            ) - sum(
                1
                for i, g in enumerate(self.parity_groups)
                if i not in violated and bit in g
            )
            if fixes > best_fix:
                best_fix = fixes
                best_bit = bit
        out = state.copy()
        if best_bit is not None:
            out[best_bit] ^= 1
        return out

    def select_action(self) -> Optional[str]:
        return "flip_best" if self._violations(self.self_model.state) else None


class SetpointController(SelfAwareAgent):
    """Adaptive-control flavor: track a setpoint through an unknown gain.

    The plant is ``y += b * u``; the controller believes the gain is
    ``b_hat`` and commands ``u = (setpoint - y) / b_hat``.  When progress
    stalls (model mismatch), :meth:`revise_model` re-estimates ``b_hat``
    from the observed response — model revision *as* adaptation.
    """

    def __init__(
        self,
        plant_gain: float,
        setpoint: float,
        *,
        initial_gain_estimate: float = 1.0,
        tolerance: float = 1e-3,
        **kwargs,
    ):
        if plant_gain == 0:
            raise AdaptationError("plant gain must be nonzero")
        self.plant_gain = plant_gain
        self.setpoint = setpoint
        self.tolerance = tolerance
        self.b_hat = initial_gain_estimate
        self._last_error: Optional[float] = None
        self._last_u: Optional[float] = None

        model = SelfModel(
            state=0.0,
            goal=lambda y: abs(y - setpoint) <= tolerance,
            model={"b_hat": initial_gain_estimate},
            actions={"drive": self._drive},
        )
        super().__init__(model, **kwargs)

    def _drive(self, y: float) -> float:
        error = self.setpoint - y
        u = error / self.b_hat
        # Clamp to a sane actuation envelope.
        u = max(-1e6, min(1e6, u))
        self._last_error = error
        self._last_u = u
        return y + self.plant_gain * u

    def select_action(self) -> Optional[str]:
        if self._diverging():
            return None  # force a model revision first
        return "drive"

    def _diverging(self) -> bool:
        if self._last_error is None:
            return False
        current_error = self.setpoint - float(self.self_model.state)
        return abs(current_error) > abs(self._last_error) + self.tolerance

    def revise_model(self) -> bool:
        """Re-estimate the gain from the last observed step response."""
        if self._last_u is None or self._last_u == 0:
            return False
        previous_y = (
            float(self.self_model.state) - self.plant_gain * self._last_u
        )
        observed_delta = float(self.self_model.state) - previous_y
        new_b_hat = observed_delta / self._last_u
        if new_b_hat == 0 or new_b_hat == self.b_hat:
            return False
        self.b_hat = new_b_hat
        self.self_model.model["b_hat"] = new_b_hat
        self._last_error = None
        return True
