"""A free-list pool for forwarding-copy packet churn.

Flooding-style dissemination creates one :meth:`Packet.copy_for_forwarding`
per node per packet; most die quickly (duplicate-suppressed, TTL-expired)
and go straight to the garbage collector.  :class:`PacketPool` recycles
those shells: :meth:`clone_for_forwarding` fills a recycled ``Packet``
instead of allocating, and :meth:`release` returns one to the free list.

Lifetime rules — the pool is explicit, never reference-counted:

1. **Release only what provably never escaped.**  A clone handed to
   ``network.broadcast``/``send``, a router's ``_deliver_up``, a DTN store,
   or any handler is *escaped*: downstream layers may retain it (delivery
   completions fire later, metrics keep paths, apps keep payloads).  The
   only legal release sites are branches where the clone stayed local —
   e.g. a TTL-death branch whose copy was only shown to the tracer (which
   records scalars, never the object).
2. **Never touch a packet after releasing it.**  The next
   ``clone_for_forwarding`` will overwrite every field in place.
3. **When in doubt, don't release.**  An unreleased clone is garbage
   collected exactly as before the pool existed; a wrongly released one is
   silent state corruption.  The pool is an opt-in optimization for
   audited hot paths, not a general allocator.

The free list is bounded (:attr:`max_free`) so a burst of dead packets
cannot pin memory, and ``reused``/``released`` counters make recycling
observable in benchmarks and tests.
"""

from __future__ import annotations

from typing import List

from repro.net.packet import Packet

__all__ = ["PacketPool"]


class PacketPool:
    """Explicit acquire/release recycling for :class:`Packet` shells."""

    __slots__ = ("_free", "max_free", "released", "reused")

    def __init__(self, max_free: int = 4096):
        self._free: List[Packet] = []
        self.max_free = max_free
        #: Packets returned via :meth:`release` (lifetime counter).
        self.released = 0
        #: Clones served from the free list instead of a fresh allocation.
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def clone_for_forwarding(self, packet: Packet) -> Packet:
        """``packet.copy_for_forwarding()`` drawing the shell from the pool.

        Field-for-field identical to the plain copy (shared uid/payload,
        own path list, one-level-deep header copy, ttl-1); only the
        allocation is recycled.
        """
        free = self._free
        if free:
            self.reused += 1
            return packet._fill_forwarding_copy(free.pop())
        return packet.copy_for_forwarding()

    def release(self, packet: Packet) -> None:
        """Return a dead, never-escaped clone to the free list.

        Payload/path/header references are dropped immediately so the pool
        never extends the lifetime of application objects.
        """
        self.released += 1
        packet.payload = None
        packet.path = []
        packet.headers = {}
        if len(self._free) < self.max_free:
            self._free.append(packet)
