"""Wireless propagation: log-distance path loss, shadowing, fading, jamming.

The model is standard: received power (dBm) is transmit power minus a
log-distance path loss, plus a per-link lognormal shadowing term and a
per-transmission fast-fading term.  Delivery succeeds with a probability
that is a smooth (logistic) function of SINR, where interference includes
active jammers.  This is the classic abstraction used by packet-level MANET
simulators; it reproduces the qualitative effects the paper's arguments rely
on (range limits, partitions, jamming-induced loss).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.util.geometry import Point, distance
from repro.util.rng import derive_seed

__all__ = ["Channel", "Jammer"]


def _dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def _mw_to_dbm(mw: float) -> float:
    return 10.0 * math.log10(max(mw, 1e-30))


@dataclass
class Jammer:
    """A broadband interferer at a fixed position.

    ``active`` can be toggled by attack scenarios; ``power_dbm`` is the
    radiated power, attenuated toward the receiver with the same path-loss
    law as legitimate transmitters.
    """

    position: Point
    power_dbm: float = 30.0
    active: bool = True

    def interference_mw(self, channel: "Channel", at: Point) -> float:
        if not self.active:
            return 0.0
        d = distance(self.position, at)
        rx_dbm = self.power_dbm - channel.path_loss_db(d)
        return _dbm_to_mw(rx_dbm)


class Channel:
    """Log-distance path-loss channel with shadowing, fading and jamming.

    Parameters
    ----------
    path_loss_exponent:
        2.0 for free space, ~3.0 for urban outdoor (default), 4+ indoors.
    shadowing_sigma_db:
        Std-dev of the per-link lognormal shadowing term.  Shadowing is
        *static per link* (deterministic from the seed and the node pair),
        matching the physical interpretation of obstacles.
    fading_sigma_db:
        Std-dev of the per-transmission fast-fading term.
    sinr_threshold_db:
        SINR at which delivery probability is 50%.
    """

    def __init__(
        self,
        *,
        path_loss_exponent: float = 3.0,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
        shadowing_sigma_db: float = 4.0,
        fading_sigma_db: float = 2.0,
        noise_floor_dbm: float = -95.0,
        sinr_threshold_db: float = 10.0,
        sinr_softness_db: float = 1.5,
        seed: int = 0,
    ):
        if path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")
        if reference_distance_m <= 0:
            raise ConfigurationError("reference_distance_m must be positive")
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance_m = reference_distance_m
        self.shadowing_sigma_db = shadowing_sigma_db
        self.fading_sigma_db = fading_sigma_db
        self.noise_floor_dbm = noise_floor_dbm
        self.sinr_threshold_db = sinr_threshold_db
        self.sinr_softness_db = sinr_softness_db
        self.seed = seed
        self.jammers: List[Jammer] = []
        self._fading_rng = np.random.default_rng(derive_seed(seed, "fading"))

    # ------------------------------------------------------------ propagation

    def path_loss_db(self, d: float) -> float:
        """Deterministic log-distance path loss at distance ``d`` meters."""
        d = max(d, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance_m
        )

    def shadowing_db(self, node_a: int, node_b: int) -> float:
        """Static per-link shadowing, symmetric in the node pair."""
        if self.shadowing_sigma_db <= 0:
            return 0.0
        lo, hi = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        rng = np.random.default_rng(
            derive_seed(self.seed, "shadow", str(lo), str(hi))
        )
        return float(rng.normal(0.0, self.shadowing_sigma_db))

    def rx_power_dbm(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        with_fading: bool = True,
    ) -> float:
        """Mean received power plus shadowing (and fading if requested)."""
        power = tx_power_dbm - self.path_loss_db(distance(tx_pos, rx_pos))
        if tx_id >= 0 and rx_id >= 0:
            power += self.shadowing_db(tx_id, rx_id)
        if with_fading and self.fading_sigma_db > 0:
            power += float(self._fading_rng.normal(0.0, self.fading_sigma_db))
        return power

    def interference_mw(self, at: Point) -> float:
        """Aggregate jammer interference power at a receiver position."""
        return sum(j.interference_mw(self, at) for j in self.jammers)

    def sinr_db(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        with_fading: bool = True,
        extra_interference_mw: float = 0.0,
    ) -> float:
        rx_dbm = self.rx_power_dbm(
            tx_power_dbm, tx_pos, rx_pos, tx_id, rx_id, with_fading=with_fading
        )
        denom_mw = (
            _dbm_to_mw(self.noise_floor_dbm)
            + self.interference_mw(rx_pos)
            + extra_interference_mw
        )
        return rx_dbm - _mw_to_dbm(denom_mw)

    # ---------------------------------------------------------------- delivery

    def delivery_probability(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        extra_interference_mw: float = 0.0,
    ) -> float:
        """Probability a single transmission is decoded at the receiver.

        Logistic in SINR around the threshold; evaluated *without* fast
        fading (fading is what the logistic smoothing stands in for).
        """
        sinr = self.sinr_db(
            tx_power_dbm,
            tx_pos,
            rx_pos,
            tx_id,
            rx_id,
            with_fading=False,
            extra_interference_mw=extra_interference_mw,
        )
        z = (sinr - self.sinr_threshold_db) / max(self.sinr_softness_db, 1e-6)
        # Clamp to avoid overflow in exp for extreme SINR values.
        z = min(max(z, -40.0), 40.0)
        return 1.0 / (1.0 + math.exp(-z))

    def comm_range_m(self, tx_power_dbm: float, margin_db: float = 0.0) -> float:
        """Distance at which mean SINR (no jamming) equals the threshold.

        Used to size neighbor-search grids; actual delivery is probabilistic.
        """
        budget_db = (
            tx_power_dbm
            - self.noise_floor_dbm
            - self.sinr_threshold_db
            - self.reference_loss_db
            - margin_db
        )
        if budget_db <= 0:
            return self.reference_distance_m
        return self.reference_distance_m * 10.0 ** (
            budget_db / (10.0 * self.path_loss_exponent)
        )

    # ----------------------------------------------------------------- jamming

    def add_jammer(self, jammer: Jammer) -> Jammer:
        self.jammers.append(jammer)
        return jammer

    def clear_jammers(self) -> None:
        self.jammers.clear()

    def __repr__(self) -> str:
        return (
            f"Channel(n={self.path_loss_exponent}, "
            f"sigma={self.shadowing_sigma_db}dB, jammers={len(self.jammers)})"
        )


# Registry hookup: the default propagation model, addressable by name in
# stack compositions (StackSpec.channel="log_distance").
from repro.net.registry import register  # noqa: E402  (registration epilogue)

Channel.name = "log_distance"
register("channel", Channel.name, Channel)
