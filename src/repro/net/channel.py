"""Wireless propagation: log-distance path loss, shadowing, fading, jamming.

The model is standard: received power (dBm) is transmit power minus a
log-distance path loss, plus a per-link lognormal shadowing term and a
per-transmission fast-fading term.  Delivery succeeds with a probability
that is a smooth (logistic) function of SINR, where interference includes
active jammers.  This is the classic abstraction used by packet-level MANET
simulators; it reproduces the qualitative effects the paper's arguments rely
on (range limits, partitions, jamming-induced loss).

Hot-path notes
--------------
Propagation parameters are construction-time constants, which makes the
expensive scalar cores memoizable:

* :meth:`Channel.shadowing_db` used to build a fresh seeded generator
  (SHA-256 seed derivation + PCG64 init) on *every* call — per link, per
  packet.  Links are static, so the draw is cached per node pair.
* :meth:`Channel.path_loss_db` caches per distinct distance (static worlds
  repeat the same distances forever; the cache is size-capped so mobile
  worlds cannot grow it without bound).
* :meth:`Channel.comm_range_m` caches per ``(tx_power_dbm, margin_db)``.

All caches are invalidated on :meth:`add_jammer` / :meth:`clear_jammers`,
and every jammer-dependent result carries the :meth:`jam_signature` of the
moment it was computed — attack scenarios flip ``Jammer.active`` in place,
which must never serve stale interference from a cache.

The batch API (:meth:`rx_power_dbm_batch` / :meth:`sinr_db_batch` /
:meth:`delivery_verdicts`) evaluates all receivers of one transmission in a
single fused pass over those memoized cores.  Transcendentals
(``log10``/``exp``) deliberately stay on scalar ``math.*``: numpy's SIMD
loops are *not* bit-identical to libm on all hardware, and the PR5 golden
fingerprints pin exact trace bytes.  numpy (via :mod:`repro.net.fastpath`)
is used only where it is IEEE-exact — elementwise multiply and compare of
the final verdicts — so the vectorized and pure-Python paths return the
same bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net import fastpath
from repro.util.geometry import Point, distance
from repro.util.rng import derive_seed

__all__ = ["Channel", "Jammer"]

#: Cap on the per-distance path-loss memo; mobile worlds generate unbounded
#: distinct distances, so the cache resets rather than grows past this.
_PL_CACHE_MAX = 1 << 16

#: Batch size at which the numpy verdict compare beats the scalar loop.
_NP_VERDICT_MIN = 8


def _dbm_to_mw(dbm: float) -> float:
    return 10.0 ** (dbm / 10.0)


def _mw_to_dbm(mw: float) -> float:
    return 10.0 * math.log10(max(mw, 1e-30))


@dataclass
class Jammer:
    """A broadband interferer at a fixed position.

    ``active`` can be toggled by attack scenarios; ``power_dbm`` is the
    radiated power, attenuated toward the receiver with the same path-loss
    law as legitimate transmitters.
    """

    position: Point
    power_dbm: float = 30.0
    active: bool = True

    def interference_mw(self, channel: "Channel", at: Point) -> float:
        if not self.active:
            return 0.0
        d = distance(self.position, at)
        rx_dbm = self.power_dbm - channel.path_loss_db(d)
        return _dbm_to_mw(rx_dbm)


class Channel:
    """Log-distance path-loss channel with shadowing, fading and jamming.

    Parameters
    ----------
    path_loss_exponent:
        2.0 for free space, ~3.0 for urban outdoor (default), 4+ indoors.
    shadowing_sigma_db:
        Std-dev of the per-link lognormal shadowing term.  Shadowing is
        *static per link* (deterministic from the seed and the node pair),
        matching the physical interpretation of obstacles.
    fading_sigma_db:
        Std-dev of the per-transmission fast-fading term.
    sinr_threshold_db:
        SINR at which delivery probability is 50%.

    Propagation parameters are fixed at construction; the memo caches
    below rely on that (build a new Channel to model different physics).
    """

    def __init__(
        self,
        *,
        path_loss_exponent: float = 3.0,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
        shadowing_sigma_db: float = 4.0,
        fading_sigma_db: float = 2.0,
        noise_floor_dbm: float = -95.0,
        sinr_threshold_db: float = 10.0,
        sinr_softness_db: float = 1.5,
        seed: int = 0,
    ):
        if path_loss_exponent <= 0:
            raise ConfigurationError("path_loss_exponent must be positive")
        if reference_distance_m <= 0:
            raise ConfigurationError("reference_distance_m must be positive")
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance_m = reference_distance_m
        self.shadowing_sigma_db = shadowing_sigma_db
        self.fading_sigma_db = fading_sigma_db
        self.noise_floor_dbm = noise_floor_dbm
        self.sinr_threshold_db = sinr_threshold_db
        self.sinr_softness_db = sinr_softness_db
        self.seed = seed
        self.jammers: List[Jammer] = []
        self._fading_rng = np.random.default_rng(derive_seed(seed, "fading"))
        # Memo caches (see module docstring).  Bumping _jam_epoch is how
        # add/clear_jammers invalidates anything keyed on a jam signature.
        self._shadow_cache: Dict[Tuple[int, int], float] = {}
        self._pl_cache: Dict[float, float] = {}
        self._range_cache: Dict[Tuple[float, float], float] = {}
        self._jam_epoch = 0
        self._noise_mw = _dbm_to_mw(noise_floor_dbm)

    # ------------------------------------------------------------ propagation

    def path_loss_db(self, d: float) -> float:
        """Deterministic log-distance path loss at distance ``d`` meters."""
        cached = self._pl_cache.get(d)
        if cached is not None:
            return cached
        clamped = max(d, self.reference_distance_m)
        loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            clamped / self.reference_distance_m
        )
        cache = self._pl_cache
        if len(cache) >= _PL_CACHE_MAX:
            cache.clear()
        cache[d] = loss
        return loss

    def shadowing_db(self, node_a: int, node_b: int) -> float:
        """Static per-link shadowing, symmetric in the node pair."""
        if self.shadowing_sigma_db <= 0:
            return 0.0
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        cached = self._shadow_cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            derive_seed(self.seed, "shadow", str(key[0]), str(key[1]))
        )
        value = float(rng.normal(0.0, self.shadowing_sigma_db))
        self._shadow_cache[key] = value
        return value

    def rx_power_dbm(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        with_fading: bool = True,
    ) -> float:
        """Mean received power plus shadowing (and fading if requested)."""
        power = tx_power_dbm - self.path_loss_db(distance(tx_pos, rx_pos))
        if tx_id >= 0 and rx_id >= 0:
            power += self.shadowing_db(tx_id, rx_id)
        if with_fading and self.fading_sigma_db > 0:
            power += float(self._fading_rng.normal(0.0, self.fading_sigma_db))
        return power

    def interference_mw(self, at: Point) -> float:
        """Aggregate jammer interference power at a receiver position."""
        return sum(j.interference_mw(self, at) for j in self.jammers)

    def sinr_db(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        with_fading: bool = True,
        extra_interference_mw: float = 0.0,
    ) -> float:
        rx_dbm = self.rx_power_dbm(
            tx_power_dbm, tx_pos, rx_pos, tx_id, rx_id, with_fading=with_fading
        )
        denom_mw = (
            self._noise_mw + self.interference_mw(rx_pos) + extra_interference_mw
        )
        return rx_dbm - _mw_to_dbm(denom_mw)

    # ---------------------------------------------------------------- delivery

    def delivery_probability(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Point,
        tx_id: int = -1,
        rx_id: int = -1,
        *,
        extra_interference_mw: float = 0.0,
    ) -> float:
        """Probability a single transmission is decoded at the receiver.

        Logistic in SINR around the threshold; evaluated *without* fast
        fading (fading is what the logistic smoothing stands in for).
        """
        sinr = self.sinr_db(
            tx_power_dbm,
            tx_pos,
            rx_pos,
            tx_id,
            rx_id,
            with_fading=False,
            extra_interference_mw=extra_interference_mw,
        )
        z = (sinr - self.sinr_threshold_db) / max(self.sinr_softness_db, 1e-6)
        # Clamp to avoid overflow in exp for extreme SINR values.
        z = min(max(z, -40.0), 40.0)
        return 1.0 / (1.0 + math.exp(-z))

    # ------------------------------------------------------------- batch API

    def rx_power_dbm_batch(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Sequence[Point],
        rx_ids: Sequence[int],
        tx_id: int = -1,
        *,
        with_fading: bool = False,
    ) -> List[float]:
        """Received power for every receiver of one transmission.

        Semantically ``[rx_power_dbm(…, p, tx_id, i) for p, i in
        zip(rx_pos, rx_ids)]`` — bit-identical to the scalar loop, fused
        over the path-loss and shadowing memos.  Fading (when requested)
        draws sequentially in receiver order, matching the scalar path.
        """
        pl = self.path_loss_db
        sh = self.shadowing_db
        shadowed = tx_id >= 0
        out = []
        append = out.append
        for pos, rid in zip(rx_pos, rx_ids):
            power = tx_power_dbm - pl(distance(tx_pos, pos))
            if shadowed and rid >= 0:
                power += sh(tx_id, rid)
            append(power)
        if with_fading and self.fading_sigma_db > 0:
            normal = self._fading_rng.normal
            sigma = self.fading_sigma_db
            out = [p + float(normal(0.0, sigma)) for p in out]
        return out

    def sinr_db_batch(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Sequence[Point],
        rx_ids: Sequence[int],
        tx_id: int = -1,
        *,
        with_fading: bool = False,
        extra_interference_mw: float = 0.0,
    ) -> List[float]:
        """SINR (dB) for every receiver of one transmission.

        Matches ``sinr_db`` bit-for-bit.  With no jammers the noise+extra
        denominator is constant across the batch and converted to dBm once.
        """
        powers = self.rx_power_dbm_batch(
            tx_power_dbm, tx_pos, rx_pos, rx_ids, tx_id, with_fading=with_fading
        )
        if not self.jammers:
            denom_db = _mw_to_dbm(self._noise_mw + extra_interference_mw)
            return [p - denom_db for p in powers]
        interference = self.interference_mw
        base = self._noise_mw + extra_interference_mw
        return [
            p - _mw_to_dbm(base + interference(pos))
            for p, pos in zip(powers, rx_pos)
        ]

    def delivery_probability_batch(
        self,
        tx_power_dbm: float,
        tx_pos: Point,
        rx_pos: Sequence[Point],
        rx_ids: Sequence[int],
        tx_id: int = -1,
        *,
        extra_interference_mw: float = 0.0,
    ) -> List[float]:
        """``delivery_probability`` for every receiver, fused and memoized."""
        sinrs = self.sinr_db_batch(
            tx_power_dbm,
            tx_pos,
            rx_pos,
            rx_ids,
            tx_id,
            with_fading=False,
            extra_interference_mw=extra_interference_mw,
        )
        inv_soft = 1.0 / max(self.sinr_softness_db, 1e-6)
        threshold = self.sinr_threshold_db
        exp = math.exp
        out = []
        append = out.append
        for sinr in sinrs:
            z = (sinr - threshold) * inv_soft
            z = min(max(z, -40.0), 40.0)
            append(1.0 / (1.0 + exp(-z)))
        return out

    def delivery_verdicts(
        self,
        probs: Sequence[float],
        draws: Sequence[float],
        *,
        survival: float = 1.0,
    ) -> List[bool]:
        """Decode success verdicts from precomputed probabilities and draws.

        ``draws[i]`` is the uniform consumed for receiver ``i`` — either a
        batched ``Generator.random(n)`` slab or KeyedHopRng addressed
        draws; either way the verdict is a pure function of the draw, so
        batching never perturbs it.  Receiver ``i`` decodes iff
        ``draws[i] < probs[i] * survival`` — the same float multiply and
        compare as the scalar dispatcher, evaluated through numpy when the
        fast path is on and the batch is large enough (elementwise ``*``
        and ``<`` on float64 are IEEE-exact, so both paths agree bitwise).
        """
        xp = fastpath.numpy_or_none()
        if xp is not None and len(probs) >= _NP_VERDICT_MIN:
            p = xp.asarray(probs, dtype=xp.float64)
            if survival != 1.0:
                p = p * survival
            return (xp.asarray(draws, dtype=xp.float64) < p).tolist()
        if survival != 1.0:
            return [d < p * survival for p, d in zip(probs, draws)]
        return [d < p for p, d in zip(probs, draws)]

    def comm_range_m(self, tx_power_dbm: float, margin_db: float = 0.0) -> float:
        """Distance at which mean SINR (no jamming) equals the threshold.

        Used to size neighbor-search grids; actual delivery is probabilistic.
        """
        key = (tx_power_dbm, margin_db)
        cached = self._range_cache.get(key)
        if cached is not None:
            return cached
        budget_db = (
            tx_power_dbm
            - self.noise_floor_dbm
            - self.sinr_threshold_db
            - self.reference_loss_db
            - margin_db
        )
        if budget_db <= 0:
            value = self.reference_distance_m
        else:
            value = self.reference_distance_m * 10.0 ** (
                budget_db / (10.0 * self.path_loss_exponent)
            )
        self._range_cache[key] = value
        return value

    # ----------------------------------------------------------------- jamming

    def jam_signature(self) -> Tuple:
        """A hashable token that changes whenever jamming state changes.

        Covers the jammer roster (``_jam_epoch`` bumps on add/clear) *and*
        in-place toggles — attack scenarios flip ``Jammer.active`` and
        retune ``power_dbm`` directly, bypassing the channel.  Anything
        cached from jammer-dependent math (e.g. the stack's pair-probability
        cache) must key on this.  Costs one empty tuple when undisturbed.
        """
        jammers = self.jammers
        if not jammers:
            return (self._jam_epoch, ())
        return (
            self._jam_epoch,
            tuple((j.active, j.power_dbm) for j in jammers),
        )

    def _invalidate_caches(self) -> None:
        self._jam_epoch += 1
        self._shadow_cache.clear()
        self._pl_cache.clear()
        self._range_cache.clear()

    def add_jammer(self, jammer: Jammer) -> Jammer:
        self.jammers.append(jammer)
        self._invalidate_caches()
        return jammer

    def clear_jammers(self) -> None:
        self.jammers.clear()
        self._invalidate_caches()

    def __repr__(self) -> str:
        return (
            f"Channel(n={self.path_loss_exponent}, "
            f"sigma={self.shadowing_sigma_db}dB, jammers={len(self.jammers)})"
        )


# Registry hookup: the default propagation model, addressable by name in
# stack compositions (StackSpec.channel="log_distance").
from repro.net.registry import register  # noqa: E402  (registration epilogue)

Channel.name = "log_distance"
register("channel", Channel.name, Channel)
