"""Topology snapshots.

A :class:`TopologySnapshot` is a networkx view of the network at one instant:
nodes are live endpoints, edges carry delivery probability and ETX (expected
transmission count).  Synthesis, tomography, and assurance all consume these
snapshots rather than poking at the live network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.net.node import Network

__all__ = ["TopologySnapshot", "build_topology"]


@dataclass
class TopologySnapshot:
    """A frozen connectivity graph with link-quality annotations."""

    graph: nx.Graph
    time: float

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(self.graph)

    def components(self) -> List[Set[int]]:
        return [set(c) for c in nx.connected_components(self.graph)]

    def giant_component_fraction(self) -> float:
        if self.graph.number_of_nodes() == 0:
            return 0.0
        comps = self.components()
        return max(len(c) for c in comps) / self.graph.number_of_nodes()

    def shortest_path(
        self, src: int, dst: int, weight: str = "etx"
    ) -> Optional[List[int]]:
        """Min-ETX path, or None when src/dst are disconnected."""
        try:
            return nx.shortest_path(self.graph, src, dst, weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def path_etx(self, path: List[int]) -> float:
        """Sum of ETX along a node path."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.graph.edges[a, b]["etx"]
        return total

    def degree_stats(self) -> Dict[str, float]:
        degrees = [d for _n, d in self.graph.degree()]
        if not degrees:
            return {"mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "mean": sum(degrees) / len(degrees),
            "min": float(min(degrees)),
            "max": float(max(degrees)),
        }


def build_topology(
    network: Network,
    *,
    min_delivery_probability: float = 0.1,
    include_down: bool = False,
) -> TopologySnapshot:
    """Snapshot the network's connectivity graph.

    An edge is added between each neighbor pair whose (fading-free) delivery
    probability exceeds ``min_delivery_probability``; edge attributes are
    ``p`` (delivery probability, min of both directions) and ``etx`` (1/p).
    """
    graph = nx.Graph()
    nodes = network.nodes.values() if include_down else network.up_nodes()
    for node in nodes:
        graph.add_node(node.id, pos=(node.position.x, node.position.y))
    for node in nodes:
        for other_id in network.neighbors(node.id, include_down=include_down):
            if other_id <= node.id or other_id not in graph:
                continue
            other = network.node(other_id)
            p_fwd = network.channel.delivery_probability(
                node.tx_power_dbm, node.position, other.position, node.id, other.id
            )
            p_rev = network.channel.delivery_probability(
                other.tx_power_dbm, other.position, node.position, other.id, node.id
            )
            p = min(p_fwd, p_rev)
            if p >= min_delivery_probability:
                graph.add_edge(node.id, other_id, p=p, etx=1.0 / p)
    return TopologySnapshot(graph=graph, time=network.sim.now)
