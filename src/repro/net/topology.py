"""Topology snapshots and spatial partitioning.

A :class:`TopologySnapshot` is a networkx view of the network at one instant:
nodes are live endpoints, edges carry delivery probability and ETX (expected
transmission count).  Synthesis, tomography, and assurance all consume these
snapshots rather than poking at the live network.

:class:`GridPartition` / :func:`partition_network` split a world into
contiguous spatial shards for the sharded execution engine
(:mod:`repro.shard`): nodes are bucketed into grid cells, the occupied cells
are walked in a seeded boustrophedon sweep, and cut points are placed at the
ideal per-shard node counts.  The sweep is pure integer/float arithmetic over
sorted inputs, so the same ``(positions, n_shards, cell_size, seed)`` always
yields the same assignment in every process — the property the conservative
time-sync protocol depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.net.node import Network
from repro.util.rng import derive_seed

__all__ = [
    "TopologySnapshot",
    "build_topology",
    "GridPartition",
    "partition_network",
    "min_cross_shard_distance_m",
]


@dataclass
class TopologySnapshot:
    """A frozen connectivity graph with link-quality annotations."""

    graph: nx.Graph
    time: float

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return False
        return nx.is_connected(self.graph)

    def components(self) -> List[Set[int]]:
        return [set(c) for c in nx.connected_components(self.graph)]

    def giant_component_fraction(self) -> float:
        if self.graph.number_of_nodes() == 0:
            return 0.0
        comps = self.components()
        return max(len(c) for c in comps) / self.graph.number_of_nodes()

    def shortest_path(
        self, src: int, dst: int, weight: str = "etx"
    ) -> Optional[List[int]]:
        """Min-ETX path, or None when src/dst are disconnected."""
        try:
            return nx.shortest_path(self.graph, src, dst, weight=weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def path_etx(self, path: List[int]) -> float:
        """Sum of ETX along a node path."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.graph.edges[a, b]["etx"]
        return total

    def degree_stats(self) -> Dict[str, float]:
        degrees = [d for _n, d in self.graph.degree()]
        if not degrees:
            return {"mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "mean": sum(degrees) / len(degrees),
            "min": float(min(degrees)),
            "max": float(max(degrees)),
        }


def build_topology(
    network: Network,
    *,
    min_delivery_probability: float = 0.1,
    include_down: bool = False,
) -> TopologySnapshot:
    """Snapshot the network's connectivity graph.

    An edge is added between each neighbor pair whose (fading-free) delivery
    probability exceeds ``min_delivery_probability``; edge attributes are
    ``p`` (delivery probability, min of both directions) and ``etx`` (1/p).
    """
    graph = nx.Graph()
    nodes = network.nodes.values() if include_down else network.up_nodes()
    for node in nodes:
        graph.add_node(node.id, pos=(node.position.x, node.position.y))
    for node in nodes:
        for other_id in network.neighbors(node.id, include_down=include_down):
            if other_id <= node.id or other_id not in graph:
                continue
            other = network.node(other_id)
            p_fwd = network.channel.delivery_probability(
                node.tx_power_dbm, node.position, other.position, node.id, other.id
            )
            p_rev = network.channel.delivery_probability(
                other.tx_power_dbm, other.position, node.position, other.id, node.id
            )
            p = min(p_fwd, p_rev)
            if p >= min_delivery_probability:
                graph.add_edge(node.id, other_id, p=p, etx=1.0 / p)
    return TopologySnapshot(graph=graph, time=network.sim.now)


# ---------------------------------------------------------------- partition


@dataclass(frozen=True)
class GridPartition:
    """A deterministic spatial assignment of nodes to shards.

    ``assignments`` maps every node id to a shard index in
    ``[0, n_shards)``.  ``cells`` maps each *occupied* grid cell to the
    shard that owns it; a node's cell is ``(floor(x / cell_size),
    floor(y / cell_size))``, so a node sitting exactly on a cell border
    belongs to the cell whose lower edge it touches (floor convention).
    Empty cells are simply absent — they own no nodes and cost nothing.
    """

    n_shards: int
    cell_size_m: float
    seed: int
    assignments: Mapping[int, int] = field(default_factory=dict)
    cells: Mapping[Tuple[int, int], int] = field(default_factory=dict)

    def shard_of(self, node_id: int) -> int:
        return self.assignments[node_id]

    def nodes_of(self, shard: int) -> List[int]:
        """Sorted node ids owned by ``shard``."""
        return sorted(n for n, s in self.assignments.items() if s == shard)

    def counts(self) -> List[int]:
        """Nodes per shard (length ``n_shards``; empty shards count 0)."""
        out = [0] * self.n_shards
        for s in self.assignments.values():
            out[s] += 1
        return out

    def __repr__(self) -> str:
        return (
            f"GridPartition(n_shards={self.n_shards}, "
            f"cell_size_m={self.cell_size_m}, counts={self.counts()})"
        )


def _cell_of(x: float, y: float, cell_size: float) -> Tuple[int, int]:
    return (math.floor(x / cell_size), math.floor(y / cell_size))


def partition_network(
    network: Network,
    n_shards: int,
    *,
    cell_size_m: Optional[float] = None,
    seed: int = 0,
) -> GridPartition:
    """Partition ``network`` into ``n_shards`` contiguous spatial shards.

    Nodes are bucketed into square grid cells (default edge: the network's
    maximum comm range, so one cell roughly spans one radio neighborhood),
    the occupied cells are walked in a boustrophedon sweep — column-major
    or row-major, chosen deterministically from ``seed`` — and cut points
    fall at the ideal cumulative node counts ``i * N / n_shards``.  The
    result is balanced to within one cell's population and identical in
    every process given the same inputs.

    Isolated nodes and empty cells need no special casing: only occupied
    cells enter the sweep, and an isolated node is just a cell of
    population one.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if cell_size_m is None:
        cell_size_m = max(network._max_range(), 1.0)
    if not (cell_size_m > 0.0) or not math.isfinite(cell_size_m):
        raise ValueError(f"cell_size_m must be finite and > 0, got {cell_size_m}")

    by_cell: Dict[Tuple[int, int], List[int]] = {}
    for nid in sorted(network.nodes):
        node = network.nodes[nid]
        cell = _cell_of(node.position.x, node.position.y, cell_size_m)
        by_cell.setdefault(cell, []).append(nid)

    total = sum(len(v) for v in by_cell.values())
    assignments: Dict[int, int] = {}
    cell_owner: Dict[Tuple[int, int], int] = {}
    if total == 0:
        return GridPartition(
            n_shards=n_shards,
            cell_size_m=cell_size_m,
            seed=seed,
            assignments=assignments,
            cells=cell_owner,
        )

    # Seeded sweep axis: 0 walks columns of constant x (snaking in y),
    # 1 walks rows of constant y (snaking in x).  The snake keeps
    # consecutive cells spatially adjacent, so each shard is a contiguous
    # band and cross-shard traffic concentrates at two cut fronts.
    axis = derive_seed(seed, "shard.partition.axis") % 2

    def sweep_key(cell: Tuple[int, int]) -> Tuple[int, int]:
        major, minor = (cell[0], cell[1]) if axis == 0 else (cell[1], cell[0])
        return (major, -minor if major % 2 else minor)

    ordered = sorted(by_cell, key=sweep_key)
    shard = 0
    cum = 0
    for cell in ordered:
        # Advance to the next shard once the running population has
        # reached this shard's ideal cumulative share.
        while shard < n_shards - 1 and cum * n_shards >= (shard + 1) * total:
            shard += 1
        cell_owner[cell] = shard
        for nid in by_cell[cell]:
            assignments[nid] = shard
        cum += len(by_cell[cell])

    return GridPartition(
        n_shards=n_shards,
        cell_size_m=cell_size_m,
        seed=seed,
        assignments=assignments,
        cells=cell_owner,
    )


def min_cross_shard_distance_m(
    network: Network, partition: GridPartition
) -> float:
    """Minimum distance between any two nodes owned by different shards.

    Feeds the conservative lookahead's propagation term.  Only adjacent
    occupied cell pairs with different owners are compared pairwise; any
    non-adjacent cross-shard pair is separated by at least one full empty
    or same-owner cell, so ``cell_size_m`` lower-bounds it.  Returns
    ``inf`` for single-shard partitions (no cross-shard pairs exist).
    """
    if partition.n_shards <= 1 or not partition.cells:
        return math.inf
    cell_size = partition.cell_size_m
    members: Dict[Tuple[int, int], List[int]] = {}
    for nid, shard in partition.assignments.items():
        node = network.nodes[nid]
        members.setdefault(
            _cell_of(node.position.x, node.position.y, cell_size), []
        ).append(nid)

    best = math.inf
    cells = partition.cells
    for (cx, cy), owner in cells.items():
        for dx, dy in ((1, -1), (1, 0), (1, 1), (0, 1)):
            other = (cx + dx, cy + dy)
            if other not in cells or cells[other] == owner:
                continue
            for a in members[(cx, cy)]:
                pa = network.nodes[a].position
                for b in members[other]:
                    pb = network.nodes[b].position
                    d = math.hypot(pa.x - pb.x, pa.y - pb.y)
                    if d < best:
                        best = d
    return min(best, cell_size)
