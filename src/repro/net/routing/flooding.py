"""Duplicate-suppressed blind flooding.

Every node rebroadcasts each packet the first time it sees it, until the TTL
expires.  Maximal reliability and latency-optimality at maximal cost — the
canonical dissemination baseline the smarter protocols are judged against.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.net.node import NetNode, Network
from repro.net.packet import Packet
from repro.net.pool import PacketPool
from repro.net.routing.base import Router

__all__ = ["FloodingRouter"]


class FloodingRouter(Router):
    name = "flooding"

    def __init__(self, network: Network):
        super().__init__(network)
        self._seen: Dict[int, Set[int]] = {}
        # Forwarding copies that die of TTL in on_receive never escape the
        # router, so their shells are recycled (see repro.net.pool).
        self._pool = PacketPool()

    def on_node_state(self, node_id: int, up: bool) -> None:
        # A crash loses the in-RAM duplicate cache; the restarted node will
        # treat still-circulating packets as new (and may re-forward them).
        if not up:
            self._seen.pop(node_id, None)

    def _already_seen(self, node_id: int, uid: int) -> bool:
        seen = self._seen.setdefault(node_id, set())
        if uid in seen:
            return True
        seen.add(uid)
        return False

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        self._already_seen(src_id, packet.uid)
        node = self.attached.get(src_id) or self.network.node(src_id)
        # Source delivers to itself when it is the destination (degenerate).
        if packet.dst == src_id:
            self._deliver_up(node, packet, src_id)
            return
        self.network.broadcast(src_id, packet)

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        if self._already_seen(node.id, packet.uid):
            return
        fwd = self._pool.clone_for_forwarding(packet)
        fwd.path.append(node.id)
        if packet.dst is None:
            # Broadcast payloads are consumed everywhere and forwarded on.
            self._deliver_up(node, fwd, from_id)
        elif packet.dst == node.id:
            self._deliver_up(node, fwd, from_id)
            return
        if fwd.ttl > 0:
            self.network.broadcast(node.id, fwd)
        elif packet.dst is not None:
            # This relay's copy of a unicast flood died of TTL here; it was
            # only shown to the tracer (scalars recorded, object dropped),
            # so the shell goes back to the pool.
            self._trace_drop(node.id, fwd, "ttl_expired")
            self._pool.release(fwd)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", FloodingRouter.name, FloodingRouter)
