"""Router interface shared by all protocols."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import NetworkError
from repro.net.node import NetNode, Network
from repro.net.packet import Packet

__all__ = ["Router"]

DeliveryCallback = Callable[[Packet, int], None]


class Router:
    """Base router: bookkeeping for attachment and delivery accounting.

    Subclasses override :meth:`send` (originate a packet at its source) and
    :meth:`on_receive` (handle a packet the network delivered to a node).
    """

    name = "base"

    def __init__(self, network: Network):
        self.network = network
        self.sim = network.sim
        self.attached: Dict[int, NetNode] = {}
        # Liveness transitions invalidate stale protocol state (routes
        # through dead nodes, caches a crashed node held in RAM).
        network.on_node_state(self.on_node_state)

    def on_node_state(self, node_id: int, up: bool) -> None:
        """Hook: a node's liveness changed.  Default is a no-op; protocols
        override it to purge state the transition invalidated."""

    # ------------------------------------------------------------- attachment

    def attach(self, node_id: int) -> None:
        node = self.network.node(node_id)
        if node.router is not None and node.router is not self:
            raise NetworkError(f"node {node_id} already has a router")
        node.router = self
        self.attached[node_id] = node

    def attach_all(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.attach(node_id)

    def detach(self, node_id: int) -> None:
        node = self.attached.pop(node_id, None)
        if node is not None and node.router is self:
            node.router = None

    # ---------------------------------------------------------------- routing

    def send(self, src_id: int, packet: Packet) -> None:
        """Originate ``packet`` at node ``src_id``."""
        raise NotImplementedError

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        """Handle a packet delivered by the network to ``node``."""
        raise NotImplementedError

    # ------------------------------------------------------------ layer surface
    #
    # Routers occupy the routing slot of a NetworkStack; these two methods
    # complete the Layer-facing surface (stack.RoutingLayer adapts them).

    def on_send(self, node: NetNode, packet: Packet) -> None:
        """Layer-interface entry: originate ``packet`` at ``node``."""
        self.send(node.id, packet)

    def on_timer(self, now: float) -> None:
        """Periodic maintenance hook (DTN contact sweeps, route expiry).

        Default is a no-op; protocols with periodic work override it and
        own their scheduling cadence.
        """

    # ------------------------------------------------------------ accounting

    def _tracer(self):
        """The simulator's packet tracer, or ``None`` when tracing is off."""
        tracer = self.sim.packet_tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _deliver_up(self, node: NetNode, packet: Packet, from_id: int) -> None:
        """Hand the packet to the application and record delivery metrics."""
        self.sim.metrics.incr(f"route.{self.name}.delivered")
        self.sim.metrics.sample(
            f"route.{self.name}.latency_s", self.sim.now - packet.created_at
        )
        self.sim.metrics.sample(f"route.{self.name}.hops", packet.hops)
        tracer = self._tracer()
        if tracer is not None:
            tracer.on_deliver(node.id, packet)
        node.deliver_local(packet, from_id)

    def _stamp_origin(self, src_id: int, packet: Packet) -> None:
        """Originate ``packet`` at ``src_id``: timestamp it, seed its path
        with the origin (so ``Packet.hops`` counts transmissions uniformly
        across routers), and open its trace context when tracing is on.

        Every ``send()`` implementation — including control packets like
        AODV RREQ/RREP — must come through here rather than stamping by
        hand; it is the single place the path/trace origin contract lives.
        """
        packet.created_at = self.sim.now
        if not packet.path:
            packet.path.append(src_id)
        tracer = self._tracer()
        if tracer is not None:
            tracer.stamp_origin(packet)

    def _trace_drop(self, node_id: int, packet: Packet, reason: str) -> None:
        """Record a routing-layer abandonment (TTL expiry, void, ...)."""
        tracer = self._tracer()
        if tracer is not None:
            tracer.on_route_drop(node_id, packet, reason)

    def send_reliable(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        *,
        retries: int = 3,
        on_result: Optional[Callable[[bool], None]] = None,
    ) -> None:
        """Unicast with link-layer retransmissions (ARQ), like 802.11.

        Retries draw fresh fading/backoff each attempt, so a marginal link
        with per-try probability p succeeds with 1-(1-p)^(retries+1).
        """

        def attempt(tries_left: int) -> None:
            def result(ok: bool) -> None:
                if ok or tries_left <= 0:
                    if on_result:
                        on_result(ok)
                else:
                    tracer = self._tracer()
                    if tracer is not None:
                        tracer.on_retransmit(
                            packet,
                            sender_id,
                            attempt=retries - tries_left + 1,
                            layer="link",
                        )
                    attempt(tries_left - 1)

            self.network.send(sender_id, receiver_id, packet, on_result=result)

        attempt(retries)
