"""AODV-style reactive routing.

On-demand route discovery: a source with no route floods a route request
(RREQ); the destination (or a node with a fresh cached route) unicasts a
route reply (RREP) back along the reverse path; data then follows the
discovered next-hops.  Failed unicasts trigger rediscovery.  Sequence
numbers prevent stale/looping routes, as in the RFC 3561 design, though
timers and gratuitous replies are simplified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.node import NetNode, Network
from repro.net.packet import Packet, PacketKind
from repro.net.routing.base import Router

__all__ = ["AodvRouter"]


@dataclass
class RouteEntry:
    next_hop: int
    hop_count: int
    dst_seq: int
    expires_at: float


@dataclass
class _RreqInfo:
    """Payload carried by RREQ/RREP control packets."""

    origin: int
    target: int
    origin_seq: int
    target_seq: int
    hop_count: int = 0


class AodvRouter(Router):
    name = "aodv"

    def __init__(
        self,
        network: Network,
        *,
        route_lifetime_s: float = 60.0,
        discovery_timeout_s: float = 2.0,
        max_discovery_retries: int = 2,
        rreq_ttl: int = 16,
        destination_only: bool = False,
    ):
        super().__init__(network)
        self.route_lifetime_s = route_lifetime_s
        self.discovery_timeout_s = discovery_timeout_s
        self.max_discovery_retries = max_discovery_retries
        self.rreq_ttl = rreq_ttl
        #: RFC 3561's 'D' flag: only the destination may answer an RREQ.
        #: Intermediate cache replies compare the cached sequence against
        #: the originator's *knowledge* of the destination sequence — a
        #: read of the router-global ``_seq`` map that has no distributed
        #: equivalent, so sharded execution requires this flag.
        self.destination_only = destination_only
        self._tables: Dict[int, Dict[int, RouteEntry]] = {}
        self._seq: Dict[int, int] = {}
        self._rreq_id = 0
        self._seen_rreq: Dict[int, Set[Tuple[int, int]]] = {}
        self._pending: Dict[Tuple[int, int], List[Packet]] = {}
        self._discovery_tries: Dict[Tuple[int, int], int] = {}

    # --------------------------------------------------------------- plumbing

    def on_node_state(self, node_id: int, up: bool) -> None:
        """Purge state a crash invalidated: the dead node's own table and
        RREQ cache (RAM is lost), every route through or to it, and any
        packets it had queued awaiting discovery."""
        if up:
            return
        self._tables.pop(node_id, None)
        self._seen_rreq.pop(node_id, None)
        purged = 0
        stale_dsts = {node_id}
        for table in self._tables.values():
            stale = [
                dst
                for dst, entry in table.items()
                if entry.next_hop == node_id or dst == node_id
            ]
            for dst in stale:
                del table[dst]
            stale_dsts.update(stale)
            purged += len(stale)
        # Sequence-number invalidation (the RERR analogue): destinations
        # whose routes broke get a bumped sequence, so surviving stale
        # cached routes elsewhere cannot answer rediscovery RREQs and seed
        # routing loops toward the dead hop.
        for dst in stale_dsts:
            self._seq[dst] = self._seq.get(dst, 0) + 1
        if purged:
            self.sim.metrics.incr(f"route.{self.name}.routes_purged", purged)
        for key in [k for k in self._pending if k[0] == node_id]:
            dropped = self._pending.pop(key, [])
            self._discovery_tries.pop(key, None)
            if dropped:
                self.sim.metrics.incr(f"route.{self.name}.dropped", len(dropped))
                for packet in dropped:
                    self._trace_drop(node_id, packet, "node_down")

    def _table(self, node_id: int) -> Dict[int, RouteEntry]:
        return self._tables.setdefault(node_id, {})

    def _next_seq(self, node_id: int) -> int:
        self._seq[node_id] = self._seq.get(node_id, 0) + 1
        return self._seq[node_id]

    def _route(self, node_id: int, dst: int) -> Optional[RouteEntry]:
        entry = self._table(node_id).get(dst)
        if entry is None or entry.expires_at < self.sim.now:
            return None
        if not self.network.node(entry.next_hop).up:
            return None
        return entry

    def _learn(
        self, node_id: int, dst: int, next_hop: int, hops: int, dst_seq: int
    ) -> None:
        table = self._table(node_id)
        current = table.get(dst)
        fresher = current is None or dst_seq > current.dst_seq
        shorter = (
            current is not None
            and dst_seq == current.dst_seq
            and hops < current.hop_count
        )
        if fresher or shorter:
            table[dst] = RouteEntry(
                next_hop=next_hop,
                hop_count=hops,
                dst_seq=dst_seq,
                expires_at=self.sim.now + self.route_lifetime_s,
            )

    # ------------------------------------------------------------------- send

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        node = self.network.node(src_id)
        if packet.dst is None:
            self.network.broadcast(src_id, packet)
            return
        if packet.dst == src_id:
            self._deliver_up(node, packet, src_id)
            return
        self._dispatch(src_id, packet)

    def _dispatch(self, node_id: int, packet: Packet) -> None:
        assert packet.dst is not None
        entry = self._route(node_id, packet.dst)
        if entry is None:
            key = (node_id, packet.dst)
            queue = self._pending.setdefault(key, [])
            queue.append(packet)
            if len(queue) == 1:
                self._discovery_tries[key] = 0
                self._start_discovery(node_id, packet.dst)
            return
        self._forward_via(node_id, entry.next_hop, packet)

    def _forward_via(self, node_id: int, next_hop: int, packet: Packet) -> None:
        def result(ok: bool) -> None:
            if ok:
                return
            # Link break: purge the route and retry via rediscovery.
            self._table(node_id).pop(packet.dst, None)
            self.sim.metrics.incr(f"route.{self.name}.link_break")
            if packet.ttl > 0:
                packet.ttl -= 1
                self._dispatch(node_id, packet)
            else:
                self.sim.metrics.incr(f"route.{self.name}.dropped")
                self._trace_drop(node_id, packet, "ttl_expired")

        self.send_reliable(node_id, next_hop, packet, on_result=result)

    # -------------------------------------------------------------- discovery

    def _start_discovery(self, origin: int, target: int) -> None:
        self._rreq_id += 1
        rreq_key = (origin, self._rreq_id)
        info = _RreqInfo(
            origin=origin,
            target=target,
            origin_seq=self._next_seq(origin),
            target_seq=self._seq.get(target, 0),
        )
        rreq = Packet(
            src=origin,
            dst=None,
            kind=PacketKind.RREQ,
            payload=info,
            size_bits=256,
            ttl=self.rreq_ttl,
            headers={"rreq_key": rreq_key},
        )
        self._stamp_origin(origin, rreq)
        self._seen_rreq.setdefault(origin, set()).add(rreq_key)
        self.sim.metrics.incr(f"route.{self.name}.rreq")
        self.network.broadcast(origin, rreq)
        self.sim.call_in(
            self.discovery_timeout_s, lambda: self._discovery_check(origin, target)
        )

    def _discovery_check(self, origin: int, target: int) -> None:
        key = (origin, target)
        queue = self._pending.get(key)
        if not queue:
            return
        if self._route(origin, target) is not None:
            self._flush_pending(origin, target)
            return
        tries = self._discovery_tries.get(key, 0) + 1
        self._discovery_tries[key] = tries
        if tries <= self.max_discovery_retries:
            self._start_discovery(origin, target)
        else:
            self.sim.metrics.incr(
                f"route.{self.name}.discovery_failed", len(queue)
            )
            self._pending.pop(key, None)
            for packet in queue:
                self._trace_drop(origin, packet, "discovery_failed")

    def _flush_pending(self, origin: int, target: int) -> None:
        key = (origin, target)
        queue = self._pending.pop(key, [])
        for packet in queue:
            self._dispatch(origin, packet)

    # --------------------------------------------------------------- receive

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        if packet.kind is PacketKind.RREQ:
            self._handle_rreq(node, packet, from_id)
            return
        if packet.kind is PacketKind.RREP:
            self._handle_rrep(node, packet, from_id)
            return
        fwd = packet.copy_for_forwarding()
        fwd.path.append(node.id)
        if packet.dst is None or packet.dst == node.id:
            self._deliver_up(node, fwd, from_id)
            return
        if fwd.ttl <= 0:
            self.sim.metrics.incr(f"route.{self.name}.ttl_expired")
            self._trace_drop(node.id, fwd, "ttl_expired")
            return
        self._dispatch(node.id, fwd)

    def _handle_rreq(self, node: NetNode, packet: Packet, from_id: int) -> None:
        info: _RreqInfo = packet.payload
        rreq_key = packet.headers["rreq_key"]
        seen = self._seen_rreq.setdefault(node.id, set())
        if rreq_key in seen:
            return
        seen.add(rreq_key)
        hops = packet.hops + 1
        # Reverse route toward the originator.
        self._learn(node.id, info.origin, from_id, hops, info.origin_seq)
        if node.id == info.target:
            self._send_rrep(node.id, info, hops=0, rreq=packet)
            return
        cached = None if self.destination_only else self._route(node.id, info.target)
        if cached is not None and cached.dst_seq >= info.target_seq:
            # Intermediate reply from cache.
            self._send_rrep(
                node.id,
                info,
                hops=cached.hop_count,
                cached_seq=cached.dst_seq,
                rreq=packet,
            )
            return
        if packet.ttl > 0:
            fwd = packet.copy_for_forwarding()
            fwd.path.append(node.id)
            self.network.broadcast(node.id, fwd)

    def _send_rrep(
        self,
        replier: int,
        info: _RreqInfo,
        *,
        hops: int,
        cached_seq: Optional[int] = None,
        rreq: Optional[Packet] = None,
    ) -> None:
        seq = cached_seq if cached_seq is not None else self._next_seq(info.target)
        rrep = Packet(
            src=replier,
            dst=info.origin,
            kind=PacketKind.RREP,
            payload=_RreqInfo(
                origin=info.origin,
                target=info.target,
                origin_seq=info.origin_seq,
                target_seq=seq,
                hop_count=hops,
            ),
            size_bits=256,
            ttl=self.rreq_ttl,
        )
        tracer = self._tracer()
        if tracer is not None and rreq is not None:
            # The RREP is causally spawned by the RREQ that reached us.
            tracer.inherit(rreq, rrep)
        self._stamp_origin(replier, rrep)
        self.sim.metrics.incr(f"route.{self.name}.rrep")
        entry = self._route(replier, info.origin)
        if entry is not None:
            self.send_reliable(replier, entry.next_hop, rrep)

    def _handle_rrep(self, node: NetNode, packet: Packet, from_id: int) -> None:
        info: _RreqInfo = packet.payload
        hops_to_target = info.hop_count + packet.hops + 1
        self._learn(node.id, info.target, from_id, hops_to_target, info.target_seq)
        if node.id == info.origin:
            self._flush_pending(node.id, info.target)
            return
        entry = self._route(node.id, info.origin)
        if entry is not None:
            fwd = packet.copy_for_forwarding()
            fwd.path.append(node.id)
            if fwd.ttl > 0:
                self.send_reliable(node.id, entry.next_hop, fwd)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", AodvRouter.name, AodvRouter)
