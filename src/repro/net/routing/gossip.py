"""Probabilistic (gossip) flooding.

Identical to flooding except each relay rebroadcasts with probability ``p``.
Classic result: above a percolation threshold in ``p``, gossip reaches
almost everyone flooding reaches at a fraction of the transmissions — the
right trade for energy-disadvantaged IoBT assets.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import ConfigurationError
from repro.net.node import NetNode, Network
from repro.net.packet import Packet
from repro.net.routing.base import Router

__all__ = ["GossipRouter"]


class GossipRouter(Router):
    name = "gossip"

    def __init__(self, network: Network, *, forward_probability: float = 0.7):
        super().__init__(network)
        if not (0.0 < forward_probability <= 1.0):
            raise ConfigurationError(
                f"forward_probability must be in (0, 1], got {forward_probability}"
            )
        self.forward_probability = forward_probability
        self._seen: Dict[int, Set[int]] = {}
        self._rng = network.sim.rng.get("gossip")

    def on_node_state(self, node_id: int, up: bool) -> None:
        # A crash loses the in-RAM duplicate cache; the restarted node will
        # treat still-circulating packets as new (and may re-forward them).
        if not up:
            self._seen.pop(node_id, None)

    def _already_seen(self, node_id: int, uid: int) -> bool:
        seen = self._seen.setdefault(node_id, set())
        if uid in seen:
            return True
        seen.add(uid)
        return False

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        self._already_seen(src_id, packet.uid)
        if packet.dst == src_id:
            # Self-addressed: deliver locally like every other router
            # (hops == 0, path == [src]) instead of gossiping a packet
            # nobody else will accept.
            self._deliver_up(self.network.node(src_id), packet, src_id)
            return
        # The source always transmits; gossip applies to relays.
        self.network.broadcast(src_id, packet)

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        if self._already_seen(node.id, packet.uid):
            return
        fwd = packet.copy_for_forwarding()
        fwd.path.append(node.id)
        if packet.dst is None or packet.dst == node.id:
            self._deliver_up(node, fwd, from_id)
            if packet.dst == node.id:
                return
        if fwd.ttl > 0 and self._rng.random() < self.forward_probability:
            self.network.broadcast(node.id, fwd)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", GossipRouter.name, GossipRouter)
