"""Greedy geographic forwarding.

Each hop forwards to the neighbor geographically closest to the destination,
provided it is strictly closer than the current node (otherwise the packet
is at a local minimum — a "void" — and is dropped after a bounded number of
random detours).  Position knowledge comes from a pluggable location
service; the default reads true positions, modeling a GPS-equipped force.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.node import NetNode, Network
from repro.net.packet import Packet
from repro.net.routing.base import Router
from repro.util.geometry import Point, distance

__all__ = ["GreedyGeoRouter"]

LocationService = Callable[[int], Optional[Point]]


class GreedyGeoRouter(Router):
    name = "geo"

    def __init__(
        self,
        network: Network,
        *,
        location_service: Optional[LocationService] = None,
        max_detours: int = 2,
        retries: int = 2,
    ):
        super().__init__(network)
        self._locate = location_service or self._true_position
        self.max_detours = max_detours
        self.retries = retries
        self._rng = network.sim.rng.get("geo")

    def _true_position(self, node_id: int) -> Optional[Point]:
        if node_id in self.network.nodes:
            return self.network.node(node_id).position
        return None

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        node = self.network.node(src_id)
        if packet.dst == src_id:
            self._deliver_up(node, packet, src_id)
            return
        self._forward(node, packet)

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        fwd = packet.copy_for_forwarding()
        fwd.path.append(node.id)
        if packet.dst == node.id or packet.dst is None:
            self._deliver_up(node, fwd, from_id)
            return
        if fwd.ttl <= 0:
            self.sim.metrics.incr(f"route.{self.name}.ttl_expired")
            self._trace_drop(node.id, fwd, "ttl_expired")
            return
        self._forward(node, fwd)

    def _forward(self, node: NetNode, packet: Packet, attempt: int = 0) -> None:
        dst_pos = self._locate(packet.dst) if packet.dst is not None else None
        if dst_pos is None:
            self.sim.metrics.incr(f"route.{self.name}.no_location")
            self._trace_drop(node.id, packet, "no_location")
            return
        here = distance(node.position, dst_pos)
        best_id: Optional[int] = None
        best_dist = here
        neighbor_ids = self.network.neighbors(node.id)
        for nid in neighbor_ids:
            if nid in packet.path:
                continue
            d = distance(self.network.node(nid).position, dst_pos)
            if d < best_dist:
                best_dist = d
                best_id = nid
        detours = packet.headers.get("geo_detours", 0)
        if best_id is None:
            # Local minimum: take a bounded random detour, then give up.
            candidates = [n for n in neighbor_ids if n not in packet.path]
            if detours >= self.max_detours or not candidates:
                self.sim.metrics.incr(f"route.{self.name}.void_drop")
                self._trace_drop(node.id, packet, "void_drop")
                return
            best_id = candidates[int(self._rng.integers(0, len(candidates)))]
            packet.headers["geo_detours"] = detours + 1

        def result(ok: bool) -> None:
            if not ok and attempt < self.retries:
                tracer = self._tracer()
                if tracer is not None:
                    tracer.on_retransmit(
                        packet, node.id, attempt=attempt + 1, layer="link"
                    )
                self._forward(node, packet, attempt + 1)
            elif not ok:
                self.sim.metrics.incr(f"route.{self.name}.link_drop")
                self._trace_drop(node.id, packet, "link_drop")

        self.network.send(node.id, best_id, packet, on_result=result)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", GreedyGeoRouter.name, GreedyGeoRouter)
