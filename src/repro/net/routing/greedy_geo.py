"""Greedy geographic forwarding.

Each hop forwards to the neighbor geographically closest to the destination,
provided it is strictly closer than the current node (otherwise the packet
is at a local minimum — a "void" — and is dropped after a bounded number of
random detours).  Position knowledge comes from a pluggable location
service; the default reads true positions, modeling a GPS-equipped force.
"""

from __future__ import annotations

from math import hypot
from typing import Callable, Dict, Optional, Tuple

from repro.net.node import NetNode, Network
from repro.net.packet import Packet
from repro.net.routing.base import Router
from repro.util.geometry import Point, distance

__all__ = ["GreedyGeoRouter"]

LocationService = Callable[[int], Optional[Point]]


class GreedyGeoRouter(Router):
    name = "geo"

    def __init__(
        self,
        network: Network,
        *,
        location_service: Optional[LocationService] = None,
        max_detours: int = 2,
        retries: int = 2,
    ):
        super().__init__(network)
        self._locate = location_service or self._true_position
        # The memo below answers from cached geometry, which is only the
        # truth when positions come from the true-position service.
        self._memo_ok = location_service is None
        self.max_detours = max_detours
        self.retries = retries
        self._rng = network.sim.rng.get("geo")
        # (node_id, dst_id) -> (best_nid, best_d, here_d): the *unfiltered*
        # greedy argmin over the node's live neighborhood plus the node's
        # own distance to the destination.  Valid only while topology and
        # liveness stand still (see _forward); only used with the
        # true-position location service, whose answers are exactly the
        # cached geometry.
        self._next_hop: Dict[
            Tuple[int, Optional[int]], Tuple[Optional[int], float, float]
        ] = {}
        self._next_hop_sig: Tuple[int, int] = (-1, -1)

    def _true_position(self, node_id: int) -> Optional[Point]:
        if node_id in self.network.nodes:
            return self.network.node(node_id).position
        return None

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        node = self.network.node(src_id)
        if packet.dst == src_id:
            self._deliver_up(node, packet, src_id)
            return
        self._forward(node, packet)

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        fwd = packet.copy_for_forwarding()
        fwd.path.append(node.id)
        if packet.dst == node.id or packet.dst is None:
            self._deliver_up(node, fwd, from_id)
            return
        if fwd.ttl <= 0:
            self.sim.metrics.incr(f"route.{self.name}.ttl_expired")
            self._trace_drop(node.id, fwd, "ttl_expired")
            return
        self._forward(node, fwd)

    def _forward(self, node: NetNode, packet: Packet, attempt: int = 0) -> None:
        dst_pos = self._locate(packet.dst) if packet.dst is not None else None
        if dst_pos is None:
            self.sim.metrics.incr(f"route.{self.name}.no_location")
            self._trace_drop(node.id, packet, "no_location")
            return
        network = self.network
        best_id: Optional[int] = None
        cacheable = self._memo_ok
        if cacheable:
            sig = (network.topology_version, network.liveness_version)
            if sig != self._next_hop_sig:
                self._next_hop.clear()
                self._next_hop_sig = sig
            cached = self._next_hop.get((node.id, packet.dst))
            if cached is not None:
                cached_id, cached_d, here = cached
                # The unfiltered argmin is exactly what the filtered scan
                # below would pick whenever it is admissible: removing
                # path-visited candidates can't surface an earlier or
                # smaller minimum, and ties resolve to the first neighbor
                # in iteration order either way.
                if cached_id is not None and cached_d < here and cached_id not in packet.path:
                    self._dispatch(node, packet, cached_id, attempt)
                    return
            else:
                here = distance(node.position, dst_pos)
        else:
            here = distance(node.position, dst_pos)
        best_dist = here
        free_id: Optional[int] = None  # unfiltered argmin, for the memo
        free_dist = here
        neighbor_ids = network.neighbors(node.id)
        nodes = network.nodes
        dx, dy = dst_pos.x, dst_pos.y
        path = packet.path
        for nid in neighbor_ids:
            pos = nodes[nid].position
            d = hypot(pos.x - dx, pos.y - dy)
            if d < free_dist:
                free_dist = d
                free_id = nid
            if d < best_dist and nid not in path:
                best_dist = d
                best_id = nid
        if cacheable:
            self._next_hop[(node.id, packet.dst)] = (free_id, free_dist, here)
        detours = packet.headers.get("geo_detours", 0)
        if best_id is None:
            # Local minimum: take a bounded random detour, then give up.
            candidates = [n for n in neighbor_ids if n not in packet.path]
            if detours >= self.max_detours or not candidates:
                self.sim.metrics.incr(f"route.{self.name}.void_drop")
                self._trace_drop(node.id, packet, "void_drop")
                return
            best_id = candidates[int(self._rng.integers(0, len(candidates)))]
            packet.headers["geo_detours"] = detours + 1
        self._dispatch(node, packet, best_id, attempt)

    def _dispatch(
        self, node: NetNode, packet: Packet, next_id: int, attempt: int
    ) -> None:
        def result(ok: bool) -> None:
            if not ok and attempt < self.retries:
                tracer = self._tracer()
                if tracer is not None:
                    tracer.on_retransmit(
                        packet, node.id, attempt=attempt + 1, layer="link"
                    )
                self._forward(node, packet, attempt + 1)
            elif not ok:
                self.sim.metrics.incr(f"route.{self.name}.link_drop")
                self._trace_drop(node.id, packet, "link_drop")

        self.network.send(node.id, next_id, packet, on_result=result)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", GreedyGeoRouter.name, GreedyGeoRouter)
