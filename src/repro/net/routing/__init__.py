"""Routing and dissemination protocols.

All protocols implement the :class:`Router` interface: they are attached to
a set of nodes, originate packets with :meth:`Router.send`, and receive
every packet the network delivers to an attached node.  Delivery to the
application goes through ``node.deliver_local``.

Protocols:

* :class:`~repro.net.routing.flooding.FloodingRouter` — duplicate-suppressed
  blind flooding (the dissemination baseline).
* :class:`~repro.net.routing.gossip.GossipRouter` — probabilistic flooding.
* :class:`~repro.net.routing.greedy_geo.GreedyGeoRouter` — greedy geographic
  forwarding with a location service.
* :class:`~repro.net.routing.aodv.AodvRouter` — on-demand distance-vector
  route discovery with caching.
* :class:`~repro.net.routing.dtn.EpidemicRouter` /
  :class:`~repro.net.routing.dtn.SprayAndWaitRouter` — store-carry-forward
  for partitioned (DTN) regimes.
"""

from repro.net.routing.base import Router
from repro.net.routing.flooding import FloodingRouter
from repro.net.routing.gossip import GossipRouter
from repro.net.routing.greedy_geo import GreedyGeoRouter
from repro.net.routing.aodv import AodvRouter
from repro.net.routing.dtn import EpidemicRouter, SprayAndWaitRouter

__all__ = [
    "Router",
    "FloodingRouter",
    "GossipRouter",
    "GreedyGeoRouter",
    "AodvRouter",
    "EpidemicRouter",
    "SprayAndWaitRouter",
]
