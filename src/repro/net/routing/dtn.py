"""Delay-tolerant (store-carry-forward) routing.

When the battlefield network is partitioned — the normal case for
forward-deployed IoBTs — end-to-end paths rarely exist and packets must ride
node mobility.  Two classic protocols:

* :class:`EpidemicRouter` — replicate every bundle at every contact;
  delivery-optimal, storage/energy-maximal.
* :class:`SprayAndWaitRouter` — binary spray of ``L`` copies, then direct
  delivery only; near-epidemic delivery at a fixed replication budget.

Contacts are detected by a periodic beacon sweep over current neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.errors import ConfigurationError
from repro.net.node import NetNode, Network
from repro.net.packet import Packet, PacketKind
from repro.net.routing.base import Router

__all__ = ["EpidemicRouter", "SprayAndWaitRouter"]


@dataclass
class _Bundle:
    packet: Packet
    copies: int = 1  # spray-and-wait budget held by this custodian
    expires_at: float = float("inf")


class _StoreCarryForwardRouter(Router):
    """Shared machinery: per-node bundle stores and contact sweeps."""

    def __init__(
        self,
        network: Network,
        *,
        contact_period_s: float = 5.0,
        bundle_lifetime_s: float = 3600.0,
        store_capacity: int = 512,
    ):
        super().__init__(network)
        if contact_period_s <= 0:
            raise ConfigurationError("contact_period_s must be positive")
        self.contact_period_s = contact_period_s
        self.bundle_lifetime_s = bundle_lifetime_s
        self.store_capacity = store_capacity
        self._stores: Dict[int, Dict[int, _Bundle]] = {}
        self._delivered: Dict[int, Set[int]] = {}
        self._started = False

    def start(self) -> None:
        """Begin periodic contact sweeps (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.every(
                self.contact_period_s, lambda: self.on_timer(self.sim.now)
            )

    def on_timer(self, now: float) -> None:
        """Contact sweeps run through the stack's timer surface."""
        self._sweep()

    def on_node_state(self, node_id: int, up: bool) -> None:
        # A crash loses custody of every bundle the node was carrying
        # (volatile store); the delivered-ledger is kept, modelling
        # application-level dedup on stable storage.
        if not up:
            lost = len(self._stores.pop(node_id, ()) or ())
            if lost:
                self.sim.metrics.incr(f"route.{self.name}.custody_lost", lost)

    def _store(self, node_id: int) -> Dict[int, _Bundle]:
        return self._stores.setdefault(node_id, {})

    def _expire(self, node_id: int) -> None:
        store = self._store(node_id)
        dead = [uid for uid, b in store.items() if b.expires_at < self.sim.now]
        for uid in dead:
            bundle = store.pop(uid)
            self.sim.metrics.incr(f"route.{self.name}.expired")
            self._trace_drop(node_id, bundle.packet, "expired")

    def _admit(self, node_id: int, bundle: _Bundle) -> bool:
        store = self._store(node_id)
        if bundle.packet.uid in store:
            return False
        if len(store) >= self.store_capacity:
            # Drop-oldest: evict the bundle closest to expiry.
            victim = min(store.values(), key=lambda b: b.expires_at)
            del store[victim.packet.uid]
            self.sim.metrics.incr(f"route.{self.name}.evicted")
            self._trace_drop(node_id, victim.packet, "evicted")
        store[bundle.packet.uid] = bundle
        tracer = self._tracer()
        if tracer is not None:
            tracer.on_custody(node_id, bundle.packet, copies=bundle.copies)
        return True

    def send(self, src_id: int, packet: Packet) -> None:
        self._stamp_origin(src_id, packet)
        node = self.network.node(src_id)
        if packet.dst == src_id:
            self._deliver_up(node, packet, src_id)
            return
        bundle = _Bundle(
            packet=packet,
            copies=self._initial_copies(),
            expires_at=self.sim.now + self.bundle_lifetime_s,
        )
        self._admit(src_id, bundle)
        self.start()

    def on_receive(self, node: NetNode, packet: Packet, from_id: int) -> None:
        if packet.kind is PacketKind.DTN_SUMMARY:
            return  # summaries are consumed inside the sweep model
        incoming = packet.copy_for_forwarding()
        incoming.path.append(node.id)
        if incoming.dst == node.id:
            already = self._delivered.setdefault(node.id, set())
            if incoming.uid not in already:
                already.add(incoming.uid)
                self._deliver_up(node, incoming, from_id)
            return
        bundle = _Bundle(
            packet=incoming,
            copies=int(packet.headers.get("sw_copies", 1)),
            expires_at=self.sim.now + self.bundle_lifetime_s,
        )
        self._admit(node.id, bundle)

    # --------------------------------------------------------------- contacts

    def _sweep(self) -> None:
        for node_id in list(self.attached):
            node = self.network.nodes.get(node_id)
            if node is None or not node.up:
                continue
            self._expire(node_id)
            if not self._store(node_id):
                continue
            for neighbor_id in self.network.neighbors(node_id):
                if neighbor_id in self.attached:
                    self._contact(node_id, neighbor_id)

    def _contact(self, a: int, b: int) -> None:
        raise NotImplementedError

    def _initial_copies(self) -> int:
        return 1

    def _transfer(
        self,
        carrier: int,
        peer: int,
        bundle: _Bundle,
        copies: int,
        on_result=None,
    ) -> None:
        """Transmit one bundle replica from carrier to peer over the radio."""
        pkt = bundle.packet.copy_for_forwarding()
        pkt.ttl = bundle.packet.ttl  # DTN replicas do not burn TTL
        pkt.headers["sw_copies"] = copies
        self.network.send(carrier, peer, pkt, on_result=on_result)


class EpidemicRouter(_StoreCarryForwardRouter):
    """Replicate every stored bundle to every encountered peer."""

    name = "epidemic"

    def _contact(self, a: int, b: int) -> None:
        peer_store = self._store(b)
        peer_delivered = self._delivered.setdefault(b, set())
        for uid, bundle in list(self._store(a).items()):
            if uid in peer_store or uid in peer_delivered:
                continue
            self._transfer(a, b, bundle, copies=1)


class SprayAndWaitRouter(_StoreCarryForwardRouter):
    """Binary spray-and-wait with a configurable copy budget ``L``."""

    name = "spray_wait"

    def __init__(self, network: Network, *, copies: int = 8, **kwargs):
        super().__init__(network, **kwargs)
        if copies < 1:
            raise ConfigurationError("copies must be >= 1")
        self.copies = copies

    def _initial_copies(self) -> int:
        return self.copies

    def _contact(self, a: int, b: int) -> None:
        peer_store = self._store(b)
        peer_delivered = self._delivered.setdefault(b, set())
        for uid, bundle in list(self._store(a).items()):
            if uid in peer_store or uid in peer_delivered:
                continue
            if bundle.packet.dst == b:
                # Direct delivery to the destination, regardless of budget.
                self._transfer(a, b, bundle, copies=1)
                continue
            if bundle.copies > 1:
                # Binary spray: hand over half the copy budget — but only
                # commit the decrement once the radio transfer actually
                # succeeded, otherwise a lossy contact would leak copies
                # and strand the bundle below its replication budget.
                give = bundle.copies // 2

                def settle(ok: bool, bundle=bundle, give=give) -> None:
                    if ok:
                        bundle.copies -= give

                self._transfer(a, b, bundle, copies=give, on_result=settle)


# Registry hookup: addressable by name in stack compositions.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

register("router", EpidemicRouter.name, EpidemicRouter)
register("router", SprayAndWaitRouter.name, SprayAndWaitRouter)
