"""Wireless battlefield network substrate.

Provides the physical/link layers (log-distance channel with shadowing,
jamming, a contention MAC), node and network containers, mobility models,
topology snapshots, and a family of routing/dissemination protocols under
:mod:`repro.net.routing`.
"""

from repro.net.packet import Packet, PacketKind
from repro.net.channel import Channel, Jammer
from repro.net.node import NetNode, Network
from repro.net.mobility import (
    MobilityModel,
    StaticMobility,
    RandomWaypoint,
    ManhattanGrid,
    GroupMobility,
    MobilityManager,
)
from repro.net.topology import TopologySnapshot, build_topology
from repro.net.transport import (
    MessageService,
    DeliveryReceipt,
    MessageFate,
    ReliableMessageService,
)

__all__ = [
    "Packet",
    "PacketKind",
    "Channel",
    "Jammer",
    "NetNode",
    "Network",
    "MobilityModel",
    "StaticMobility",
    "RandomWaypoint",
    "ManhattanGrid",
    "GroupMobility",
    "MobilityManager",
    "TopologySnapshot",
    "build_topology",
    "MessageService",
    "DeliveryReceipt",
    "MessageFate",
    "ReliableMessageService",
]
