"""Wireless battlefield network substrate.

Provides the physical/link layers (log-distance channel with shadowing,
jamming, contention and ideal MACs), node and network containers, mobility
models, topology snapshots, and a family of routing/dissemination protocols
under :mod:`repro.net.routing`.

Per-node protocol machinery is organized as an explicit layered pipeline
(:mod:`repro.net.stack`: PHY/channel -> MAC -> queue -> routing ->
transport -> app) behind a uniform :class:`~repro.net.stack.Layer`
interface, and every swappable component (channels, MACs, routers, mobility
models, transports) is addressable by string name through
:mod:`repro.net.registry`, so scenario builders and campaign sweeps can
compose stacks declaratively (``router="aodv"``, ``mac="csma"``).
"""

from repro.net.packet import Packet, PacketKind
from repro.net.channel import Channel, Jammer
from repro.net.node import NetNode, Network
from repro.net.mac import ContentionMac, IdealMac, MacAccess
from repro.net.stack import (
    Layer,
    LayerBase,
    NetworkStack,
    RouterPort,
    StackContext,
    TransportPort,
)
from repro.net.registry import (
    ComponentRegistry,
    ComposedStack,
    StackSpec,
    compose,
)
from repro.net.mobility import (
    MobilityModel,
    StaticMobility,
    RandomWaypoint,
    ManhattanGrid,
    GroupMobility,
    MobilityManager,
)
from repro.net.topology import TopologySnapshot, build_topology
from repro.net.transport import (
    MessageService,
    DeliveryReceipt,
    MessageFate,
    ReliableMessageService,
)

__all__ = [
    "Packet",
    "PacketKind",
    "Channel",
    "Jammer",
    "NetNode",
    "Network",
    "ContentionMac",
    "IdealMac",
    "MacAccess",
    "Layer",
    "LayerBase",
    "NetworkStack",
    "RouterPort",
    "StackContext",
    "TransportPort",
    "ComponentRegistry",
    "ComposedStack",
    "StackSpec",
    "compose",
    "MobilityModel",
    "StaticMobility",
    "RandomWaypoint",
    "ManhattanGrid",
    "GroupMobility",
    "MobilityManager",
    "TopologySnapshot",
    "build_topology",
    "MessageService",
    "DeliveryReceipt",
    "MessageFate",
    "ReliableMessageService",
]
