"""Network nodes and the network container.

:class:`NetNode` is the communication endpoint (radio parameters, liveness,
handler/router hooks).  :class:`Network` owns the channel, a spatial index
for neighbor queries (so 10,000-node inventories stay fast), and the
transmit path: MAC delay -> delivery draw -> scheduled reception.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.mac import ContentionMac
from repro.net.packet import Packet, PacketKind
from repro.sim.kernel import Simulator
from repro.util.geometry import Point, distance

__all__ = ["NetNode", "Network"]

SPEED_OF_LIGHT_M_S = 3.0e8

PacketHandler = Callable[["NetNode", Packet, int], None]
SendResult = Callable[[bool], None]


class NetNode:
    """A radio-equipped network endpoint.

    The node is deliberately thin: protocol behavior lives in routers
    (:mod:`repro.net.routing`) and in the asset layer (:mod:`repro.things`).
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        *,
        tx_power_dbm: float = 20.0,
        bitrate_bps: float = 1.0e6,
    ):
        self.id = node_id
        self.position = position
        self.tx_power_dbm = tx_power_dbm
        self.bitrate_bps = bitrate_bps
        self.up = True
        self.router: Optional[Any] = None
        self.handlers: Dict[PacketKind, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        # Optional hook charged (bits_tx, bits_rx) for energy accounting.
        self.energy_hook: Optional[Callable[[float, float], None]] = None
        # Count of in-flight transmissions (for MAC contention estimates).
        self.busy_tx = 0

    def on(self, kind: PacketKind, handler: PacketHandler) -> None:
        """Register a handler for packets of ``kind`` addressed to this node."""
        self.handlers[kind] = handler

    def deliver_local(self, packet: Packet, from_id: int) -> None:
        """Hand a received packet to the registered application handler."""
        handler = self.handlers.get(packet.kind, self.default_handler)
        if handler is not None:
            handler(self, packet, from_id)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"NetNode({self.id}, {state}, pos=({self.position.x:.0f},{self.position.y:.0f}))"


class Network:
    """Container for nodes + channel; implements the transmit path.

    Neighbor queries use a uniform grid sized to the maximum communication
    range, so they cost O(occupants of 9 cells) instead of O(N).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Optional[Channel] = None,
        mac: Optional[ContentionMac] = None,
        *,
        neighbor_margin_db: float = 3.0,
    ):
        self.sim = sim
        self.channel = channel if channel is not None else Channel(seed=sim.rng.seed)
        self.mac = mac if mac is not None else ContentionMac()
        self.neighbor_margin_db = neighbor_margin_db
        self.nodes: Dict[int, NetNode] = {}
        self._rng = sim.rng.get("net")
        self._grid: Dict[Tuple[int, int], Set[int]] = {}
        self._cell_size = 0.0
        self._grid_dirty = True
        # Listeners observing every successful delivery (promiscuous taps,
        # used by fingerprinting / side-channel discovery).
        self._sniffers: List[Callable[[Packet, int, int], None]] = []

    # ------------------------------------------------------------- membership

    def add_node(self, node: NetNode) -> NetNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        self._grid_dirty = True
        return node

    def create_node(self, node_id: int, position: Point, **kwargs: Any) -> NetNode:
        return self.add_node(NetNode(node_id, position, **kwargs))

    def remove_node(self, node_id: int) -> None:
        self.nodes.pop(node_id, None)
        self._grid_dirty = True

    def node(self, node_id: int) -> NetNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    def set_position(self, node_id: int, position: Point) -> None:
        self.node(node_id).position = position
        self._grid_dirty = True

    def fail_node(self, node_id: int) -> None:
        """Take a node down (battlefield loss, capture, battery death)."""
        self.node(node_id).up = False
        self.sim.trace.emit("net.node_down", node=node_id)

    def restore_node(self, node_id: int) -> None:
        self.node(node_id).up = True
        self.sim.trace.emit("net.node_up", node=node_id)

    def up_nodes(self) -> List[NetNode]:
        return [n for n in self.nodes.values() if n.up]

    # ------------------------------------------------------------ spatial grid

    def _max_range(self) -> float:
        if not self.nodes:
            return 1.0
        max_power = max(n.tx_power_dbm for n in self.nodes.values())
        return self.channel.comm_range_m(max_power, margin_db=-self.neighbor_margin_db)

    def _rebuild_grid(self) -> None:
        self._cell_size = max(self._max_range(), 1.0)
        self._grid = {}
        for node in self.nodes.values():
            cell = self._cell_of(node.position)
            self._grid.setdefault(cell, set()).add(node.id)
        self._grid_dirty = False

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self._cell_size)), int(math.floor(p.y / self._cell_size)))

    def invalidate_topology(self) -> None:
        """Mark the spatial index stale (bulk position updates call this)."""
        self._grid_dirty = True

    def neighbors(self, node_id: int, *, include_down: bool = False) -> List[int]:
        """Ids of nodes within (margin-extended) communication range."""
        if self._grid_dirty:
            self._rebuild_grid()
        node = self.node(node_id)
        limit = self.channel.comm_range_m(
            node.tx_power_dbm, margin_db=-self.neighbor_margin_db
        )
        cx, cy = self._cell_of(node.position)
        found: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other_id in self._grid.get((cx + dx, cy + dy), ()):
                    if other_id == node_id:
                        continue
                    other = self.nodes[other_id]
                    if not include_down and not other.up:
                        continue
                    if distance(node.position, other.position) <= limit:
                        found.append(other_id)
        found.sort()
        return found

    # --------------------------------------------------------------- transmit

    def _busy_neighbors(self, node: NetNode) -> int:
        return sum(
            self.nodes[nid].busy_tx
            for nid in self.neighbors(node.id)
            if nid in self.nodes
        )

    def transmission_delay_s(self, node: NetNode, packet: Packet) -> float:
        return packet.size_bits / max(node.bitrate_bps, 1.0)

    def send(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_result: Optional[SendResult] = None,
    ) -> None:
        """Unicast ``packet`` over one hop; outcome reported via ``on_result``.

        The outcome callback fires at the time the transmission completes
        (success) or would have completed (failure) — i.e., it models a
        link-layer ack with negligible ack airtime.
        """
        sender = self.node(sender_id)
        receiver = self.node(receiver_id)
        if not sender.up:
            if on_result:
                on_result(False)
            return
        busy = self._busy_neighbors(sender)
        delay = (
            self.mac.access_delay(busy, self._rng)
            + self.transmission_delay_s(sender, packet)
            + distance(sender.position, receiver.position) / SPEED_OF_LIGHT_M_S
        )
        p_ok = self.channel.delivery_probability(
            sender.tx_power_dbm,
            sender.position,
            receiver.position,
            sender.id,
            receiver.id,
        ) * self.mac.collision_survival(busy)
        success = bool(receiver.up) and (self._rng.random() < p_ok)
        self.sim.metrics.incr("net.tx_attempts")
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            if success and receiver.up:
                self.sim.metrics.incr("net.tx_success")
                self._deliver(receiver, packet, sender_id)
                if on_result:
                    on_result(True)
            else:
                self.sim.metrics.incr("net.tx_failed")
                if on_result:
                    on_result(False)

        self.sim.call_in(delay, complete)

    def broadcast(self, sender_id: int, packet: Packet) -> int:
        """Link-local broadcast to every in-range neighbor.

        Returns the neighbor count at transmit time.  Each neighbor's
        reception is drawn independently (no acks on broadcast).
        """
        sender = self.node(sender_id)
        if not sender.up:
            return 0
        neighbor_ids = self.neighbors(sender_id)
        busy = self._busy_neighbors(sender)
        base_delay = self.mac.access_delay(busy, self._rng) + self.transmission_delay_s(
            sender, packet
        )
        self.sim.metrics.incr("net.tx_attempts")
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        survival = self.mac.collision_survival(busy)
        deliveries: List[int] = []
        for nid in neighbor_ids:
            receiver = self.nodes[nid]
            p_ok = (
                self.channel.delivery_probability(
                    sender.tx_power_dbm,
                    sender.position,
                    receiver.position,
                    sender.id,
                    receiver.id,
                )
                * survival
            )
            if self._rng.random() < p_ok:
                deliveries.append(nid)

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            for nid in deliveries:
                receiver = self.nodes.get(nid)
                if receiver is not None and receiver.up:
                    self.sim.metrics.incr("net.tx_success")
                    self._deliver(receiver, packet, sender_id)

        self.sim.call_in(base_delay, complete)
        return len(neighbor_ids)

    def _deliver(self, receiver: NetNode, packet: Packet, from_id: int) -> None:
        if receiver.energy_hook:
            receiver.energy_hook(0.0, packet.size_bits)
        for sniffer in self._sniffers:
            sniffer(packet, from_id, receiver.id)
        if receiver.router is not None:
            receiver.router.on_receive(receiver, packet, from_id)
        else:
            receiver.deliver_local(packet, from_id)

    def add_sniffer(self, fn: Callable[[Packet, int, int], None]) -> None:
        """Observe every successful delivery as ``(packet, from, to)``."""
        self._sniffers.append(fn)

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, jammers={len(self.channel.jammers)})"
