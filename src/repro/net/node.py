"""Network nodes and the network container.

:class:`NetNode` is the communication endpoint (radio parameters, liveness,
handler/router hooks).  :class:`Network` owns the spatial index for neighbor
queries (so 10,000-node inventories stay fast) and a
:class:`~repro.net.stack.NetworkStack` — the explicit layered pipeline
(PHY/channel -> MAC -> queue -> routing -> transport -> app) whose
:class:`~repro.net.stack.FastPathDispatcher` implements the transmit path.
The historical ``send`` / ``broadcast`` / fault-injection API is preserved
by delegation, so routers and fault injectors are unchanged callers.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.mac import ContentionMac
from repro.net.packet import Packet, PacketKind
from repro.net.stack import SPEED_OF_LIGHT_M_S, FaultLayer, NetworkStack, RouterPort
from repro.sim.kernel import Simulator
from repro.util.geometry import Point, distance

__all__ = ["NetNode", "Network", "SPEED_OF_LIGHT_M_S"]

PacketHandler = Callable[["NetNode", Packet, int], None]
SendResult = Callable[[bool], None]
# Invoked as (node_id, up) on every liveness transition.
NodeStateListener = Callable[[int, bool], None]


class NetNode:
    """A radio-equipped network endpoint.

    The node is deliberately thin: protocol behavior lives in routers
    (:mod:`repro.net.routing`) and in the asset layer (:mod:`repro.things`).
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        *,
        tx_power_dbm: float = 20.0,
        bitrate_bps: float = 1.0e6,
    ):
        self.id = node_id
        self.position = position
        self.tx_power_dbm = tx_power_dbm
        self.bitrate_bps = bitrate_bps
        self.up = True
        #: The routing-layer occupant of this node's stack, if any.  Typed
        #: via the :class:`~repro.net.stack.RouterPort` protocol so the
        #: routing slot is checkable (was ``Optional[Any]``).
        self.router: Optional[RouterPort] = None
        self.handlers: Dict[PacketKind, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        # Optional hook charged (bits_tx, bits_rx) for energy accounting.
        self.energy_hook: Optional[Callable[[float, float], None]] = None
        # Count of in-flight transmissions (for MAC contention estimates).
        self.busy_tx = 0

    def on(self, kind: PacketKind, handler: PacketHandler) -> None:
        """Register a handler for packets of ``kind`` addressed to this node."""
        self.handlers[kind] = handler

    def deliver_local(self, packet: Packet, from_id: int) -> None:
        """Hand a received packet to the registered application handler."""
        handler = self.handlers.get(packet.kind, self.default_handler)
        if handler is not None:
            handler(self, packet, from_id)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"NetNode({self.id}, {state}, pos=({self.position.x:.0f},{self.position.y:.0f}))"


class Network:
    """Container for nodes + the layered stack; owns the spatial index.

    Neighbor queries use a uniform grid sized to the maximum communication
    range, so they cost O(occupants of 9 cells) instead of O(N).  The
    transmit path lives in the stack's dispatcher; fault state lives in the
    stack's :class:`~repro.net.stack.FaultLayer` (both reachable through
    :attr:`stack`, with the historical methods kept as delegations).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Optional[Channel] = None,
        mac: Optional[ContentionMac] = None,
        *,
        neighbor_margin_db: float = 3.0,
    ):
        self.sim = sim
        self.channel = channel if channel is not None else Channel(seed=sim.rng.seed)
        self.mac = mac if mac is not None else ContentionMac()
        self.neighbor_margin_db = neighbor_margin_db
        self.nodes: Dict[int, NetNode] = {}
        self._rng = sim.rng.get("net")
        self._grid: Dict[Tuple[int, int], Set[int]] = {}
        self._cell_size = 0.0
        self._grid_dirty = True
        #: Bumped on every membership/position change; position-dependent
        #: caches (the PHY pair-probability cache) key their validity on it
        #: instead of hashing Point coordinates per lookup.
        self.topology_version = 0
        #: Bumped on every up/down flip; caches that depend on which nodes
        #: are alive (e.g. greedy-geo next-hop memos built over the default
        #: liveness-filtered neighbor view) key on this *and* on
        #: :attr:`topology_version`.
        self.liveness_version = 0
        # (node_id, include_down) -> sorted neighbor ids.  Broadcast asks
        # for a node's neighborhood twice per transmission (MAC load + the
        # fan-out list); on static worlds the answer never changes between
        # topology/liveness transitions, so it is cached and dropped
        # wholesale on grid rebuilds and up/down flips.
        self._neighbor_cache: Dict[Tuple[int, bool], List[int]] = {}
        # Listeners observing node liveness transitions (routers invalidate
        # stale state, services re-plan around losses).
        self._node_state_listeners: List[NodeStateListener] = []
        #: The layered pipeline; shares this network's channel, MAC and RNG
        #: stream, so composing a stack by hand or via the registry is the
        #: same object graph the legacy constructor args produce.
        self.stack = NetworkStack(
            sim, self, channel=self.channel, mac=self.mac, rng=self._rng
        )

    # ------------------------------------------------------------- membership

    def add_node(self, node: NetNode) -> NetNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        self._grid_dirty = True
        self.topology_version += 1
        return node

    def create_node(self, node_id: int, position: Point, **kwargs: Any) -> NetNode:
        return self.add_node(NetNode(node_id, position, **kwargs))

    def remove_node(self, node_id: int) -> None:
        self.nodes.pop(node_id, None)
        self._grid_dirty = True
        self.topology_version += 1

    def node(self, node_id: int) -> NetNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    def set_position(self, node_id: int, position: Point) -> None:
        self.node(node_id).position = position
        self._grid_dirty = True
        self.topology_version += 1

    def fail_node(self, node_id: int) -> None:
        """Take a node down (battlefield loss, capture, battery death).

        Idempotent: re-failing an already-down node is a no-op, so attack
        and fault injectors compose without double-counting transitions.
        """
        node = self.node(node_id)
        if not node.up:
            return
        node.up = False
        self._neighbor_cache.clear()
        self.liveness_version += 1
        self.sim.trace.emit("net.node_down", node=node_id)
        self._notify_node_state(node_id, False)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (repair, redeploy, battery swap)."""
        node = self.node(node_id)
        if node.up:
            return
        node.up = True
        self._neighbor_cache.clear()
        self.liveness_version += 1
        self.sim.trace.emit("net.node_up", node=node_id)
        self._notify_node_state(node_id, True)

    def on_node_state(self, listener: NodeStateListener) -> None:
        """Subscribe to liveness transitions as ``(node_id, up)`` calls.

        Routers use this to invalidate stale state the instant a node dies
        (AODV purges routes through it, DTN stores lose custody); services
        can use it to trigger re-synthesis.
        """
        self._node_state_listeners.append(listener)

    def _notify_node_state(self, node_id: int, up: bool) -> None:
        for listener in self._node_state_listeners:
            listener(node_id, up)

    def up_nodes(self) -> List[NetNode]:
        return [n for n in self.nodes.values() if n.up]

    # ------------------------------------------------------------ fault hooks
    #
    # Fault state lives in the stack's FaultLayer; these delegations keep
    # the injector-facing API (repro.faults) where it has always been.

    # Canonical unordered link key (kept here for fault-injector callers).
    _link_key = staticmethod(FaultLayer._link_key)

    def block_link(self, a: int, b: int) -> None:
        """Sever the (bidirectional) radio link between two nodes."""
        self.stack.faults.block_link(a, b)

    def unblock_link(self, a: int, b: int) -> None:
        self.stack.faults.unblock_link(a, b)

    def add_partition(self, groups: Dict[int, int]) -> None:
        """Add a partition constraint: nodes mapped to different groups
        cannot exchange packets.  Nodes absent from the mapping are
        unconstrained.  Multiple constraints compose (all must allow)."""
        self.stack.faults.add_partition(groups)

    def remove_partition(self, groups: Dict[int, int]) -> None:
        self.stack.faults.remove_partition(groups)

    def link_blocked(self, a: int, b: int) -> bool:
        """True when a fault (link cut or partition) severs the pair."""
        return self.stack.faults.link_blocked(a, b)

    def add_gremlin(self, gremlin: Any) -> None:
        """Install a packet-level gremlin (see :mod:`repro.faults.gremlin`)."""
        self.stack.faults.add_gremlin(gremlin)

    def remove_gremlin(self, gremlin: Any) -> None:
        self.stack.faults.remove_gremlin(gremlin)

    # ------------------------------------------------------------ spatial grid

    def _max_range(self) -> float:
        if not self.nodes:
            return 1.0
        max_power = max(n.tx_power_dbm for n in self.nodes.values())
        return self.channel.comm_range_m(max_power, margin_db=-self.neighbor_margin_db)

    def _rebuild_grid(self) -> None:
        self._cell_size = max(self._max_range(), 1.0)
        self._grid = {}
        for node in self.nodes.values():
            cell = self._cell_of(node.position)
            self._grid.setdefault(cell, set()).add(node.id)
        self._grid_dirty = False
        self._neighbor_cache.clear()

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self._cell_size)), int(math.floor(p.y / self._cell_size)))

    def invalidate_topology(self) -> None:
        """Mark the spatial index stale (bulk position updates call this)."""
        self._grid_dirty = True
        self.topology_version += 1

    def neighbors(self, node_id: int, *, include_down: bool = False) -> List[int]:
        """Ids of nodes within (margin-extended) communication range.

        The returned list is cached until the next topology or liveness
        change — treat it as read-only.
        """
        if self._grid_dirty:
            self._rebuild_grid()
        cache_key = (node_id, include_down)
        cached = self._neighbor_cache.get(cache_key)
        if cached is not None:
            return cached
        node = self.node(node_id)
        limit = self.channel.comm_range_m(
            node.tx_power_dbm, margin_db=-self.neighbor_margin_db
        )
        cx, cy = self._cell_of(node.position)
        found: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other_id in self._grid.get((cx + dx, cy + dy), ()):
                    if other_id == node_id:
                        continue
                    other = self.nodes[other_id]
                    if not include_down and not other.up:
                        continue
                    if distance(node.position, other.position) <= limit:
                        found.append(other_id)
        found.sort()
        self._neighbor_cache[cache_key] = found
        return found

    # --------------------------------------------------------------- transmit

    def transmission_delay_s(self, node: NetNode, packet: Packet) -> float:
        return packet.airtime_s(node.bitrate_bps)

    def send(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_result: Optional[SendResult] = None,
    ) -> None:
        """Unicast ``packet`` over one hop; outcome reported via ``on_result``.

        The outcome callback fires at the time the transmission completes
        (success) or would have completed (failure) — i.e., it models a
        link-layer ack with negligible ack airtime.
        """
        nodes = self.nodes
        try:
            sender = nodes[sender_id]
            receiver = nodes[receiver_id]
        except KeyError:
            sender = self.node(sender_id)  # raises NetworkError, names the id
            receiver = self.node(receiver_id)
        self.stack.dispatcher.unicast(sender, receiver, packet, on_result)

    def broadcast(self, sender_id: int, packet: Packet) -> int:
        """Link-local broadcast to every in-range neighbor.

        Returns the neighbor count at transmit time.  Each neighbor's
        reception is drawn independently (no acks on broadcast).
        """
        sender = self.node(sender_id)
        if not sender.up:
            # Let the dispatcher record the unsent drop uniformly.
            return self.stack.dispatcher.broadcast(sender, (), packet)
        return self.stack.dispatcher.broadcast(sender, self.neighbors(sender_id), packet)

    def add_sniffer(self, fn: Callable[[Packet, int, int], None]) -> None:
        """Observe every successful delivery as ``(packet, from, to)``."""
        self.stack.app.add_sniffer(fn)

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, jammers={len(self.channel.jammers)})"
