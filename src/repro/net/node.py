"""Network nodes and the network container.

:class:`NetNode` is the communication endpoint (radio parameters, liveness,
handler/router hooks).  :class:`Network` owns the channel, a spatial index
for neighbor queries (so 10,000-node inventories stay fast), and the
transmit path: MAC delay -> delivery draw -> scheduled reception.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple


from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.mac import ContentionMac
from repro.net.packet import Packet, PacketKind
from repro.sim.kernel import Simulator
from repro.util.geometry import Point, distance

__all__ = ["NetNode", "Network"]

SPEED_OF_LIGHT_M_S = 3.0e8

PacketHandler = Callable[["NetNode", Packet, int], None]
SendResult = Callable[[bool], None]
# Invoked as (node_id, up) on every liveness transition.
NodeStateListener = Callable[[int, bool], None]


class NetNode:
    """A radio-equipped network endpoint.

    The node is deliberately thin: protocol behavior lives in routers
    (:mod:`repro.net.routing`) and in the asset layer (:mod:`repro.things`).
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        *,
        tx_power_dbm: float = 20.0,
        bitrate_bps: float = 1.0e6,
    ):
        self.id = node_id
        self.position = position
        self.tx_power_dbm = tx_power_dbm
        self.bitrate_bps = bitrate_bps
        self.up = True
        self.router: Optional[Any] = None
        self.handlers: Dict[PacketKind, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        # Optional hook charged (bits_tx, bits_rx) for energy accounting.
        self.energy_hook: Optional[Callable[[float, float], None]] = None
        # Count of in-flight transmissions (for MAC contention estimates).
        self.busy_tx = 0

    def on(self, kind: PacketKind, handler: PacketHandler) -> None:
        """Register a handler for packets of ``kind`` addressed to this node."""
        self.handlers[kind] = handler

    def deliver_local(self, packet: Packet, from_id: int) -> None:
        """Hand a received packet to the registered application handler."""
        handler = self.handlers.get(packet.kind, self.default_handler)
        if handler is not None:
            handler(self, packet, from_id)

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"NetNode({self.id}, {state}, pos=({self.position.x:.0f},{self.position.y:.0f}))"


class Network:
    """Container for nodes + channel; implements the transmit path.

    Neighbor queries use a uniform grid sized to the maximum communication
    range, so they cost O(occupants of 9 cells) instead of O(N).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Optional[Channel] = None,
        mac: Optional[ContentionMac] = None,
        *,
        neighbor_margin_db: float = 3.0,
    ):
        self.sim = sim
        self.channel = channel if channel is not None else Channel(seed=sim.rng.seed)
        self.mac = mac if mac is not None else ContentionMac()
        self.neighbor_margin_db = neighbor_margin_db
        self.nodes: Dict[int, NetNode] = {}
        self._rng = sim.rng.get("net")
        self._grid: Dict[Tuple[int, int], Set[int]] = {}
        self._cell_size = 0.0
        self._grid_dirty = True
        # Listeners observing every successful delivery (promiscuous taps,
        # used by fingerprinting / side-channel discovery).
        self._sniffers: List[Callable[[Packet, int, int], None]] = []
        # Listeners observing node liveness transitions (routers invalidate
        # stale state, services re-plan around losses).
        self._node_state_listeners: List[NodeStateListener] = []
        # Fault-injection state: individually blocked links, partition
        # constraints, and packet-level gremlins (see repro.faults).
        self._blocked_links: Set[Tuple[int, int]] = set()
        self._partitions: List[Dict[int, int]] = []
        self._gremlins: List[Any] = []
        # Registry instruments, cached so the transmit path pays one
        # attribute update per event (see repro.obs.registry).
        registry = sim.registry
        self._c_tx = registry.counter("net.tx")
        self._c_rx = registry.counter("net.rx")
        self._c_dropped = registry.counter("net.dropped")
        self._h_backoff = registry.histogram("net.mac_backoff_s")
        # (control_tx counter, control_bits counter) per router name.
        self._control_counters: Dict[str, Tuple[Any, Any]] = {}

    # ------------------------------------------------------------- membership

    def add_node(self, node: NetNode) -> NetNode:
        if node.id in self.nodes:
            raise NetworkError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        self._grid_dirty = True
        return node

    def create_node(self, node_id: int, position: Point, **kwargs: Any) -> NetNode:
        return self.add_node(NetNode(node_id, position, **kwargs))

    def remove_node(self, node_id: int) -> None:
        self.nodes.pop(node_id, None)
        self._grid_dirty = True

    def node(self, node_id: int) -> NetNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    def set_position(self, node_id: int, position: Point) -> None:
        self.node(node_id).position = position
        self._grid_dirty = True

    def fail_node(self, node_id: int) -> None:
        """Take a node down (battlefield loss, capture, battery death).

        Idempotent: re-failing an already-down node is a no-op, so attack
        and fault injectors compose without double-counting transitions.
        """
        node = self.node(node_id)
        if not node.up:
            return
        node.up = False
        self.sim.trace.emit("net.node_down", node=node_id)
        self._notify_node_state(node_id, False)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (repair, redeploy, battery swap)."""
        node = self.node(node_id)
        if node.up:
            return
        node.up = True
        self.sim.trace.emit("net.node_up", node=node_id)
        self._notify_node_state(node_id, True)

    def on_node_state(self, listener: NodeStateListener) -> None:
        """Subscribe to liveness transitions as ``(node_id, up)`` calls.

        Routers use this to invalidate stale state the instant a node dies
        (AODV purges routes through it, DTN stores lose custody); services
        can use it to trigger re-synthesis.
        """
        self._node_state_listeners.append(listener)

    def _notify_node_state(self, node_id: int, up: bool) -> None:
        for listener in self._node_state_listeners:
            listener(node_id, up)

    def up_nodes(self) -> List[NetNode]:
        return [n for n in self.nodes.values() if n.up]

    # ------------------------------------------------------------ fault hooks

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def block_link(self, a: int, b: int) -> None:
        """Sever the (bidirectional) radio link between two nodes."""
        key = self._link_key(a, b)
        if key not in self._blocked_links:
            self._blocked_links.add(key)
            self.sim.trace.emit("net.link_down", a=key[0], b=key[1])

    def unblock_link(self, a: int, b: int) -> None:
        key = self._link_key(a, b)
        if key in self._blocked_links:
            self._blocked_links.discard(key)
            self.sim.trace.emit("net.link_up", a=key[0], b=key[1])

    def add_partition(self, groups: Dict[int, int]) -> None:
        """Add a partition constraint: nodes mapped to different groups
        cannot exchange packets.  Nodes absent from the mapping are
        unconstrained.  Multiple constraints compose (all must allow)."""
        self._partitions.append(groups)
        self.sim.trace.emit("net.partition_on", groups=len(set(groups.values())))

    def remove_partition(self, groups: Dict[int, int]) -> None:
        if groups in self._partitions:
            self._partitions.remove(groups)
            self.sim.trace.emit("net.partition_off")

    def link_blocked(self, a: int, b: int) -> bool:
        """True when a fault (link cut or partition) severs the pair."""
        if self._blocked_links and self._link_key(a, b) in self._blocked_links:
            return True
        for groups in self._partitions:
            ga = groups.get(a)
            gb = groups.get(b)
            if ga is not None and gb is not None and ga != gb:
                return True
        return False

    def add_gremlin(self, gremlin: Any) -> None:
        """Install a packet-level gremlin (see :mod:`repro.faults.gremlin`)."""
        if gremlin not in self._gremlins:
            self._gremlins.append(gremlin)

    def remove_gremlin(self, gremlin: Any) -> None:
        if gremlin in self._gremlins:
            self._gremlins.remove(gremlin)

    # ------------------------------------------------------------ spatial grid

    def _max_range(self) -> float:
        if not self.nodes:
            return 1.0
        max_power = max(n.tx_power_dbm for n in self.nodes.values())
        return self.channel.comm_range_m(max_power, margin_db=-self.neighbor_margin_db)

    def _rebuild_grid(self) -> None:
        self._cell_size = max(self._max_range(), 1.0)
        self._grid = {}
        for node in self.nodes.values():
            cell = self._cell_of(node.position)
            self._grid.setdefault(cell, set()).add(node.id)
        self._grid_dirty = False

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (int(math.floor(p.x / self._cell_size)), int(math.floor(p.y / self._cell_size)))

    def invalidate_topology(self) -> None:
        """Mark the spatial index stale (bulk position updates call this)."""
        self._grid_dirty = True

    def neighbors(self, node_id: int, *, include_down: bool = False) -> List[int]:
        """Ids of nodes within (margin-extended) communication range."""
        if self._grid_dirty:
            self._rebuild_grid()
        node = self.node(node_id)
        limit = self.channel.comm_range_m(
            node.tx_power_dbm, margin_db=-self.neighbor_margin_db
        )
        cx, cy = self._cell_of(node.position)
        found: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other_id in self._grid.get((cx + dx, cy + dy), ()):
                    if other_id == node_id:
                        continue
                    other = self.nodes[other_id]
                    if not include_down and not other.up:
                        continue
                    if distance(node.position, other.position) <= limit:
                        found.append(other_id)
        found.sort()
        return found

    # --------------------------------------------------------------- transmit

    def _busy_neighbors(self, node: NetNode) -> int:
        return sum(
            self.nodes[nid].busy_tx
            for nid in self.neighbors(node.id)
            if nid in self.nodes
        )

    def transmission_delay_s(self, node: NetNode, packet: Packet) -> float:
        return packet.size_bits / max(node.bitrate_bps, 1.0)

    def _count_control(self, sender: NetNode, packet: Packet) -> None:
        """Charge a non-DATA transmission to its router's control budget."""
        if packet.kind is PacketKind.DATA:
            return
        name = sender.router.name if sender.router is not None else "none"
        pair = self._control_counters.get(name)
        if pair is None:
            registry = self.sim.registry
            pair = (
                registry.counter(f"route.{name}.control_tx"),
                registry.counter(f"route.{name}.control_bits"),
            )
            self._control_counters[name] = pair
        pair[0].inc()
        pair[1].inc(packet.size_bits)

    def _gremlin_verdict(self, sender_id: int, receiver_id: int, packet: Packet):
        """Combined packet-gremlin verdict for one hop, or ``None``.

        Drop/corrupt/duplicate OR together across installed gremlins; extra
        delays add.  Returns ``(drop, duplicate, corrupt, extra_delay_s)``.
        """
        if not self._gremlins:
            return None
        drop = duplicate = corrupt = False
        extra_delay = 0.0
        for gremlin in self._gremlins:
            verdict = gremlin.judge(sender_id, receiver_id, packet)
            if verdict is None:
                continue
            drop = drop or verdict.drop
            duplicate = duplicate or verdict.duplicate
            corrupt = corrupt or verdict.corrupt
            extra_delay += verdict.extra_delay_s
        if not (drop or duplicate or corrupt or extra_delay > 0.0):
            return None
        return drop, duplicate, corrupt, extra_delay

    def send(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_result: Optional[SendResult] = None,
    ) -> None:
        """Unicast ``packet`` over one hop; outcome reported via ``on_result``.

        The outcome callback fires at the time the transmission completes
        (success) or would have completed (failure) — i.e., it models a
        link-layer ack with negligible ack airtime.
        """
        sender = self.node(sender_id)
        receiver = self.node(receiver_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            if on_result:
                on_result(False)
            return
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        prop = distance(sender.position, receiver.position) / SPEED_OF_LIGHT_M_S
        delay = backoff + airtime + prop
        p_ok = self.channel.delivery_probability(
            sender.tx_power_dbm,
            sender.position,
            receiver.position,
            sender.id,
            receiver.id,
        ) * access.collision_survival
        drop_reason: Optional[str] = None
        if not receiver.up:
            success = False
            drop_reason = "receiver_down"
        elif self._rng.random() < p_ok:
            success = True
        else:
            success = False
            drop_reason = "loss"
        if success and self.link_blocked(sender_id, receiver_id):
            success = False
            drop_reason = "link_blocked"
            self.sim.metrics.incr("net.link_blocked")
        duplicate = corrupt = False
        extra_delay = 0.0
        if success:
            verdict = self._gremlin_verdict(sender_id, receiver_id, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                delay += extra_delay
                if drop:
                    success = False
                    drop_reason = "gremlin"
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id,
                receiver_id,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=prop,
                extra_s=extra_delay,
            )

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            if success and receiver.up:
                if corrupt:
                    # Failed checksum: airtime was spent but the frame is
                    # discarded at the receiver, and the link-layer ack fails.
                    self.sim.metrics.incr("net.rx_corrupt")
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, receiver_id, "corrupt")
                    if on_result:
                        on_result(False)
                    return
                self.sim.metrics.incr("net.tx_success")
                self._c_rx.inc()
                if token is not None:
                    tracer.on_rx(
                        token, packet, sender_id, receiver_id, extra_s=extra_delay
                    )
                self._deliver(receiver, packet, sender_id)
                if duplicate:
                    self.sim.metrics.incr("net.rx_duplicated")
                    if receiver.up:
                        self._deliver(receiver, packet, sender_id)
                if on_result:
                    on_result(True)
            else:
                self.sim.metrics.incr("net.tx_failed")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(
                        token,
                        sender_id,
                        receiver_id,
                        drop_reason or "receiver_down",
                    )
                if on_result:
                    on_result(False)

        self.sim.call_in(delay, complete)

    def broadcast(self, sender_id: int, packet: Packet) -> int:
        """Link-local broadcast to every in-range neighbor.

        Returns the neighbor count at transmit time.  Each neighbor's
        reception is drawn independently (no acks on broadcast).
        """
        sender = self.node(sender_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            return 0
        neighbor_ids = self.neighbors(sender_id)
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        base_delay = backoff + airtime
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        survival = access.collision_survival
        token = None
        if tracer is not None:
            # One hop span covers the whole broadcast; each receiver's
            # reception (or loss) is recorded against it individually.
            token = tracer.on_enqueue(
                sender_id,
                None,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=0.0,
                extra_s=0.0,
            )
        # Per receiver: (node_id, corrupt, duplicate, extra_delay_s).
        deliveries: List[Tuple[int, bool, bool, float]] = []
        for nid in neighbor_ids:
            receiver = self.nodes[nid]
            p_ok = (
                self.channel.delivery_probability(
                    sender.tx_power_dbm,
                    sender.position,
                    receiver.position,
                    sender.id,
                    receiver.id,
                )
                * survival
            )
            if self._rng.random() >= p_ok:
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "loss")
                continue
            if self.link_blocked(sender_id, nid):
                self.sim.metrics.incr("net.link_blocked")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "link_blocked")
                continue
            corrupt = duplicate = False
            extra_delay = 0.0
            verdict = self._gremlin_verdict(sender_id, nid, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                if drop:
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, nid, "gremlin")
                    continue
            deliveries.append((nid, corrupt, duplicate, extra_delay))

        def deliver_one(
            nid: int, corrupt: bool, duplicate: bool, extra_delay: float
        ) -> None:
            receiver = self.nodes.get(nid)
            if receiver is None or not receiver.up:
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "receiver_down")
                return
            if corrupt:
                self.sim.metrics.incr("net.rx_corrupt")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "corrupt")
                return
            self.sim.metrics.incr("net.tx_success")
            self._c_rx.inc()
            if token is not None:
                tracer.on_rx(token, packet, sender_id, nid, extra_s=extra_delay)
            self._deliver(receiver, packet, sender_id)
            if duplicate:
                self.sim.metrics.incr("net.rx_duplicated")
                receiver = self.nodes.get(nid)
                if receiver is not None and receiver.up:
                    self._deliver(receiver, packet, sender_id)

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            for nid, corrupt, duplicate, extra_delay in deliveries:
                if extra_delay > 0.0:
                    self.sim.call_in(
                        extra_delay,
                        lambda n=nid, c=corrupt, d=duplicate, e=extra_delay: (
                            deliver_one(n, c, d, e)
                        ),
                    )
                else:
                    deliver_one(nid, corrupt, duplicate, 0.0)

        self.sim.call_in(base_delay, complete)
        return len(neighbor_ids)

    def _deliver(self, receiver: NetNode, packet: Packet, from_id: int) -> None:
        if receiver.energy_hook:
            receiver.energy_hook(0.0, packet.size_bits)
        for sniffer in self._sniffers:
            sniffer(packet, from_id, receiver.id)
        if receiver.router is not None:
            receiver.router.on_receive(receiver, packet, from_id)
        else:
            receiver.deliver_local(packet, from_id)

    def add_sniffer(self, fn: Callable[[Packet, int, int], None]) -> None:
        """Observe every successful delivery as ``(packet, from, to)``."""
        self._sniffers.append(fn)

    def __repr__(self) -> str:
        return f"Network(nodes={len(self.nodes)}, jammers={len(self.channel.jammers)})"
