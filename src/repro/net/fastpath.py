"""Fast-path gating: optional numpy acceleration with a kill switch.

The vectorized hot path (batched verdict compares, slab RNG draws) rides on
numpy, declared as the ``fast`` optional extra in pyproject.  Everything it
accelerates has a pure-Python twin that produces bit-identical results, so
this module is the single switchboard deciding which twin runs:

* ``REPRO_FAST_PATH=0`` in the environment forces the scalar path — the
  escape hatch for debugging a suspected vectorization bug or for timing
  the fallback.
* numpy missing (a ``repro[fast]``-less install) silently falls back.

The decision is resolved once, at first use, and cached; tests flip it
with :func:`refresh` after monkeypatching the environment.  Callers that
sit on the per-packet path should grab the verdict once per dispatcher
construction, not per packet.
"""

from __future__ import annotations

import os
from typing import Any, Optional

__all__ = ["fast_path_enabled", "numpy_or_none", "refresh"]

_UNRESOLVED = object()
_numpy: Any = _UNRESOLVED


def _resolve() -> Optional[Any]:
    if os.environ.get("REPRO_FAST_PATH", "1").strip().lower() in ("0", "false", "off"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is baked into CI images
        return None
    return numpy


def numpy_or_none() -> Optional[Any]:
    """The numpy module when the fast path is on, else ``None``."""
    global _numpy
    if _numpy is _UNRESOLVED:
        _numpy = _resolve()
    return _numpy


def fast_path_enabled() -> bool:
    """True when vectorized kernels should run (numpy present, not gated)."""
    return numpy_or_none() is not None


def refresh() -> bool:
    """Re-read ``REPRO_FAST_PATH`` and numpy availability (for tests)."""
    global _numpy
    _numpy = _UNRESOLVED
    return fast_path_enabled()
