"""String-keyed component registry for stack composition.

The Fig. 2 synthesis story — assemble heterogeneous communication stacks on
demand — needs components addressable *by name*, so scenario builders and
campaign sweeps can grid over stack compositions declaratively
(``router="aodv"``, ``mac="csma"``) instead of importing classes.  This
module provides:

* :class:`ComponentRegistry` — ``kind -> name -> factory`` tables with a
  module-level default instance.  Component modules self-register at import
  (``register("mac", "csma", ContentionMac)``); lookups lazily import the
  default component modules, so ``create("router", "aodv", net)`` works
  without any prior import ceremony.
* :class:`StackSpec` — a declarative, JSON-able description of one stack
  composition (channel / MAC / router / transport names plus per-component
  params).  ``repro.scenarios.builder`` consumes it to build scenarios and
  ``repro.campaign.spec`` hashes it into content-addressed cache keys, so
  cached results invalidate whenever the composition changes.
* :func:`compose` — build a live ``(network, router, transport)`` triple
  from a :class:`StackSpec`, filling the stack's routing/transport slots.

Naming rules (documented in DESIGN.md §3.5): names are lowercase
``snake_case``, match the component's canonical short name (a router's
``Router.name``), and never encode parameters — parameters ride in the
spec's ``*_params`` maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Network
    from repro.net.stack import RouterPort, TransportPort
    from repro.sim.kernel import Simulator

__all__ = [
    "ComponentRegistry",
    "StackSpec",
    "ComposedStack",
    "register",
    "create",
    "names",
    "kinds",
    "compose",
    "DEFAULT_REGISTRY",
]

Factory = Callable[..., Any]

#: The component kinds a stack composition draws from.
KINDS: Tuple[str, ...] = ("channel", "mac", "router", "mobility", "transport")


class ComponentRegistry:
    """``kind -> name -> factory`` tables with validation.

    A *factory* is any callable returning a component instance; classes
    register directly.  Names are unique per kind; re-registering a name
    with a different factory raises (idempotent re-registration of the same
    factory is allowed so module reloads stay safe).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Dict[str, Factory]] = {kind: {} for kind in KINDS}

    # ----------------------------------------------------------- registration

    def register(self, kind: str, name: str, factory: Optional[Factory] = None):
        """Register ``factory`` under ``(kind, name)``.

        Usable directly (``register("mac", "csma", ContentionMac)``) or as
        a class decorator (``@register("router", "aodv")``).
        """
        table = self._table(kind)
        if not name or name != name.lower() or " " in name or "-" in name:
            raise ConfigurationError(
                f"component names are lowercase snake_case, got {name!r}"
            )

        def _do(fac: Factory) -> Factory:
            existing = table.get(name)
            if existing is not None and existing is not fac:
                raise ConfigurationError(
                    f"{kind} component {name!r} already registered "
                    f"({existing!r}); names are unique per kind"
                )
            table[name] = fac
            return fac

        if factory is None:
            return _do
        return _do(factory)

    # ---------------------------------------------------------------- lookup

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``(kind, name)``."""
        return self.factory(kind, name)(*args, **kwargs)

    def factory(self, kind: str, name: str) -> Factory:
        table = self._table(kind)
        if name not in table:
            _load_default_components()
            table = self._table(kind)
        try:
            return table[name]
        except KeyError:
            known = ", ".join(sorted(table)) or "<none>"
            raise ConfigurationError(
                f"unknown {kind} component {name!r} (registered: {known})"
            ) from None

    def names(self, kind: str) -> List[str]:
        """Registered names for ``kind``, sorted."""
        _load_default_components()
        return sorted(self._table(kind))

    def kinds(self) -> List[str]:
        return list(KINDS)

    def _table(self, kind: str) -> Dict[str, Factory]:
        try:
            return self._tables[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown component kind {kind!r} (kinds: {', '.join(KINDS)})"
            ) from None

    def __repr__(self) -> str:
        counts = {k: len(t) for k, t in self._tables.items() if t}
        return f"ComponentRegistry({counts})"


#: The process-wide default registry component modules register into.
DEFAULT_REGISTRY = ComponentRegistry()

_defaults_loaded = False


def _load_default_components() -> None:
    """Import the built-in component modules (they self-register)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    # Imported lazily to avoid import cycles (these modules import us for
    # their `register(...)` calls).
    import repro.net.channel  # noqa: F401
    import repro.net.mac  # noqa: F401
    import repro.net.mobility  # noqa: F401
    import repro.net.routing  # noqa: F401
    import repro.net.transport  # noqa: F401


def register(kind: str, name: str, factory: Optional[Factory] = None):
    """Register into the default registry (see :class:`ComponentRegistry`)."""
    return DEFAULT_REGISTRY.register(kind, name, factory)


def create(kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
    """Instantiate from the default registry."""
    return DEFAULT_REGISTRY.create(kind, name, *args, **kwargs)


def names(kind: str) -> List[str]:
    """Registered names for ``kind`` in the default registry."""
    return DEFAULT_REGISTRY.names(kind)


def kinds() -> List[str]:
    return DEFAULT_REGISTRY.kinds()


# ------------------------------------------------------------------- specs


@dataclass(frozen=True)
class StackSpec:
    """A declarative stack composition, addressable entirely by name.

    JSON-able by construction (names + flat param dicts), so campaign
    sweeps can grid over compositions and
    :func:`repro.campaign.spec.config_key` can hash them into cache keys.
    ``channel=None`` means "use the scenario's own channel" (e.g. the urban
    grid's calibrated channel) rather than a registry-built one.
    """

    router: str = "flooding"
    mac: str = "csma"
    channel: Optional[str] = None
    transport: Optional[str] = None
    router_params: Dict[str, Any] = field(default_factory=dict)
    mac_params: Dict[str, Any] = field(default_factory=dict)
    channel_params: Dict[str, Any] = field(default_factory=dict)
    transport_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, value in (
            ("router_params", self.router_params),
            ("mac_params", self.mac_params),
            ("channel_params", self.channel_params),
            ("transport_params", self.transport_params),
        ):
            if not isinstance(value, dict):
                raise ConfigurationError(f"{label} must be a dict, got {value!r}")

    def as_config(self) -> Dict[str, Any]:
        """The canonical dict view fed to hashing / serialization."""
        return {
            "router": self.router,
            "mac": self.mac,
            "channel": self.channel,
            "transport": self.transport,
            "router_params": dict(self.router_params),
            "mac_params": dict(self.mac_params),
            "channel_params": dict(self.channel_params),
            "transport_params": dict(self.transport_params),
        }

    def with_(self, **changes: Any) -> "StackSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def from_config(cls, config: Dict[str, Any]) -> "StackSpec":
        """Inverse of :meth:`as_config` (campaign params round-trip)."""
        return cls(
            router=config.get("router", "flooding"),
            mac=config.get("mac", "csma"),
            channel=config.get("channel"),
            transport=config.get("transport"),
            router_params=dict(config.get("router_params", {})),
            mac_params=dict(config.get("mac_params", {})),
            channel_params=dict(config.get("channel_params", {})),
            transport_params=dict(config.get("transport_params", {})),
        )


@dataclass
class ComposedStack:
    """A live stack assembled from a :class:`StackSpec`."""

    spec: StackSpec
    network: "Network"
    router: "RouterPort"
    transport: Optional["TransportPort"] = None

    def attach_all(self, node_ids: Iterable[int]) -> None:
        """Attach nodes to the whole composition.

        Transports install their packet handlers per attached node, so when
        one is present attachment must flow through it — attaching on the
        router directly would leave the transport deaf on those nodes.
        """
        if self.transport is not None:
            for node_id in node_ids:
                self.transport.attach(node_id)
        else:
            self.router.attach_all(node_ids)


def compose(
    sim: "Simulator",
    spec: StackSpec,
    *,
    network: Optional["Network"] = None,
    attach: Optional[Iterable[int]] = None,
    registry: Optional[ComponentRegistry] = None,
) -> ComposedStack:
    """Build a live network stack from ``spec``.

    With ``network=None`` a fresh :class:`~repro.net.node.Network` is built
    around the spec's channel and MAC; passing an existing network instead
    plugs the router/transport into it (the builder does this so its world
    geometry owns the channel).  The router and transport are installed in
    the stack's routing/transport slots, so per-layer hooks and profiling
    see the full composition.

    ``attach`` names the node ids the router serves.  Transports install
    their packet handlers on the router's attached nodes at construction,
    so attachment must precede transport creation — this function owns
    that ordering.
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY

    from repro.net.node import Network

    if network is None:
        channel = None
        if spec.channel is not None:
            params = dict(spec.channel_params)
            params.setdefault("seed", sim.rng.seed)
            channel = reg.create("channel", spec.channel, **params)
        mac = reg.create("mac", spec.mac, **spec.mac_params)
        network = Network(sim, channel, mac)
    router = reg.create("router", spec.router, network, **spec.router_params)
    network.stack.set_router(router)
    if attach is not None:
        router.attach_all(attach)
    transport = None
    if spec.transport is not None:
        transport = reg.create(
            "transport", spec.transport, router, **spec.transport_params
        )
        network.stack.set_transport(transport)
    return ComposedStack(spec=spec, network=network, router=router, transport=transport)
