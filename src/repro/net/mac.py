"""A lightweight contention MAC model.

Rather than simulating CSMA slot-by-slot (which would dominate runtime at
10,000 nodes), the MAC charges each transmission a contention delay and a
collision-loss probability derived from the sender's local neighborhood
load.  This is the standard mean-field shortcut: per-packet cost grows with
local density and offered load, which is the effect the IoBT arguments need
(disadvantaged, congested networks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ContentionMac", "MacAccess"]


@dataclass(frozen=True)
class MacAccess:
    """One channel-access grant: the backoff charged and the collision
    survival probability at the load observed when access was requested.

    Bundling the pair keeps the transmit paths (and the packet tracer's
    per-hop latency attribution) working from a single consistent sample
    of neighborhood load.
    """

    backoff_s: float
    collision_survival: float


@dataclass
class ContentionMac:
    """Mean-field contention MAC.

    Parameters
    ----------
    slot_time_s:
        Base backoff slot length.
    mean_backoff_slots:
        Mean of the exponential backoff draw at zero load.
    load_factor:
        How steeply backoff grows with busy neighbors (per neighbor).
    collision_rho:
        Per-neighbor probability of overlapping a given transmission;
        collision survival is ``(1 - rho)^k`` for ``k`` busy neighbors.
    """

    slot_time_s: float = 0.001
    mean_backoff_slots: float = 4.0
    load_factor: float = 0.15
    collision_rho: float = 0.02

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0:
            raise ConfigurationError("slot_time_s must be positive")
        if not (0.0 <= self.collision_rho < 1.0):
            raise ConfigurationError("collision_rho must be in [0, 1)")

    def access_delay(self, busy_neighbors: int, rng: np.random.Generator) -> float:
        """Random channel-access delay given ``busy_neighbors`` contenders."""
        mean_slots = self.mean_backoff_slots * (
            1.0 + self.load_factor * max(0, busy_neighbors)
        )
        return float(rng.exponential(mean_slots * self.slot_time_s))

    def collision_survival(self, busy_neighbors: int) -> float:
        """Probability the transmission is not destroyed by a collision."""
        k = max(0, busy_neighbors)
        return (1.0 - self.collision_rho) ** k

    def access(self, busy_neighbors: int, rng: np.random.Generator) -> MacAccess:
        """Draw one channel access: backoff plus survival, as a pair.

        Exactly one RNG draw (the backoff), so substituting this for a
        bare :meth:`access_delay` call leaves RNG streams bit-identical.
        """
        return MacAccess(
            backoff_s=self.access_delay(busy_neighbors, rng),
            collision_survival=self.collision_survival(busy_neighbors),
        )
