"""A lightweight contention MAC model.

Rather than simulating CSMA slot-by-slot (which would dominate runtime at
10,000 nodes), the MAC charges each transmission a contention delay and a
collision-loss probability derived from the sender's local neighborhood
load.  This is the standard mean-field shortcut: per-packet cost grows with
local density and offered load, which is the effect the IoBT arguments need
(disadvantaged, congested networks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.net.registry import register

__all__ = ["ContentionMac", "IdealMac", "MacAccess"]


@dataclass(frozen=True)
class MacAccess:
    """One channel-access grant: the backoff charged and the collision
    survival probability at the load observed when access was requested.

    Bundling the pair keeps the transmit paths (and the packet tracer's
    per-hop latency attribution) working from a single consistent sample
    of neighborhood load.
    """

    backoff_s: float
    collision_survival: float


@dataclass
class ContentionMac:
    """Mean-field contention MAC.

    Parameters
    ----------
    slot_time_s:
        Base backoff slot length.
    mean_backoff_slots:
        Mean of the exponential backoff draw at zero load.
    load_factor:
        How steeply backoff grows with busy neighbors (per neighbor).
    collision_rho:
        Per-neighbor probability of overlapping a given transmission;
        collision survival is ``(1 - rho)^k`` for ``k`` busy neighbors.
    """

    name = "csma"

    slot_time_s: float = 0.001
    mean_backoff_slots: float = 4.0
    load_factor: float = 0.15
    collision_rho: float = 0.02

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0:
            raise ConfigurationError("slot_time_s must be positive")
        if not (0.0 <= self.collision_rho < 1.0):
            raise ConfigurationError("collision_rho must be in [0, 1)")

    def access_delay(self, busy_neighbors: int, rng: np.random.Generator) -> float:
        """Random channel-access delay given ``busy_neighbors`` contenders."""
        mean_slots = self.mean_backoff_slots * (
            1.0 + self.load_factor * max(0, busy_neighbors)
        )
        return float(rng.exponential(mean_slots * self.slot_time_s))

    def collision_survival(self, busy_neighbors: int) -> float:
        """Probability the transmission is not destroyed by a collision."""
        k = max(0, busy_neighbors)
        return (1.0 - self.collision_rho) ** k

    def access(self, busy_neighbors: int, rng: np.random.Generator) -> MacAccess:
        """Draw one channel access: backoff plus survival, as a pair.

        Exactly one RNG draw (the backoff), so substituting this for a
        bare :meth:`access_delay` call leaves RNG streams bit-identical.
        """
        return MacAccess(
            backoff_s=self.access_delay(busy_neighbors, rng),
            collision_survival=self.collision_survival(busy_neighbors),
        )

    # ------------------------------------------------------------ layer surface
    #
    # MAC backends occupy the mac slot of a NetworkStack; the grant logic
    # above is the whole behavior, so the remaining Layer methods are no-ops.

    def attach(self, ctx: Any) -> None:
        """Layer-interface attachment; the MAC is stateless per-context."""

    def on_send(self, node: Any, packet: Any) -> None:
        """No per-packet send-side state (grants happen via access())."""

    def on_receive(self, node: Any, packet: Any, from_id: int) -> None:
        """No receive-side MAC state in the mean-field model."""

    def on_timer(self, now: float) -> None:
        """No periodic MAC maintenance."""


@dataclass
class IdealMac:
    """A contention-free MAC: zero backoff, no collision losses.

    Useful as the control arm in campaign sweeps (isolates routing effects
    from MAC contention) and as the simplest example of an alternate
    registry backend.  ``access`` consumes **no** RNG draws, so swapping
    MACs changes the composition, not just parameters — cache keys and
    fingerprints differ by design.
    """

    name = "ideal"

    def access_delay(self, busy_neighbors: int, rng: np.random.Generator) -> float:
        return 0.0

    def collision_survival(self, busy_neighbors: int) -> float:
        return 1.0

    def access(self, busy_neighbors: int, rng: np.random.Generator) -> MacAccess:
        return MacAccess(backoff_s=0.0, collision_survival=1.0)

    def attach(self, ctx: Any) -> None:
        """Layer-interface attachment; nothing to bind."""

    def on_send(self, node: Any, packet: Any) -> None:
        """No send-side state."""

    def on_receive(self, node: Any, packet: Any, from_id: int) -> None:
        """No receive-side state."""

    def on_timer(self, now: float) -> None:
        """No periodic maintenance."""


register("mac", ContentionMac.name, ContentionMac)
register("mac", IdealMac.name, IdealMac)
