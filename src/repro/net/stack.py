"""The layered per-node network stack.

The paper's Fig. 2 synthesis argument needs heterogeneous communication
stacks assembled on demand; Farooq & Zhu's multi-layer IoBT network design
(arXiv:1801.09986) models exactly that per-layer composability.  This module
makes the stack explicit: an ordered pipeline

    PHY/channel -> MAC -> queue -> routing -> transport -> app

behind one :class:`Layer` protocol (``on_send`` / ``on_receive`` /
``on_timer`` / ``attach(ctx)``).  A :class:`StackContext` owns the clock,
the RNG stream, and the emit hooks, so tracing (:mod:`repro.obs.tracing`),
fault callbacks (:mod:`repro.faults`), and metrics
(:mod:`repro.obs.registry`) plug in at layer boundaries exactly once instead
of being re-implemented per router.

The per-packet hot path is :class:`FastPathDispatcher`: one batched dispatch
loop over the layers that :class:`~repro.net.node.Network` delegates to.  It
is **bit-identical** to the pre-refactor hand-inlined transmit path for the
default composition — same RNG draw order, same scheduled delays, same
trace records — which ``tests/net/test_stack_fingerprint.py`` pins with
golden fingerprints recorded before the refactor.

Import discipline: this module must not import :mod:`repro.net.node` at
runtime (node imports the stack); layers receive ``NetNode`` instances
through the context and type them via ``TYPE_CHECKING`` only.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.net import fastpath
from repro.net.mac import ContentionMac, MacAccess
from repro.net.packet import Packet, PacketKind
from repro.util.geometry import distance

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.net.channel import Channel
    from repro.net.node import NetNode, Network
    from repro.sim.kernel import Simulator

__all__ = [
    "Layer",
    "RouterPort",
    "TransportPort",
    "LayerBase",
    "StackContext",
    "PhyLayer",
    "MacLayer",
    "QueueLayer",
    "FaultLayer",
    "RoutingLayer",
    "TransportLayer",
    "AppLayer",
    "NetworkStack",
    "FastPathDispatcher",
    "SPEED_OF_LIGHT_M_S",
    "LAYER_ORDER",
]

SPEED_OF_LIGHT_M_S = 3.0e8

#: Canonical bottom-up layer order of the pipeline.
LAYER_ORDER: Tuple[str, ...] = ("phy", "mac", "queue", "routing", "transport", "app")

SendResult = Callable[[bool], None]
Sniffer = Callable[[Packet, int, int], None]


# --------------------------------------------------------------- protocols


@runtime_checkable
class Layer(Protocol):
    """The uniform interface every stack layer implements.

    ``attach(ctx)`` binds the layer to its stack's shared context;
    ``on_send`` / ``on_receive`` are the downward/upward data-path hooks;
    ``on_timer`` is the periodic maintenance hook (DTN contact sweeps, MAC
    housekeeping).  Layers that do not participate in a direction simply
    inherit the no-op from :class:`LayerBase`.
    """

    name: str

    def attach(self, ctx: "StackContext") -> None: ...

    def on_send(self, node: "NetNode", packet: Packet) -> None: ...

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None: ...

    def on_timer(self, now: float) -> None: ...


@runtime_checkable
class RouterPort(Protocol):
    """What the network requires of anything plugged in as a node's router.

    This is the typed replacement for the old ``NetNode.router:
    Optional[Any]`` — mypy/pyright can now check the routing slot of the
    stack.  All of :mod:`repro.net.routing` satisfies it structurally.
    """

    name: str

    def send(self, src_id: int, packet: Packet) -> None: ...

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None: ...

    def attach_all(self, node_ids: Iterable[int]) -> None: ...


@runtime_checkable
class TransportPort(Protocol):
    """What the stack requires of a transport service (see
    :mod:`repro.net.transport`): originate application messages and expose
    per-node subscription."""

    def send(self, src: int, dst: Optional[int], payload: Any = None) -> Any: ...

    def on_message(self, node_id: int, handler: Callable[[Packet], None]) -> None: ...

    def attach(self, node_id: int) -> None: ...


class LayerBase:
    """Default no-op implementation of the :class:`Layer` protocol."""

    name = "layer"

    def __init__(self) -> None:
        self.ctx: Optional[StackContext] = None

    def attach(self, ctx: "StackContext") -> None:
        self.ctx = ctx

    def on_send(self, node: "NetNode", packet: Packet) -> None:
        pass

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None:
        pass

    def on_timer(self, now: float) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------- context


class StackContext:
    """Shared state every layer sees: clock, RNG stream, and emit hooks.

    The context is the single place where cross-cutting concerns plug into
    the stack.  Tracing hooks come from :attr:`tracer` (``None`` while
    disabled, so the hot path stays branch-cheap), metric instruments are
    created once here and cached, and fault verdicts are reached through
    the stack's :class:`FaultLayer`.
    """

    def __init__(self, sim: "Simulator", network: "Network", rng: "np.random.Generator"):
        self.sim = sim
        self.network = network
        #: The stack's RNG stream (the historical ``net`` stream).
        self.rng = rng
        # Registry instruments, cached so the transmit path pays one
        # attribute update per event (see repro.obs.registry).
        registry = sim.registry
        self.c_tx = registry.counter("net.tx")
        self.c_rx = registry.counter("net.rx")
        self.c_dropped = registry.counter("net.dropped")
        self.h_backoff = registry.histogram("net.mac_backoff_s")
        # (control_tx counter, control_bits counter) per router name.
        self._control_counters: Dict[str, Tuple[Any, Any]] = {}
        # (tx counter, delivered counter) per router name — the pair the
        # live SLO snapshot derives per-router delivery ratios from.
        self._route_counters: Dict[str, Tuple[Any, Any]] = {}

    # ------------------------------------------------------------- clock/rng

    @property
    def now(self) -> float:
        return self.sim.now

    def call_in(self, delay: float, fn: Callable[[], None]) -> Any:
        return self.sim.call_in(delay, fn)

    def call_in_fast(self, delay: float, fn: Callable[[], None]) -> None:
        """Fast-lane ``call_in`` for never-cancelled packet completions."""
        self.sim.call_in_fast(delay, fn)

    # ----------------------------------------------------------- emit hooks

    @property
    def tracer(self):
        """The active packet tracer, or ``None`` when tracing is off."""
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            return None
        return tracer

    def emit(self, category: str, **fields: Any) -> None:
        self.sim.trace.emit(category, **fields)

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.sim.metrics.incr(name, amount)

    def route_counters(self, node: "NetNode") -> Tuple[Any, Any]:
        """The ``(route.<name>.tx, route.<name>.delivered)`` counter pair
        for a node's router, cached per router name (one dict hit per
        transmission on the hot path, instrument creation only once)."""
        name = node.router.name if node.router is not None else "none"
        pair = self._route_counters.get(name)
        if pair is None:
            registry = self.sim.registry
            pair = (
                registry.counter(f"route.{name}.tx"),
                registry.counter(f"route.{name}.delivered"),
            )
            self._route_counters[name] = pair
        return pair

    def count_control(self, sender: "NetNode", packet: Packet) -> None:
        """Charge a non-DATA transmission to its router's control budget."""
        if packet.kind is PacketKind.DATA:
            return
        name = sender.router.name if sender.router is not None else "none"
        pair = self._control_counters.get(name)
        if pair is None:
            registry = self.sim.registry
            pair = (
                registry.counter(f"route.{name}.control_tx"),
                registry.counter(f"route.{name}.control_bits"),
            )
            self._control_counters[name] = pair
        pair[0].inc()
        pair[1].inc(packet.size_bits)


# ------------------------------------------------------------------- layers


#: Cap on the PHY pair-probability cache; mobile worlds churn positions
#: (a key component), so the cache resets rather than grows past this.
_PAIR_CACHE_MAX = 1 << 17


class PhyLayer(LayerBase):
    """PHY/channel layer: propagation, airtime, and delivery probability.

    Wraps a :class:`~repro.net.channel.Channel`; the per-bit timing comes
    from :meth:`Packet.airtime_s` so bits-vs-seconds conversion lives in
    exactly one place.

    Delivery probability is deterministic per ``(pair, positions, tx
    power, jamming state)``, so the layer caches it — on static worlds
    every rebroadcast after the first is a dict hit instead of the full
    path-loss/shadowing/SINR chain.  Keys are bare ``(sender_id,
    receiver_id)`` pairs (cheap int hashing on the hot path); validity of
    the position and jamming inputs is carried by the cache signature
    instead — the network's ``topology_version`` (bumped on every
    membership/position change) plus the channel's
    :meth:`~repro.net.channel.Channel.jam_signature` (which covers
    add/clear and in-place ``Jammer.active`` flips).  Any signature change
    drops the whole cache.
    """

    name = "phy"

    def __init__(self, channel: "Channel"):
        super().__init__()
        self.channel = channel
        self._pair_cache: Dict[Tuple, float] = {}
        self._pair_sig: Optional[Tuple] = None
        # (sender_id, receiver_id) -> propagation seconds; purely position
        # dependent, so validity is the network's topology_version alone.
        self._prop_cache: Dict[Tuple[int, int], float] = {}
        self._prop_version = -1

    def airtime_s(self, node: "NetNode", packet: Packet) -> float:
        return packet.airtime_s(node.bitrate_bps)

    def propagation_s(self, sender: "NetNode", receiver: "NetNode") -> float:
        assert self.ctx is not None
        version = self.ctx.network.topology_version
        if version != self._prop_version:
            self._prop_cache.clear()
            self._prop_version = version
        key = (sender.id, receiver.id)
        prop = self._prop_cache.get(key)
        if prop is None:
            prop = distance(sender.position, receiver.position) / SPEED_OF_LIGHT_M_S
            if len(self._prop_cache) >= _PAIR_CACHE_MAX:
                self._prop_cache.clear()
            self._prop_cache[key] = prop
        return prop

    def _live_pair_cache(self) -> Dict[Tuple, float]:
        assert self.ctx is not None
        signature = (
            self.ctx.network.topology_version,
            self.channel.jam_signature(),
        )
        if signature != self._pair_sig:
            self._pair_cache.clear()
            self._pair_sig = signature
        return self._pair_cache

    def delivery_probability(self, sender: "NetNode", receiver: "NetNode") -> float:
        cache = self._live_pair_cache()
        key = (sender.id, receiver.id)
        p = cache.get(key)
        if p is None:
            p = self.channel.delivery_probability(
                sender.tx_power_dbm,
                sender.position,
                receiver.position,
                sender.id,
                receiver.id,
            )
            if len(cache) >= _PAIR_CACHE_MAX:
                cache.clear()
            cache[key] = p
        return p

    def delivery_probability_batch(
        self, sender: "NetNode", receivers: Sequence["NetNode"]
    ) -> List[float]:
        """Delivery probability for every receiver of one transmission.

        Bit-identical to calling :meth:`delivery_probability` per
        receiver; cache misses go through the channel's fused batch
        kernel in one call instead of re-entering the scalar chain.
        """
        cache = self._live_pair_cache()
        sid = sender.id
        spos = sender.position
        spow = sender.tx_power_dbm
        get = cache.get
        out: List[Any] = []
        miss_idx: List[int] = []
        miss_keys: List[Tuple] = []
        miss_pos: List[Any] = []
        miss_ids: List[int] = []
        for i, receiver in enumerate(receivers):
            key = (sid, receiver.id)
            p = get(key)
            out.append(p)
            if p is None:
                miss_idx.append(i)
                miss_keys.append(key)
                miss_pos.append(receiver.position)
                miss_ids.append(receiver.id)
        if miss_idx:
            probs = self.channel.delivery_probability_batch(
                spow, spos, miss_pos, miss_ids, sid
            )
            if len(cache) + len(probs) >= _PAIR_CACHE_MAX:
                cache.clear()
            for i, key, p in zip(miss_idx, miss_keys, probs):
                cache[key] = p
                out[i] = p
        return out


class MacLayer(LayerBase):
    """Medium-access layer: channel-access grants against local load.

    Wraps a :class:`~repro.net.mac.ContentionMac` (or any object with its
    ``access(busy, rng) -> MacAccess`` surface) and feeds the backoff
    histogram at the boundary — one draw per grant, observed exactly once.
    """

    name = "mac"

    def __init__(self, mac: ContentionMac):
        super().__init__()
        self.mac = mac

    def grant(self, busy_neighbors: int) -> MacAccess:
        assert self.ctx is not None
        access = self.mac.access(busy_neighbors, self.ctx.rng)
        self.ctx.h_backoff.observe(access.backoff_s)
        return access


class QueueLayer(LayerBase):
    """Transmit-queue layer: in-flight occupancy used for load estimates.

    ``busy_tx`` on each node counts concurrent in-flight transmissions;
    neighbors' occupancy is what the mean-field MAC charges contention
    against.
    """

    name = "queue"

    def __init__(self) -> None:
        super().__init__()
        # sender_id -> that node's live neighbor objects; resolving the id
        # list to objects once per (topology, liveness) era turns the
        # per-transmission load scan into bare attribute reads.
        self._nbr_nodes: Dict[int, List["NetNode"]] = {}
        self._nbr_sig: Tuple[int, int] = (-1, -1)

    def busy_neighbors(self, sender: "NetNode") -> int:
        assert self.ctx is not None
        network = self.ctx.network
        sig = (network.topology_version, network.liveness_version)
        if sig != self._nbr_sig:
            self._nbr_nodes.clear()
            self._nbr_sig = sig
        neighbors = self._nbr_nodes.get(sender.id)
        if neighbors is None:
            nodes = network.nodes
            neighbors = [
                nodes[nid] for nid in network.neighbors(sender.id) if nid in nodes
            ]
            self._nbr_nodes[sender.id] = neighbors
        return sum([n.busy_tx for n in neighbors])

    def begin_tx(self, sender: "NetNode") -> None:
        sender.busy_tx += 1

    def end_tx(self, sender: "NetNode") -> None:
        sender.busy_tx = max(0, sender.busy_tx - 1)


class FaultLayer(LayerBase):
    """Fault plug-in point: link cuts, partitions, and packet gremlins.

    This is where :mod:`repro.faults` hooks into the stack — exactly once,
    at the PHY/MAC boundary — instead of each transmit path re-implementing
    blocked-link and gremlin checks.  State lives here; the network exposes
    its historical ``block_link`` / ``add_gremlin`` API by delegation.
    """

    name = "faults"

    def __init__(self) -> None:
        super().__init__()
        self.blocked_links: set[Tuple[int, int]] = set()
        self.partitions: List[Dict[int, int]] = []
        self.gremlins: List[Any] = []

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def block_link(self, a: int, b: int) -> None:
        assert self.ctx is not None
        key = self._link_key(a, b)
        if key not in self.blocked_links:
            self.blocked_links.add(key)
            self.ctx.emit("net.link_down", a=key[0], b=key[1])

    def unblock_link(self, a: int, b: int) -> None:
        assert self.ctx is not None
        key = self._link_key(a, b)
        if key in self.blocked_links:
            self.blocked_links.discard(key)
            self.ctx.emit("net.link_up", a=key[0], b=key[1])

    def add_partition(self, groups: Dict[int, int]) -> None:
        assert self.ctx is not None
        self.partitions.append(groups)
        self.ctx.emit("net.partition_on", groups=len(set(groups.values())))

    def remove_partition(self, groups: Dict[int, int]) -> None:
        assert self.ctx is not None
        if groups in self.partitions:
            self.partitions.remove(groups)
            self.ctx.emit("net.partition_off")

    def link_blocked(self, a: int, b: int) -> bool:
        """True when a fault (link cut or partition) severs the pair."""
        if self.blocked_links and self._link_key(a, b) in self.blocked_links:
            return True
        for groups in self.partitions:
            ga = groups.get(a)
            gb = groups.get(b)
            if ga is not None and gb is not None and ga != gb:
                return True
        return False

    def add_gremlin(self, gremlin: Any) -> None:
        if gremlin not in self.gremlins:
            self.gremlins.append(gremlin)

    def remove_gremlin(self, gremlin: Any) -> None:
        if gremlin in self.gremlins:
            self.gremlins.remove(gremlin)

    def gremlin_verdict(
        self, sender_id: int, receiver_id: int, packet: Packet
    ) -> Optional[Tuple[bool, bool, bool, float]]:
        """Combined packet-gremlin verdict for one hop, or ``None``.

        Drop/corrupt/duplicate OR together across installed gremlins; extra
        delays add.  Returns ``(drop, duplicate, corrupt, extra_delay_s)``.
        """
        if not self.gremlins:
            return None
        drop = duplicate = corrupt = False
        extra_delay = 0.0
        for gremlin in self.gremlins:
            verdict = gremlin.judge(sender_id, receiver_id, packet)
            if verdict is None:
                continue
            drop = drop or verdict.drop
            duplicate = duplicate or verdict.duplicate
            corrupt = corrupt or verdict.corrupt
            extra_delay += verdict.extra_delay_s
        if not (drop or duplicate or corrupt or extra_delay > 0.0):
            return None
        return drop, duplicate, corrupt, extra_delay


class RoutingLayer(LayerBase):
    """Adapter putting a :class:`~repro.net.routing.base.Router` in the
    stack's routing slot.  Down-calls map ``on_send`` to the router's
    ``send``; up-calls go to the router's own ``on_receive``."""

    name = "routing"

    def __init__(self, router: RouterPort):
        super().__init__()
        self.router = router

    def on_send(self, node: "NetNode", packet: Packet) -> None:
        self.router.send(node.id, packet)

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None:
        self.router.on_receive(node, packet, from_id)

    def on_timer(self, now: float) -> None:
        timer = getattr(self.router, "on_timer", None)
        if timer is not None:
            timer(now)


class TransportLayer(LayerBase):
    """Adapter putting a transport service (:class:`MessageService` /
    :class:`ReliableMessageService`) in the stack's transport slot."""

    name = "transport"

    def __init__(self, service: TransportPort):
        super().__init__()
        self.service = service

    def on_send(self, node: "NetNode", packet: Packet) -> None:
        self.service.send(node.id, packet.dst, packet.payload)

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None:
        # Transports register per-kind node handlers; delivery reaches them
        # through the app layer.  Nothing extra to do on the adapter.
        pass


class AppLayer(LayerBase):
    """Top of the stack: sniffer taps, router up-call, local handlers.

    A delivery climbs the stack here: energy is charged, promiscuous
    sniffers observe the frame, then the receiving node's router (or, for
    router-less nodes, the local handler table) takes over.
    """

    name = "app"

    def __init__(self) -> None:
        super().__init__()
        self.sniffers: List[Sniffer] = []

    def add_sniffer(self, fn: Sniffer) -> None:
        self.sniffers.append(fn)

    def deliver(self, receiver: "NetNode", packet: Packet, from_id: int) -> None:
        if receiver.energy_hook:
            receiver.energy_hook(0.0, packet.size_bits)
        for sniffer in self.sniffers:
            sniffer(packet, from_id, receiver.id)
        if receiver.router is not None:
            receiver.router.on_receive(receiver, packet, from_id)
        else:
            receiver.deliver_local(packet, from_id)

    def on_receive(self, node: "NetNode", packet: Packet, from_id: int) -> None:
        self.deliver(node, packet, from_id)


# --------------------------------------------------------------- dispatcher


class FastPathDispatcher:
    """The batched per-packet hot path over the stack's layers.

    One dispatch loop implements both transmit entry points: ``unicast``
    (link-layer-acked single receiver) and ``broadcast`` (a batch of
    independent receiver draws under one channel-access grant).  The layer
    hooks fire in fixed bottom-up/top-down order — queue -> MAC -> PHY ->
    faults on the way down, PHY -> app on the way up — with tracing and
    metrics at the boundaries.

    Every branch, RNG draw, and scheduled delay mirrors the pre-refactor
    ``Network.send`` / ``Network.broadcast`` exactly; the golden-fingerprint
    regression test holds this dispatcher to bit-identical traces.
    """

    def __init__(
        self,
        ctx: StackContext,
        phy: PhyLayer,
        mac: MacLayer,
        queue: QueueLayer,
        faults: FaultLayer,
        app: AppLayer,
    ):
        self.ctx = ctx
        self.phy = phy
        self.mac = mac
        self.queue = queue
        self.faults = faults
        self.app = app
        # Resolved once per dispatcher: whether broadcast draws come as one
        # numpy slab (bit-identical to sequential draws) or one at a time.
        self._fast = fastpath.fast_path_enabled()

    # ---------------------------------------------------------- shared core

    def _hop_verdict(
        self,
        sender: "NetNode",
        receiver: "NetNode",
        packet: Packet,
        survival: float,
    ) -> Tuple[bool, Optional[str], bool, bool, float]:
        """One receiver's delivery draw plus the fault-layer verdicts.

        Returns ``(success, drop_reason, duplicate, corrupt, extra_delay)``.
        Exactly one RNG draw (the delivery Bernoulli) unless gremlins add
        their own from their named stream.
        """
        ctx = self.ctx
        p_ok = self.phy.delivery_probability(sender, receiver) * survival
        if ctx.rng.random() >= p_ok:
            return False, "loss", False, False, 0.0
        if self.faults.link_blocked(sender.id, receiver.id):
            ctx.incr("net.link_blocked")
            return False, "link_blocked", False, False, 0.0
        verdict = self.faults.gremlin_verdict(sender.id, receiver.id, packet)
        if verdict is not None:
            drop, duplicate, corrupt, extra_delay = verdict
            if drop:
                return False, "gremlin", duplicate, corrupt, extra_delay
            return True, None, duplicate, corrupt, extra_delay
        return True, None, False, False, 0.0

    def _charge_tx(self, sender: "NetNode", packet: Packet) -> None:
        """Per-transmission accounting at the queue/MAC boundary."""
        ctx = self.ctx
        ctx.incr("net.tx_attempts")
        ctx.c_tx.inc()
        ctx.route_counters(sender)[0].inc()
        ctx.count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        self.queue.begin_tx(sender)

    def _deliver_up(
        self,
        receiver: "NetNode",
        packet: Packet,
        sender_id: int,
        duplicate: bool,
    ) -> None:
        """Successful reception: PHY -> app climb, duplicate fan-in."""
        ctx = self.ctx
        ctx.incr("net.tx_success")
        ctx.c_rx.inc()
        ctx.route_counters(receiver)[1].inc()
        self.app.deliver(receiver, packet, sender_id)
        if duplicate:
            ctx.incr("net.rx_duplicated")
            if receiver.up:
                self.app.deliver(receiver, packet, sender_id)

    # -------------------------------------------------------------- unicast

    def unicast(
        self,
        sender: "NetNode",
        receiver: "NetNode",
        packet: Packet,
        on_result: Optional[SendResult] = None,
    ) -> None:
        """Acked single-receiver dispatch (the batch-of-one fast path)."""
        ctx = self.ctx
        tracer = ctx.tracer
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender.id, "sender_down")
            if on_result:
                on_result(False)
            return
        sender_id = sender.id
        receiver_id = receiver.id
        # Down the stack: queue load -> MAC grant -> PHY timing.
        busy = self.queue.busy_neighbors(sender)
        access = self.mac.grant(busy)
        backoff = access.backoff_s
        airtime = self.phy.airtime_s(sender, packet)
        prop = self.phy.propagation_s(sender, receiver)
        delay = backoff + airtime + prop
        # Delivery draw + fault verdicts (order matches the legacy path:
        # the draw is skipped entirely when the receiver is already down).
        p_ok = self.phy.delivery_probability(sender, receiver) * access.collision_survival
        drop_reason: Optional[str] = None
        if not receiver.up:
            success = False
            drop_reason = "receiver_down"
        elif ctx.rng.random() < p_ok:
            success = True
        else:
            success = False
            drop_reason = "loss"
        if success and self.faults.link_blocked(sender_id, receiver_id):
            success = False
            drop_reason = "link_blocked"
            ctx.incr("net.link_blocked")
        duplicate = corrupt = False
        extra_delay = 0.0
        if success:
            verdict = self.faults.gremlin_verdict(sender_id, receiver_id, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                delay += extra_delay
                if drop:
                    success = False
                    drop_reason = "gremlin"
        self._charge_tx(sender, packet)
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id, receiver_id, packet, backoff, airtime, prop, extra_delay
            )

        def complete() -> None:
            self.queue.end_tx(sender)
            if success and receiver.up:
                if corrupt:
                    # Failed checksum: airtime was spent but the frame is
                    # discarded at the receiver, and the link-layer ack fails.
                    ctx.incr("net.rx_corrupt")
                    ctx.c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, receiver_id, "corrupt")
                    if on_result:
                        on_result(False)
                    return
                if token is not None:
                    tracer.on_rx(token, packet, sender_id, receiver_id, extra_delay)
                self._deliver_up(receiver, packet, sender_id, duplicate)
                if on_result:
                    on_result(True)
            else:
                ctx.incr("net.tx_failed")
                ctx.c_dropped.inc()
                if token is not None:
                    tracer.on_drop(
                        token,
                        sender_id,
                        receiver_id,
                        drop_reason or "receiver_down",
                    )
                if on_result:
                    on_result(False)

        ctx.call_in_fast(delay, complete)

    # ------------------------------------------------------------ broadcast

    def broadcast(self, sender: "NetNode", neighbor_ids: Sequence[int], packet: Packet) -> int:
        """Batched fan-out under one channel-access grant (no acks).

        Each receiver's reception is drawn independently inside one loop;
        the whole batch shares the sender's backoff and airtime.
        """
        ctx = self.ctx
        tracer = ctx.tracer
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender.id, "sender_down")
            return 0
        sender_id = sender.id
        busy = self.queue.busy_neighbors(sender)
        access = self.mac.grant(busy)
        backoff = access.backoff_s
        airtime = self.phy.airtime_s(sender, packet)
        base_delay = backoff + airtime
        self._charge_tx(sender, packet)
        survival = access.collision_survival
        token = None
        if tracer is not None:
            # One hop span covers the whole broadcast; each receiver's
            # reception (or loss) is recorded against it individually.
            token = tracer.on_enqueue(sender_id, None, packet, backoff, airtime)
        # The batch: per receiver (node_id, corrupt, duplicate, extra_delay_s).
        # This loop is the dispatch hot path at scale (every flood rebroad-
        # cast walks it once per neighbor).  Probabilities come from the
        # PHY pair cache / fused channel kernel in one call, the delivery
        # Bernoullis as one RNG slab (``Generator.random(n)`` yields the
        # same doubles as n sequential ``random()`` calls, so the draw-
        # per-receiver contract of the scalar path is preserved exactly),
        # and the verdicts as one batched compare.
        nodes = ctx.network.nodes
        receivers = [nodes[nid] for nid in neighbor_ids]
        probs = self.phy.delivery_probability_batch(sender, receivers)
        n = len(receivers)
        if self._fast:
            draws = ctx.rng.random(n)
        else:
            rng_random = ctx.rng.random
            draws = [rng_random() for _ in range(n)]
        verdicts = self.phy.channel.delivery_verdicts(probs, draws, survival=survival)
        link_blocked = self.faults.link_blocked
        gremlin_verdict = (
            self.faults.gremlin_verdict if self.faults.gremlins else None
        )
        c_dropped = ctx.c_dropped
        deliveries: List[Tuple[int, bool, bool, float]] = []
        # Failed receptions are all decided inside this one event, with no
        # other trace emissions in between, so they are collected and
        # emitted as one batch after the loop — same records, same order,
        # one tracer call instead of one per lost receiver.
        drops: List[Tuple[int, str]] = []
        for nid, delivered in zip(neighbor_ids, verdicts):
            if not delivered:
                c_dropped.inc()
                if token is not None:
                    drops.append((nid, "loss"))
                continue
            if link_blocked(sender_id, nid):
                ctx.incr("net.link_blocked")
                c_dropped.inc()
                if token is not None:
                    drops.append((nid, "link_blocked"))
                continue
            corrupt = duplicate = False
            extra_delay = 0.0
            if gremlin_verdict is not None:
                verdict = gremlin_verdict(sender_id, nid, packet)
                if verdict is not None:
                    drop, duplicate, corrupt, extra_delay = verdict
                    if drop:
                        c_dropped.inc()
                        if token is not None:
                            drops.append((nid, "gremlin"))
                        continue
            deliveries.append((nid, corrupt, duplicate, extra_delay))
        if drops:
            tracer.on_drops(token, sender_id, drops)

        def deliver_one(
            nid: int, corrupt: bool, duplicate: bool, extra_delay: float
        ) -> None:
            receiver = nodes.get(nid)
            if receiver is None or not receiver.up:
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "receiver_down")
                return
            if corrupt:
                ctx.incr("net.rx_corrupt")
                ctx.c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "corrupt")
                return
            if token is not None:
                tracer.on_rx(token, packet, sender_id, nid, extra_delay)
            self._deliver_up(receiver, packet, sender_id, duplicate)

        def complete() -> None:
            self.queue.end_tx(sender)
            for nid, corrupt, duplicate, extra_delay in deliveries:
                if extra_delay > 0.0:
                    ctx.call_in_fast(
                        extra_delay,
                        lambda n=nid, c=corrupt, d=duplicate, e=extra_delay: (
                            deliver_one(n, c, d, e)
                        ),
                    )
                else:
                    deliver_one(nid, corrupt, duplicate, 0.0)

        ctx.call_in_fast(base_delay, complete)
        return len(neighbor_ids)


# -------------------------------------------------------------------- stack


class NetworkStack:
    """The assembled layered pipeline of one network.

    Owns the context, the mandatory bottom layers (PHY, MAC, queue, faults,
    app), the optional routing/transport slots, and the fast-path
    dispatcher.  :class:`~repro.net.node.Network` builds a default stack at
    construction and delegates its transmit and fault APIs here.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        *,
        channel: "Channel",
        mac: ContentionMac,
        rng: "np.random.Generator",
    ):
        self.ctx = StackContext(sim, network, rng)
        self.phy = PhyLayer(channel)
        self.mac = MacLayer(mac)
        self.queue = QueueLayer()
        self.faults = FaultLayer()
        self.app = AppLayer()
        #: Optional slots filled by composition (registry / builder).
        self.routing: Optional[RoutingLayer] = None
        self.transport: Optional[TransportLayer] = None
        for layer in (self.phy, self.mac, self.queue, self.faults, self.app):
            layer.attach(self.ctx)
        self.dispatcher = FastPathDispatcher(
            self.ctx, self.phy, self.mac, self.queue, self.faults, self.app
        )

    # ------------------------------------------------------------- pipeline

    @property
    def layers(self) -> List[Layer]:
        """Bottom-up pipeline view (only filled slots appear)."""
        out: List[Layer] = [self.phy, self.mac, self.queue]
        if self.routing is not None:
            out.append(self.routing)
        if self.transport is not None:
            out.append(self.transport)
        out.append(self.app)
        return out

    def set_router(self, router: RouterPort) -> RoutingLayer:
        """Fill the routing slot with an adapter around ``router``."""
        layer = RoutingLayer(router)
        layer.attach(self.ctx)
        self.routing = layer
        return layer

    def set_transport(self, service: TransportPort) -> TransportLayer:
        """Fill the transport slot with an adapter around ``service``."""
        layer = TransportLayer(service)
        layer.attach(self.ctx)
        self.transport = layer
        return layer

    def on_timer(self, now: float) -> None:
        """Propagate a maintenance tick through every layer, bottom-up."""
        for layer in self.layers:
            layer.on_timer(now)

    def __repr__(self) -> str:
        names = "->".join(layer.name for layer in self.layers)
        return f"NetworkStack({names})"
