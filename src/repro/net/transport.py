"""Message transport over any router.

:class:`MessageService` gives applications a simple ``send -> receipt``
abstraction and aggregates delivery statistics (delivery ratio, latency,
hop count, transmissions per delivery) that the experiments report.

:class:`ReliableMessageService` layers an end-to-end reliability protocol
on top of the same router substrate: destinations acknowledge with
:attr:`~repro.net.packet.PacketKind.ACK` packets, unacked messages are
retransmitted with exponential backoff plus seeded jitter up to a bounded
retry budget, receivers suppress duplicates, and every message carries a
:class:`MessageFate` (``delivered`` / ``gave_up`` / ``in_flight``) so
degradation under faults is measurable (retransmit rate, goodput).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.net.node import NetNode, Network
from repro.net.packet import Packet, PacketKind
from repro.net.routing.base import Router
from repro.sim.event import Event
from repro.util.stats import summarize

__all__ = [
    "DeliveryReceipt",
    "MessageService",
    "MessageFate",
    "ReliableMessageService",
]


@dataclass
class DeliveryReceipt:
    """Tracks the fate of one application message."""

    uid: int
    src: int
    dst: Optional[int]
    sent_at: float
    delivered_at: Optional[float] = None
    hops: Optional[int] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


class MessageService:
    """Application-level messaging bound to one router.

    The service installs a DATA handler on every node the router is attached
    to; user callbacks can be registered per destination node.
    """

    def __init__(self, router: Router):
        self.router = router
        self.network: Network = router.network
        self.sim = router.sim
        self.receipts: Dict[int, DeliveryReceipt] = {}
        # Multiple services (tracking, health, ...) may share one transport
        # and register on the same node, so handlers are multicast lists —
        # a single-slot dict would silently drop earlier subscribers.
        self._user_handlers: Dict[int, List[Callable[[Packet], None]]] = {}
        for node in router.attached.values():
            self._install(node)

    def _install(self, node: NetNode) -> None:
        node.on(PacketKind.DATA, self._on_data)

    def attach(self, node_id: int) -> None:
        """Attach a node to the router and this service."""
        self.router.attach(node_id)
        self._install(self.network.node(node_id))

    def on_message(self, node_id: int, handler: Callable[[Packet], None]) -> None:
        """Subscribe ``handler`` to messages arriving at ``node_id``.

        Subscriptions are additive: every registered handler runs.
        """
        self._user_handlers.setdefault(node_id, []).append(handler)

    def send(
        self,
        src: int,
        dst: Optional[int],
        payload: Any = None,
        *,
        size_bits: int = 2048,
        ttl: int = 32,
    ) -> DeliveryReceipt:
        packet = Packet(
            src=src,
            dst=dst,
            kind=PacketKind.DATA,
            payload=payload,
            size_bits=size_bits,
            ttl=ttl,
        )
        receipt = DeliveryReceipt(
            uid=packet.uid, src=src, dst=dst, sent_at=self.sim.now
        )
        self.receipts[packet.uid] = receipt
        self.router.send(src, packet)
        return receipt

    def _on_data(self, node: NetNode, packet: Packet, from_id: int) -> None:
        receipt = self.receipts.get(packet.uid)
        if receipt is not None and receipt.delivered_at is None:
            if receipt.dst is None or receipt.dst == node.id:
                receipt.delivered_at = self.sim.now
                receipt.hops = packet.hops
        for handler in self._user_handlers.get(node.id, ()):
            handler(packet)

    # ------------------------------------------------------------- statistics

    def delivery_ratio(self) -> float:
        if not self.receipts:
            return float("nan")
        done = sum(1 for r in self.receipts.values() if r.delivered)
        return done / len(self.receipts)

    def latency_summary(self) -> Dict[str, float]:
        lat = [
            r.latency_s for r in self.receipts.values() if r.latency_s is not None
        ]
        return summarize(lat)

    def hops_summary(self) -> Dict[str, float]:
        hops = [float(r.hops) for r in self.receipts.values() if r.hops is not None]
        return summarize(hops)

    def transmissions_per_delivery(self) -> float:
        delivered = sum(1 for r in self.receipts.values() if r.delivered)
        if delivered == 0:
            # NaN, matching delivery_ratio's no-data convention (and staying
            # JSON-guardable: benchmarks map non-finite values to null).
            return float("nan")
        return self.sim.metrics.counter("net.tx_attempts") / delivered


# --------------------------------------------------------------- reliability


@dataclass
class MessageFate:
    """End-to-end fate accounting for one reliably-sent message."""

    msg_id: int
    src: int
    dst: int
    size_bits: int
    sent_at: float
    attempts: int = 0
    delivered_at: Optional[float] = None
    gave_up_at: Optional[float] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def state(self) -> str:
        if self.delivered_at is not None:
            return "delivered"
        if self.gave_up_at is not None:
            return "gave_up"
        return "in_flight"

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    @property
    def retransmits(self) -> int:
        return max(0, self.attempts - 1)


class ReliableMessageService:
    """Acknowledged, retransmitting unicast transport over any router.

    Protocol: each application message gets a transport-level ``msg_id``
    carried in the packet headers.  The destination replies with an ACK
    packet routed back to the source; until the ACK arrives the sender
    retransmits after ``base_rto_s * backoff**attempt`` plus seeded jitter
    (fresh packet uid per attempt, so duplicate-suppressing routers forward
    retries), up to ``max_retries`` retransmissions before declaring the
    message ``gave_up``.  Receivers ACK every copy but deliver each message
    to the application exactly once.

    All timing randomness comes from the named ``transport.reliable`` RNG
    stream — reliable runs stay bit-reproducible from the seed.
    """

    def __init__(
        self,
        router: Router,
        *,
        base_rto_s: float = 3.0,
        backoff: float = 2.0,
        max_retries: int = 5,
        jitter_s: float = 0.5,
        ack_size_bits: int = 128,
    ):
        if base_rto_s <= 0:
            raise ConfigurationError("base_rto_s must be positive")
        if backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.router = router
        self.network: Network = router.network
        self.sim = router.sim
        self.base_rto_s = base_rto_s
        self.backoff = backoff
        self.max_retries = max_retries
        self.jitter_s = jitter_s
        self.ack_size_bits = ack_size_bits
        self.fates: Dict[int, MessageFate] = {}
        self._payloads: Dict[int, Any] = {}
        self._ttls: Dict[int, int] = {}
        self._timers: Dict[int, Event] = {}
        # Receiver-side duplicate suppression: node -> delivered msg_ids.
        self._seen: Dict[int, Set[int]] = {}
        self._user_handlers: Dict[int, List[Callable[[Packet], None]]] = {}
        self._rng = self.sim.rng.get("transport.reliable")
        # Per-service counter (not process-global): msg ids appear in trace
        # records, and identical seeds must reproduce identical traces.
        self._msg_ids = itertools.count(1)
        for node in router.attached.values():
            self._install(node)

    def _install(self, node: NetNode) -> None:
        node.on(PacketKind.DATA, self._on_data)
        node.on(PacketKind.ACK, self._on_ack)

    def attach(self, node_id: int) -> None:
        """Attach a node to the router and this service."""
        self.router.attach(node_id)
        self._install(self.network.node(node_id))

    def on_message(self, node_id: int, handler: Callable[[Packet], None]) -> None:
        """Subscribe ``handler`` to messages first arriving at ``node_id``."""
        self._user_handlers.setdefault(node_id, []).append(handler)

    # ------------------------------------------------------------------- send

    def send(
        self,
        src: int,
        dst: int,
        payload: Any = None,
        *,
        size_bits: int = 2048,
        ttl: int = 32,
    ) -> MessageFate:
        if dst is None:
            raise ConfigurationError(
                "reliable transport is unicast; broadcast cannot be acked"
            )
        msg_id = next(self._msg_ids)
        fate = MessageFate(
            msg_id=msg_id,
            src=src,
            dst=dst,
            size_bits=size_bits,
            sent_at=self.sim.now,
        )
        self.fates[msg_id] = fate
        self._payloads[msg_id] = payload
        self._ttls[msg_id] = ttl
        self._transmit(fate)
        return fate

    def _transmit(self, fate: MessageFate) -> None:
        fate.attempts += 1
        if fate.attempts > 1:
            self.sim.metrics.incr("transport.reliable.retransmit")
        packet = Packet(
            src=fate.src,
            dst=fate.dst,
            kind=PacketKind.DATA,
            payload=self._payloads.get(fate.msg_id),
            size_bits=fate.size_bits,
            ttl=self._ttls.get(fate.msg_id, 32),
            headers={"rmsg": fate.msg_id},
        )
        tracer = self.sim.packet_tracer
        if tracer is not None and tracer.enabled and fate.attempts > 1:
            # Each retry is a fresh packet (fresh uid, fresh trace); the
            # shared rmsg header is what groups the attempts into one flow.
            tracer.on_retransmit(
                packet,
                fate.src,
                attempt=fate.attempts,
                layer="transport",
                msg_id=fate.msg_id,
            )
        self.router.send(fate.src, packet)
        rto = self.base_rto_s * self.backoff ** (fate.attempts - 1)
        rto += self.jitter_s * float(self._rng.random())
        self._timers[fate.msg_id] = self.sim.call_in(
            rto, lambda: self._on_timeout(fate.msg_id)
        )

    def _on_timeout(self, msg_id: int) -> None:
        fate = self.fates.get(msg_id)
        if fate is None or fate.state != "in_flight":
            return
        if fate.attempts > self.max_retries:
            fate.gave_up_at = self.sim.now
            self._forget(msg_id)
            self.sim.trace.emit("transport.gave_up", msg=msg_id, dst=fate.dst)
            self.sim.metrics.incr("transport.reliable.gave_up")
            return
        self._transmit(fate)

    def _forget(self, msg_id: int) -> None:
        self._payloads.pop(msg_id, None)
        self._ttls.pop(msg_id, None)
        timer = self._timers.pop(msg_id, None)
        if timer is not None:
            timer.cancel()

    # ---------------------------------------------------------------- receive

    def _on_data(self, node: NetNode, packet: Packet, from_id: int) -> None:
        msg_id = packet.headers.get("rmsg")
        if msg_id is None or packet.dst != node.id:
            return
        seen = self._seen.setdefault(node.id, set())
        if msg_id in seen:
            self.sim.metrics.incr("transport.reliable.dup_suppressed")
        else:
            seen.add(msg_id)
            for handler in self._user_handlers.get(node.id, ()):
                handler(packet)
        # Every copy is (re-)acked: the earlier ACK may have been lost.
        ack = Packet(
            src=node.id,
            dst=packet.src,
            kind=PacketKind.ACK,
            size_bits=self.ack_size_bits,
            ttl=self._ttls.get(msg_id, 32),
            headers={"rmsg": msg_id},
        )
        tracer = self.sim.packet_tracer
        if tracer is not None and tracer.enabled:
            tracer.inherit(packet, ack)  # the ACK is spawned by the DATA rx
        self.sim.metrics.incr("transport.reliable.ack_tx")
        self.router.send(node.id, ack)

    def _on_ack(self, node: NetNode, packet: Packet, from_id: int) -> None:
        msg_id = packet.headers.get("rmsg")
        fate = self.fates.get(msg_id)
        if fate is None or node.id != fate.src:
            return
        if fate.delivered_at is not None:
            return
        # An ACK that outruns a concurrent give-up still proves delivery.
        fate.gave_up_at = None
        fate.delivered_at = self.sim.now
        self._forget(msg_id)
        self.sim.metrics.incr("transport.reliable.delivered")

    # ------------------------------------------------------------- statistics

    def delivery_ratio(self) -> float:
        if not self.fates:
            return float("nan")
        done = sum(1 for f in self.fates.values() if f.delivered)
        return done / len(self.fates)

    def fate_counts(self) -> Dict[str, int]:
        counts = {"delivered": 0, "gave_up": 0, "in_flight": 0}
        for fate in self.fates.values():
            counts[fate.state] += 1
        return counts

    def latency_summary(self) -> Dict[str, float]:
        lat = [f.latency_s for f in self.fates.values() if f.latency_s is not None]
        return summarize(lat)

    def retransmit_rate(self) -> float:
        """Fraction of transport sends that were retransmissions."""
        attempts = sum(f.attempts for f in self.fates.values())
        if attempts == 0:
            return float("nan")
        return sum(f.retransmits for f in self.fates.values()) / attempts

    def goodput_bps(self, horizon_s: float) -> float:
        """Application bits delivered (once each) per second of the run."""
        if horizon_s <= 0:
            return float("nan")
        bits = sum(f.size_bits for f in self.fates.values() if f.delivered)
        return bits / horizon_s

    def transmissions_per_delivery(self) -> float:
        delivered = sum(1 for f in self.fates.values() if f.delivered)
        if delivered == 0:
            return float("nan")
        return self.sim.metrics.counter("net.tx_attempts") / delivered


# Registry hookup: transports addressable by name in stack compositions
# (StackSpec.transport="basic" / "reliable").
from repro.net.registry import register  # noqa: E402  (registration epilogue)

MessageService.name = "basic"
ReliableMessageService.name = "reliable"
register("transport", MessageService.name, MessageService)
register("transport", ReliableMessageService.name, ReliableMessageService)
