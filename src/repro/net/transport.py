"""Message transport over any router.

:class:`MessageService` gives applications a simple ``send -> receipt``
abstraction and aggregates delivery statistics (delivery ratio, latency,
hop count, transmissions per delivery) that the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.net.node import NetNode, Network
from repro.net.packet import Packet, PacketKind
from repro.net.routing.base import Router
from repro.util.stats import summarize

__all__ = ["DeliveryReceipt", "MessageService"]


@dataclass
class DeliveryReceipt:
    """Tracks the fate of one application message."""

    uid: int
    src: int
    dst: Optional[int]
    sent_at: float
    delivered_at: Optional[float] = None
    hops: Optional[int] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


class MessageService:
    """Application-level messaging bound to one router.

    The service installs a DATA handler on every node the router is attached
    to; user callbacks can be registered per destination node.
    """

    def __init__(self, router: Router):
        self.router = router
        self.network: Network = router.network
        self.sim = router.sim
        self.receipts: Dict[int, DeliveryReceipt] = {}
        # Multiple services (tracking, health, ...) may share one transport
        # and register on the same node, so handlers are multicast lists —
        # a single-slot dict would silently drop earlier subscribers.
        self._user_handlers: Dict[int, List[Callable[[Packet], None]]] = {}
        for node in router.attached.values():
            self._install(node)

    def _install(self, node: NetNode) -> None:
        node.on(PacketKind.DATA, self._on_data)

    def attach(self, node_id: int) -> None:
        """Attach a node to the router and this service."""
        self.router.attach(node_id)
        self._install(self.network.node(node_id))

    def on_message(self, node_id: int, handler: Callable[[Packet], None]) -> None:
        """Subscribe ``handler`` to messages arriving at ``node_id``.

        Subscriptions are additive: every registered handler runs.
        """
        self._user_handlers.setdefault(node_id, []).append(handler)

    def send(
        self,
        src: int,
        dst: Optional[int],
        payload: Any = None,
        *,
        size_bits: int = 2048,
        ttl: int = 32,
    ) -> DeliveryReceipt:
        packet = Packet(
            src=src,
            dst=dst,
            kind=PacketKind.DATA,
            payload=payload,
            size_bits=size_bits,
            ttl=ttl,
        )
        receipt = DeliveryReceipt(
            uid=packet.uid, src=src, dst=dst, sent_at=self.sim.now
        )
        self.receipts[packet.uid] = receipt
        self.router.send(src, packet)
        return receipt

    def _on_data(self, node: NetNode, packet: Packet, from_id: int) -> None:
        receipt = self.receipts.get(packet.uid)
        if receipt is not None and receipt.delivered_at is None:
            if receipt.dst is None or receipt.dst == node.id:
                receipt.delivered_at = self.sim.now
                receipt.hops = packet.hops
        for handler in self._user_handlers.get(node.id, ()):
            handler(packet)

    # ------------------------------------------------------------- statistics

    def delivery_ratio(self) -> float:
        if not self.receipts:
            return float("nan")
        done = sum(1 for r in self.receipts.values() if r.delivered)
        return done / len(self.receipts)

    def latency_summary(self) -> Dict[str, float]:
        lat = [
            r.latency_s for r in self.receipts.values() if r.latency_s is not None
        ]
        return summarize(lat)

    def hops_summary(self) -> Dict[str, float]:
        hops = [float(r.hops) for r in self.receipts.values() if r.hops is not None]
        return summarize(hops)

    def transmissions_per_delivery(self) -> float:
        delivered = sum(1 for r in self.receipts.values() if r.delivered)
        if delivered == 0:
            return float("inf")
        return self.sim.metrics.counter("net.tx_attempts") / delivered
