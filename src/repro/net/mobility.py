"""Mobility models.

Each model produces successive positions for one node via ``step(dt, rng)``.
The :class:`MobilityManager` drives all models on a fixed update period and
invalidates the network's spatial index once per sweep (not once per node).

Models implemented (the standard MANET set):

* :class:`StaticMobility` — fixed emplacements (unattended ground sensors).
* :class:`RandomWaypoint` — dismounted/vehicle free movement.
* :class:`ManhattanGrid` — movement constrained to urban street grids
  (the paper's mega-city environment).
* :class:`GroupMobility` — reference-point group mobility (squads/platoons
  following a leader).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net.node import Network
from repro.sim.kernel import Simulator
from repro.util.geometry import Point, Region

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomWaypoint",
    "ManhattanGrid",
    "GroupMobility",
    "MobilityManager",
]


class MobilityModel:
    """Base class: one instance per node, owns that node's motion state."""

    def __init__(self, position: Point):
        self.position = position

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        """Advance ``dt`` seconds and return the new position."""
        raise NotImplementedError


class StaticMobility(MobilityModel):
    """A node that never moves."""

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        return self.position


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint: pick a point, travel at a drawn speed, pause."""

    def __init__(
        self,
        position: Point,
        region: Region,
        *,
        speed_range: Tuple[float, float] = (0.5, 2.0),
        pause_range: Tuple[float, float] = (0.0, 10.0),
    ):
        super().__init__(position)
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ConfigurationError(f"bad speed_range {speed_range}")
        self.region = region
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._target: Optional[Point] = None
        self._speed = 0.0
        self._pause_left = 0.0

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        remaining = dt
        while remaining > 0:
            if self._pause_left > 0:
                used = min(self._pause_left, remaining)
                self._pause_left -= used
                remaining -= used
                continue
            if self._target is None:
                self._target = self.region.sample(rng)
                self._speed = float(rng.uniform(*self.speed_range))
            dist_left = self.position.distance_to(self._target)
            travel_time = dist_left / self._speed if self._speed > 0 else math.inf
            if travel_time <= remaining:
                self.position = self._target
                self._target = None
                self._pause_left = float(rng.uniform(*self.pause_range))
                remaining -= travel_time
            else:
                self.position = self.position.toward(
                    self._target, self._speed * remaining
                )
                remaining = 0.0
        return self.position


class ManhattanGrid(MobilityModel):
    """Street-constrained mobility on a Manhattan block grid.

    Nodes move along grid lines spaced ``block_size`` apart, choosing a new
    direction at each intersection (straight with higher probability than
    turning, per the classic Manhattan model).
    """

    def __init__(
        self,
        position: Point,
        region: Region,
        *,
        block_size: float = 100.0,
        speed_range: Tuple[float, float] = (0.5, 2.0),
        p_turn: float = 0.25,
    ):
        super().__init__(position)
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self.region = region
        self.block_size = block_size
        self.speed_range = speed_range
        self.p_turn = p_turn
        self.position = self._snap(position)
        self._direction: Optional[Tuple[int, int]] = None
        self._speed = 0.0

    def _snap(self, p: Point) -> Point:
        """Snap to the nearest street (grid line) in one axis."""
        gx = round((p.x - self.region.x_min) / self.block_size)
        gy = round((p.y - self.region.y_min) / self.block_size)
        sx = self.region.x_min + gx * self.block_size
        sy = self.region.y_min + gy * self.block_size
        if abs(p.x - sx) <= abs(p.y - sy):
            return self.region.clamp(Point(sx, p.y))
        return self.region.clamp(Point(p.x, sy))

    def _at_intersection(self) -> bool:
        rx = (self.position.x - self.region.x_min) % self.block_size
        ry = (self.position.y - self.region.y_min) % self.block_size
        eps = 1e-6
        return (rx < eps or rx > self.block_size - eps) and (
            ry < eps or ry > self.block_size - eps
        )

    def _pick_direction(self, rng: np.random.Generator) -> Tuple[int, int]:
        dirs = [(1, 0), (-1, 0), (0, 1), (0, -1)]
        if self._direction is not None and rng.random() > self.p_turn:
            return self._direction
        idx = int(rng.integers(0, len(dirs)))
        return dirs[idx]

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        if self._direction is None or self._speed <= 0:
            self._direction = self._pick_direction(rng)
            self._speed = float(rng.uniform(*self.speed_range))
        remaining = dt
        while remaining > 1e-9:
            dx, dy = self._direction
            # Distance to the next intersection along the current street.
            if dx != 0:
                offset = (self.position.x - self.region.x_min) % self.block_size
                to_next = self.block_size - offset if dx > 0 else (
                    offset if offset > 1e-9 else self.block_size
                )
            else:
                offset = (self.position.y - self.region.y_min) % self.block_size
                to_next = self.block_size - offset if dy > 0 else (
                    offset if offset > 1e-9 else self.block_size
                )
            step_len = min(self._speed * remaining, to_next)
            new = Point(
                self.position.x + dx * step_len, self.position.y + dy * step_len
            )
            if not self.region.contains(new):
                # Bounce: reverse direction at the region boundary.
                self._direction = (-dx, -dy)
                new = self.region.clamp(new)
            self.position = new
            remaining -= step_len / self._speed if self._speed > 0 else remaining
            if self._at_intersection():
                self._direction = self._pick_direction(rng)
                self._speed = float(rng.uniform(*self.speed_range))
        return self.position


class GroupMobility(MobilityModel):
    """Reference-point group mobility: follow a leader model with jitter.

    The leader is any other :class:`MobilityModel` (typically RandomWaypoint
    or ManhattanGrid); members hold a fixed offset from it plus bounded
    random jitter, like a squad moving in formation.
    """

    def __init__(
        self,
        leader: MobilityModel,
        offset: Point,
        *,
        jitter_m: float = 3.0,
        region: Optional[Region] = None,
    ):
        super().__init__(
            Point(leader.position.x + offset.x, leader.position.y + offset.y)
        )
        self.leader = leader
        self.offset = offset
        self.jitter_m = jitter_m
        self.region = region

    def step(self, dt: float, rng: np.random.Generator) -> Point:
        # NOTE: the leader must be stepped exactly once per sweep by the
        # MobilityManager; followers only read its current position.
        jx = float(rng.uniform(-self.jitter_m, self.jitter_m))
        jy = float(rng.uniform(-self.jitter_m, self.jitter_m))
        pos = Point(
            self.leader.position.x + self.offset.x + jx,
            self.leader.position.y + self.offset.y + jy,
        )
        if self.region is not None:
            pos = self.region.clamp(pos)
        self.position = pos
        return pos


class MobilityManager:
    """Steps all mobility models on a fixed period and updates the network.

    Leaders are stepped before followers (followers reference leader
    positions), and the spatial index is invalidated once per sweep.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        update_period_s: float = 1.0,
    ):
        if update_period_s <= 0:
            raise ConfigurationError("update_period_s must be positive")
        self.sim = sim
        self.network = network
        self.update_period_s = update_period_s
        self._models: Dict[int, MobilityModel] = {}
        self._rng = sim.rng.get("mobility")
        self._started = False

    def attach(self, node_id: int, model: MobilityModel) -> None:
        self.network.node(node_id)  # validate the id
        self._models[node_id] = model
        self.network.set_position(node_id, model.position)

    def model(self, node_id: int) -> Optional[MobilityModel]:
        return self._models.get(node_id)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.every(self.update_period_s, self._sweep)

    def _sweep(self) -> None:
        leaders: List[Tuple[int, MobilityModel]] = []
        followers: List[Tuple[int, MobilityModel]] = []
        for node_id, model in self._models.items():
            if isinstance(model, GroupMobility):
                followers.append((node_id, model))
            else:
                leaders.append((node_id, model))
        # Step independent leader models referenced by followers even if
        # they are not attached to any node themselves.
        stepped = set()
        for _node_id, follower in followers:
            leader = follower.leader
            if id(leader) not in stepped and all(
                leader is not m for _n, m in leaders
            ):
                leader.step(self.update_period_s, self._rng)
                stepped.add(id(leader))
        for node_id, model in leaders:
            node = self.network.node(node_id)
            if node.up:
                node.position = model.step(self.update_period_s, self._rng)
        for node_id, model in followers:
            node = self.network.node(node_id)
            if node.up:
                node.position = model.step(self.update_period_s, self._rng)
        self.network.invalidate_topology()


# Registry hookup: mobility models addressable by name in campaign sweeps.
from repro.net.registry import register  # noqa: E402  (registration epilogue)

StaticMobility.name = "static"
RandomWaypoint.name = "random_waypoint"
ManhattanGrid.name = "manhattan"
GroupMobility.name = "group"
for _model in (StaticMobility, RandomWaypoint, ManhattanGrid, GroupMobility):
    register("mobility", _model.name, _model)
del _model
