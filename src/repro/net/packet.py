"""Packet model.

Packets carry an application payload plus the headers the routing layer
needs.  Sizes are in bits so transmission delay follows directly from the
radio bitrate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

__all__ = ["PacketKind", "Packet"]

_packet_ids = itertools.count(1)


class PacketKind(Enum):
    """Coarse traffic classes; fingerprinting keys off these."""

    DATA = "data"
    ACK = "ack"
    BEACON = "beacon"
    PROBE = "probe"
    PROBE_REPLY = "probe_reply"
    CONTROL = "control"
    RREQ = "rreq"
    RREP = "rrep"
    DTN_SUMMARY = "dtn_summary"
    MODEL_UPDATE = "model_update"


@dataclass
class Packet:
    """A network packet.

    ``dst`` of ``None`` means link-local broadcast.  ``path`` accumulates the
    node ids the packet visited (used for tomography and metrics).
    """

    src: int
    dst: Optional[int]
    kind: PacketKind = PacketKind.DATA
    payload: Any = None
    size_bits: int = 1024
    ttl: int = 32
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    flow_id: Optional[int] = None
    path: List[int] = field(default_factory=list)
    headers: Dict[str, Any] = field(default_factory=dict)

    def copy_for_forwarding(self) -> "Packet":
        """A forwarding copy sharing uid/payload but with its own path list.

        Headers are copied one container level deep: a ``dict``/``list``/
        ``set`` header value gets its own copy, so routers mutating a
        header on a forwarded copy (geographic detour counters, trace
        state) can never alias the copy the previous hop still holds.
        The contract for header values is therefore: immutable scalars,
        tuples, or *flat* mutable containers — values nested deeper than
        one level are shared and must be treated as read-only.
        """
        headers = {
            k: (v.copy() if isinstance(v, (dict, list, set)) else v)
            for k, v in self.headers.items()
        }
        return Packet(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=self.payload,
            size_bits=self.size_bits,
            ttl=self.ttl - 1,
            created_at=self.created_at,
            uid=self.uid,
            flow_id=self.flow_id,
            path=list(self.path),
            headers=headers,
        )

    @property
    def size_bytes(self) -> float:
        """Size in octets, derived from the canonical :attr:`size_bits`.

        ``size_bits`` is the single source of truth for packet size:
        airtime (:meth:`airtime_s`), energy charges
        (:attr:`NetNode.energy_hook`), and control-overhead accounting all
        read it, so the bits-vs-bytes unit can never diverge between the
        channel, MAC, and transport layers.
        """
        return self.size_bits / 8.0

    def airtime_s(self, bitrate_bps: float) -> float:
        """Serialization delay of this packet at ``bitrate_bps``.

        The one place bits are converted to seconds; the PHY layer and any
        energy model must use this so airtime and energy charges agree.
        """
        return self.size_bits / max(bitrate_bps, 1.0)

    @property
    def hops(self) -> int:
        """Number of transmissions so far (path entries minus origin)."""
        return max(0, len(self.path) - 1)

    def __repr__(self) -> str:
        return (
            f"Packet(uid={self.uid}, {self.kind.value}, "
            f"{self.src}->{self.dst}, ttl={self.ttl})"
        )
