"""Packet model.

Packets carry an application payload plus the headers the routing layer
needs.  Sizes are in bits so transmission delay follows directly from the
radio bitrate.

:class:`Packet` is a hand-written ``__slots__`` class rather than a
dataclass: forwarding-heavy workloads allocate one copy per node per flood,
and the slotted layout drops the per-instance ``__dict__`` while
:meth:`Packet.copy_for_forwarding` skips ``__init__`` entirely.  The
dataclass surface is preserved — same constructor signature and defaults,
field-wise ``==``, unhashable (router state keys off ``uid``, never off
packet objects) — so callers cannot tell the difference.  For churn-bound
hot paths, :mod:`repro.net.pool` adds an explicit free-list on top.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Dict, List, Optional

__all__ = ["PacketKind", "Packet"]

_packet_ids = itertools.count(1)


class PacketKind(Enum):
    """Coarse traffic classes; fingerprinting keys off these.

    ``value`` stays the wire-stable string (trace records and fingerprints
    embed it); ``code`` is a small dense int for array packing and fast
    dispatch tables.  Members are singletons, so the hot path compares
    kinds with ``is``.
    """

    def __new__(cls, value: str, code: int) -> "PacketKind":
        member = object.__new__(cls)
        member._value_ = value
        member.code = code
        return member

    DATA = ("data", 0)
    ACK = ("ack", 1)
    BEACON = ("beacon", 2)
    PROBE = ("probe", 3)
    PROBE_REPLY = ("probe_reply", 4)
    CONTROL = ("control", 5)
    RREQ = ("rreq", 6)
    RREP = ("rrep", 7)
    DTN_SUMMARY = ("dtn_summary", 8)
    MODEL_UPDATE = ("model_update", 9)


class Packet:
    """A network packet.

    ``dst`` of ``None`` means link-local broadcast.  ``path`` accumulates the
    node ids the packet visited (used for tomography and metrics).
    """

    __slots__ = (
        "src",
        "dst",
        "kind",
        "payload",
        "size_bits",
        "ttl",
        "created_at",
        "uid",
        "flow_id",
        "path",
        "headers",
    )

    # Field-wise equality without hashability, as the old dataclass had:
    # uid is the identity routers key on; packet objects never go in sets.
    __hash__ = None  # type: ignore[assignment]

    def __init__(
        self,
        src: int,
        dst: Optional[int],
        kind: PacketKind = PacketKind.DATA,
        payload: Any = None,
        size_bits: int = 1024,
        ttl: int = 32,
        created_at: float = 0.0,
        uid: Optional[int] = None,
        flow_id: Optional[int] = None,
        path: Optional[List[int]] = None,
        headers: Optional[Dict[str, Any]] = None,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.size_bits = size_bits
        self.ttl = ttl
        self.created_at = created_at
        self.uid = next(_packet_ids) if uid is None else uid
        self.flow_id = flow_id
        self.path = [] if path is None else path
        self.headers = {} if headers is None else headers

    def copy_for_forwarding(self) -> "Packet":
        """A forwarding copy sharing uid/payload but with its own path list.

        Headers are copied one container level deep: a ``dict``/``list``/
        ``set`` header value gets its own copy, so routers mutating a
        header on a forwarded copy (geographic detour counters, trace
        state) can never alias the copy the previous hop still holds.
        The contract for header values is therefore: immutable scalars,
        tuples, or *flat* mutable containers — values nested deeper than
        one level are shared and must be treated as read-only.
        """
        clone = Packet.__new__(Packet)
        self._fill_forwarding_copy(clone)
        return clone

    def _fill_forwarding_copy(self, clone: "Packet") -> "Packet":
        """Populate ``clone`` as this packet's forwarding copy (ttl-1)."""
        clone.src = self.src
        clone.dst = self.dst
        clone.kind = self.kind
        clone.payload = self.payload
        clone.size_bits = self.size_bits
        clone.ttl = self.ttl - 1
        clone.created_at = self.created_at
        clone.uid = self.uid
        clone.flow_id = self.flow_id
        clone.path = list(self.path)
        headers = self.headers
        clone.headers = (
            {
                k: (v.copy() if isinstance(v, (dict, list, set)) else v)
                for k, v in headers.items()
            }
            if headers
            else {}
        )
        return clone

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Packet:
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.kind == other.kind
            and self.payload == other.payload
            and self.size_bits == other.size_bits
            and self.ttl == other.ttl
            and self.created_at == other.created_at
            and self.uid == other.uid
            and self.flow_id == other.flow_id
            and self.path == other.path
            and self.headers == other.headers
        )

    @property
    def size_bytes(self) -> float:
        """Size in octets, derived from the canonical :attr:`size_bits`.

        ``size_bits`` is the single source of truth for packet size:
        airtime (:meth:`airtime_s`), energy charges
        (:attr:`NetNode.energy_hook`), and control-overhead accounting all
        read it, so the bits-vs-bytes unit can never diverge between the
        channel, MAC, and transport layers.
        """
        return self.size_bits / 8.0

    def airtime_s(self, bitrate_bps: float) -> float:
        """Serialization delay of this packet at ``bitrate_bps``.

        The one place bits are converted to seconds; the PHY layer and any
        energy model must use this so airtime and energy charges agree.
        """
        return self.size_bits / max(bitrate_bps, 1.0)

    @property
    def hops(self) -> int:
        """Number of transmissions so far (path entries minus origin)."""
        return max(0, len(self.path) - 1)

    def __repr__(self) -> str:
        return (
            f"Packet(uid={self.uid}, {self.kind.value}, "
            f"{self.src}->{self.dst}, ttl={self.ttl})"
        )
