"""repro — an Internet of Battlefield Things (IoBT) simulation & services library.

A laptop-scale realization of the research agenda in "Will Distributed
Computing Revolutionize Peace?  The Emergence of Battlefield IoT"
(Abdelzaher et al., ICDCS 2018): a battlefield network substrate plus
assured synthesis, adaptive reflexes, and resilient learning services, with
adversarial (red/gray) elements throughout.

Quickstart::

    from repro import Simulator, ScenarioBuilder

    sim = Simulator(seed=7)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=8)
        .population(n_blue=60, n_red=6, n_gray=20)
        .build()
    )

See README.md and DESIGN.md for the architecture and experiment index.
"""

from repro._version import __version__
from repro.sim import Simulator
from repro.net import Network, Channel, Jammer
from repro.things import (
    Affiliation,
    Asset,
    AssetInventory,
    CapabilityProfile,
    SensingModality,
    ActuationType,
    make_profile,
)
from repro.scenarios import ScenarioBuilder, Scenario, UrbanGrid
from repro.campaign import CampaignRunner, ResultCache, SweepSpec

__all__ = [
    "__version__",
    "CampaignRunner",
    "ResultCache",
    "SweepSpec",
    "Simulator",
    "Network",
    "Channel",
    "Jammer",
    "Affiliation",
    "Asset",
    "AssetInventory",
    "CapabilityProfile",
    "SensingModality",
    "ActuationType",
    "make_profile",
    "ScenarioBuilder",
    "Scenario",
    "UrbanGrid",
]
