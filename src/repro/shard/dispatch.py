"""The shard-aware hot path: ownership-filtered tracing and keyed dispatch.

The sharded engine replicates the whole world in every worker and
partitions *action*: a node's transmissions originate only in the shard
that owns it.  Two pieces make the hot path partition-invariant:

* :class:`ShardTraceLog` keeps each record in exactly one shard — the one
  owning the node the record is about — so the union of the per-shard
  streams is the serial stream with no duplicates.  Replicated processes
  (faults, mobility) emit identically everywhere; the filter picks one
  copy.
* :class:`ShardDispatcher` mirrors
  :class:`~repro.net.stack.FastPathDispatcher` branch for branch but (a)
  draws backoff and delivery Bernoullis from a :class:`.rng.KeyedHopRng`
  keyed on ``(sender, tx-seq[, receiver])`` so outcomes do not depend on
  draw order, (b) reads MAC load from the sender's own ``busy_tx`` rather
  than its neighbors' (neighbor state is only *acted on* in other shards,
  so reading it would couple outcomes to the partition), and (c) ships
  successful deliveries to non-owned receivers into an outbox that the
  engine forwards across the window barrier.

Verdicts for remote receivers are computed sender-side against the
replica (same liveness, same positions, same channel), so the sending
shard's failure accounting and the receiving shard's delivery agree
without a reverse ack: conservative lookahead guarantees the handoff
arrives before the receiver's clock reaches ``deliver_time``.

Tracer hooks (:class:`~repro.obs.tracing.PacketTracer`) and gremlins are
deliberately absent: both are sequential-RNG consumers that the spec layer
rejects for sharded runs.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.net.packet import Packet
from repro.net.stack import FastPathDispatcher, NetworkStack, SendResult
from repro.shard.rng import KeyedHopRng
from repro.sim.trace import TraceLog

__all__ = ["ShardTraceLog", "ShardDispatcher", "Handoff"]

#: One cross-shard delivery: (deliver_time, kind "u"/"b", src, dst,
#: dst_shard, packet).  Pickled at the window barrier.
Handoff = Tuple[float, str, int, int, int, Packet]

#: Trace fields identifying the node a record is "about", in precedence
#: order.  ``node`` covers lifecycle/fault/app records, ``a`` covers
#: link-pair records (net.link_down, fault.link_cut) — keyed by the
#: lexically-first endpoint, which both shards compute identically.
_OWNER_FIELDS = ("node", "a")


class ShardTraceLog(TraceLog):
    """A TraceLog that keeps only the records this shard owns.

    Until :meth:`set_ownership` is called (i.e. during the world build),
    and for records naming no node at all (fault launch/cease, partition
    toggles), shard 0 is the designated keeper — every shard sees the
    same replicated emission, so electing a fixed keeper deduplicates
    without coordination.  A 1-shard run owns everything, which is what
    makes the serial reference stream directly comparable.
    """

    def __init__(self, sim: "Simulator", shard_index: int = 0):  # noqa: F821
        super().__init__(sim)
        self.shard_index = shard_index
        self._owned: Optional[FrozenSet[int]] = None

    def set_ownership(self, owned: FrozenSet[int]) -> None:
        self._owned = owned

    def emit(self, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._owned is None:
            if self.shard_index != 0:
                return
        else:
            owner: Any = None
            for key in _OWNER_FIELDS:
                if key in fields:
                    owner = fields[key]
                    break
            if isinstance(owner, int):
                if owner not in self._owned:
                    return
            elif self.shard_index != 0:
                return
        super().emit(category, **fields)


class ShardDispatcher(FastPathDispatcher):
    """Keyed-RNG, ownership-aware reimplementation of the fast path."""

    def __init__(
        self,
        stack: NetworkStack,
        *,
        owned: FrozenSet[int],
        shard_index: int,
        assignments: Mapping[int, int],
        hoprng: KeyedHopRng,
        outbox: List[Handoff],
    ):
        super().__init__(
            stack.ctx, stack.phy, stack.mac, stack.queue, stack.faults, stack.app
        )
        self.owned = owned
        self.shard_index = shard_index
        self.assignments = assignments
        self.hoprng = hoprng
        self.outbox = outbox
        self._tx_seq: Dict[int, int] = {}
        # The keyed source *is* the stack RNG: MacLayer.grant draws its
        # backoff through ctx.rng, which rekey() has already addressed.
        stack.ctx.rng = hoprng

    def _next_seq(self, sender_id: int) -> int:
        seq = self._tx_seq.get(sender_id, 0)
        self._tx_seq[sender_id] = seq + 1
        return seq

    # -------------------------------------------------------------- unicast

    def unicast(
        self,
        sender: "NetNode",  # noqa: F821
        receiver: "NetNode",  # noqa: F821
        packet: Packet,
        on_result: Optional[SendResult] = None,
    ) -> None:
        ctx = self.ctx
        if not sender.up:
            if on_result:
                on_result(False)
            return
        sender_id = sender.id
        receiver_id = receiver.id
        seq = self._next_seq(sender_id)
        rng = self.hoprng
        # Sender-local MAC load: busy_tx of remote nodes is only
        # maintained in their own shards, so the serial busy_neighbors
        # sum would make outcomes partition-dependent.
        busy = 1 if sender.busy_tx else 0
        rng.rekey("hop", sender_id, seq)
        access = self.mac.grant(busy)
        backoff = access.backoff_s
        airtime = self.phy.airtime_s(sender, packet)
        prop = self.phy.propagation_s(sender, receiver)
        delay = backoff + airtime + prop
        p_ok = (
            self.phy.delivery_probability(sender, receiver)
            * access.collision_survival
        )
        drop_reason: Optional[str] = None
        if not receiver.up:
            success = False
            drop_reason = "receiver_down"
        else:
            rng.rekey("rx", sender_id, seq, receiver_id)
            success = rng.random() < p_ok
            if not success:
                drop_reason = "loss"
        if success and self.faults.link_blocked(sender_id, receiver_id):
            success = False
            drop_reason = "link_blocked"
            ctx.incr("net.link_blocked")
        self._charge_tx(sender, packet)

        remote = receiver_id not in self.owned
        if success and remote:
            self.outbox.append(
                (
                    ctx.sim.now + delay,
                    "u",
                    sender_id,
                    receiver_id,
                    self.assignments[receiver_id],
                    packet,
                )
            )

        def complete() -> None:
            self.queue.end_tx(sender)
            if success and receiver.up:
                if not remote:
                    self._deliver_up(receiver, packet, sender_id, False)
                # Remote delivery happens in the owner shard; the replica
                # liveness check above already matches its verdict.
                if on_result:
                    on_result(True)
            else:
                ctx.incr("net.tx_failed")
                ctx.c_dropped.inc()
                if on_result:
                    on_result(False)

        ctx.call_in_fast(delay, complete)
        _ = drop_reason  # parity with the serial path's bookkeeping

    # ------------------------------------------------------------ broadcast

    def broadcast(
        self,
        sender: "NetNode",  # noqa: F821
        neighbor_ids,
        packet: Packet,
    ) -> int:
        ctx = self.ctx
        if not sender.up:
            return 0
        sender_id = sender.id
        seq = self._next_seq(sender_id)
        rng = self.hoprng
        busy = 1 if sender.busy_tx else 0
        rng.rekey("hop", sender_id, seq)
        access = self.mac.grant(busy)
        base_delay = access.backoff_s + self.phy.airtime_s(sender, packet)
        self._charge_tx(sender, packet)
        survival = access.collision_survival
        nodes = ctx.network.nodes
        link_blocked = self.faults.link_blocked
        c_dropped = ctx.c_dropped
        owned = self.owned
        deliver_time = ctx.sim.now + base_delay
        # Batched: probabilities through the PHY pair cache / fused channel
        # kernel, Bernoullis as addressed draws (pure per-hop functions, so
        # batching cannot reorder outcomes), verdicts in one compare.
        receivers = [nodes[nid] for nid in neighbor_ids]
        probs = self.phy.delivery_probability_batch(sender, receivers)
        draws = rng.uniforms_at(("rx", sender_id, seq), neighbor_ids)
        verdicts = self.phy.channel.delivery_verdicts(probs, draws, survival=survival)
        local: List[int] = []
        for nid, delivered in zip(neighbor_ids, verdicts):
            if not delivered:
                c_dropped.inc()
                continue
            if link_blocked(sender_id, nid):
                ctx.incr("net.link_blocked")
                c_dropped.inc()
                continue
            if nid in owned:
                local.append(nid)
            else:
                self.outbox.append(
                    (deliver_time, "b", sender_id, nid, self.assignments[nid], packet)
                )

        def complete() -> None:
            self.queue.end_tx(sender)
            for nid in local:
                receiver = nodes.get(nid)
                if receiver is None or not receiver.up:
                    continue
                self._deliver_up(receiver, packet, sender_id, False)

        ctx.call_in_fast(base_delay, complete)
        return len(neighbor_ids)

    # -------------------------------------------------------------- handoff

    def apply_remote(self, kind: str, src_id: int, dst_id: int, packet: Packet) -> None:
        """Deliver a handoff shipped by another shard, at its deliver time.

        The liveness re-check matches both the serial path (down
        receivers silently miss broadcasts; unicast failure was already
        accounted sender-side) and the sending shard's replica verdict.
        """
        receiver = self.ctx.network.nodes.get(dst_id)
        if receiver is None or not receiver.up:
            return
        self._deliver_up(receiver, packet, src_id, False)
