"""Declarative, picklable descriptions of sharded runs.

A sharded run is *replicated-world, partitioned-execution*: every worker
rebuilds the identical world from the same spec and seed, then only acts
for the nodes its shard owns.  That replication demands that everything a
worker needs is a frozen value object that pickles cleanly and hashes
stably — no live simulator state ever crosses a pipe except window-barrier
messages.

Three spec families live here:

* :class:`ShardScenarioSpec` — the world: an urban
  :class:`~repro.scenarios.builder.ScenarioBuilder` world or a uniform
  jittered grid (the benchmark's 1k–10k-node worlds), plus the stack
  (router/MAC from the PR5 registry), a synthetic workload, optional
  fault plans, and optional node-lifecycle events.
* :class:`ShardPlan` — how to cut it: shard count, partition cell size
  and seed, and an optional explicit window length.  Because these are
  frozen dataclasses, embedding a plan in a campaign task config flows
  straight into :func:`repro.campaign.spec.config_key`, so sharded and
  serial results get distinct content-addressed cache keys.
* The workload/fault sub-specs both of those compose.

``validate()`` rejects anything that is not shard-safe: routers outside
``SHARD_SAFE_ROUTERS`` (gossip's sequential RNG and greedy-geo/dtn's
cross-node state reads are partition-coupled), transports (their timers
and ACK packets are unaudited for replication), and gremlin fault
injection (draws from a sequential stream on the hot path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "ShardConfigError",
    "SHARD_SAFE_ROUTERS",
    "SHARD_SAFE_MACS",
    "WorkloadSpec",
    "ChurnSpec",
    "LinkFlapSpec",
    "FaultPlanSpec",
    "ShardScenarioSpec",
    "ShardPlan",
]


class ShardConfigError(ValueError):
    """A spec that cannot run sharded (or cannot run at all)."""


#: Routers whose per-node state is only ever mutated receive-side (in the
#: owner's shard) and whose draws go through the keyed hop RNG.  ``None``
#: (raw link-layer sends) is always allowed.
SHARD_SAFE_ROUTERS = ("flooding", "aodv")

#: MACs that draw nothing (ideal) or draw only via ``ctx.rng`` (csma).
SHARD_SAFE_MACS = ("csma", "ideal")


@dataclass(frozen=True)
class WorkloadSpec:
    """Synthetic traffic: every ``sender_stride``-th node originates.

    ``kind``:

    * ``"beacons"`` — periodic router broadcasts (flooded when the router
      floods); the situational-awareness beaconing pattern.
    * ``"unicast"`` — periodic datagrams to a seed-derived fixed partner
      anywhere in the world (exercises multi-hop routing).
    * ``"local"`` — periodic datagrams to the sender's nearest neighbor
      (the benchmark's mostly-shard-local pattern).
    """

    kind: str = "beacons"
    rate_hz: float = 1.0
    size_bits: int = 2048
    ttl: int = 8
    sender_stride: int = 1
    start_s: float = 0.1

    def validate(self) -> None:
        if self.kind not in ("beacons", "unicast", "local"):
            raise ShardConfigError(f"unknown workload kind {self.kind!r}")
        if self.rate_hz <= 0.0:
            raise ShardConfigError("workload rate_hz must be > 0")
        if self.size_bits <= 0:
            raise ShardConfigError("workload size_bits must be > 0")
        if self.sender_stride < 1:
            raise ShardConfigError("workload sender_stride must be >= 1")
        if self.start_s <= 0.0:
            raise ShardConfigError(
                "workload start_s must be > 0 (time 0 is the build barrier)"
            )


@dataclass(frozen=True)
class ChurnSpec:
    """Replicated :class:`~repro.faults.faults.NodeChurnFault` plan."""

    start_s: float = 1.0
    duration_s: Optional[float] = None
    mtbf_s: float = 30.0
    mean_downtime_s: float = 5.0


@dataclass(frozen=True)
class LinkFlapSpec:
    """Replicated :class:`~repro.faults.faults.LinkFlapFault` plan."""

    start_s: float = 1.0
    duration_s: Optional[float] = None
    n_links: int = 4
    mtbf_s: float = 10.0
    mean_downtime_s: float = 2.0


@dataclass(frozen=True)
class FaultPlanSpec:
    """Faults to inject — replicated identically in every shard.

    Fault processes draw from their own named streams and mutate only
    replicated state (node liveness, blocked links), so running them in
    every worker keeps the worlds in lockstep without any cross-shard
    coordination.  Caveat: AODV's ``on_node_state`` sequence bumps read
    shard-local routing tables, so churn is only fingerprint-stable under
    stateless routers (flooding); pair AODV with link flaps instead.
    """

    churn: Optional[ChurnSpec] = None
    link_flap: Optional[LinkFlapSpec] = None


@dataclass(frozen=True)
class ShardScenarioSpec:
    """One shardable world, complete enough to rebuild in any process."""

    seed: int = 0
    kind: str = "urban"  # "urban" (ScenarioBuilder) or "uniform" (bench grid)

    # Urban world knobs (ScenarioBuilder passthrough).
    blocks: int = 4
    block_size_m: float = 80.0
    density: float = 0.3
    n_blue: int = 24
    n_red: int = 0
    n_gray: int = 0
    mobile_fraction: float = 0.0
    mobility_period_s: float = 1.0

    # Uniform-grid world knobs.
    n_nodes: int = 100
    spacing_m: float = 60.0
    jitter_m: float = 8.0
    tx_power_dbm: float = 20.0
    bitrate_bps: float = 2.5e5

    #: Clamp every node's bitrate to this ceiling after the build.  The
    #: conservative lookahead is ``min packet bits / max node bitrate``;
    #: one 100 Mbps edge-cloud node would otherwise shrink every window
    #: to microseconds.  ``None`` leaves profile bitrates untouched.
    bitrate_cap_bps: Optional[float] = None

    router: Optional[str] = "flooding"
    mac: str = "csma"
    router_params: Tuple[Tuple[str, Any], ...] = ()
    mac_params: Tuple[Tuple[str, Any], ...] = ()

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: Optional[FaultPlanSpec] = None

    #: Externally injected node-lifecycle events ``(time_s, node_id, up)``.
    #: The coordinator ships each one to *every* shard in the window
    #: message that covers its timestamp — the pipe-borne lifecycle path.
    lifecycle: Tuple[Tuple[float, int, bool], ...] = ()

    #: Test-only chaos hook: ``(shard_index, time_s, sentinel_path)``.
    #: The matching worker hard-exits at ``time_s`` unless the sentinel
    #: file exists (it creates it first), so exactly one attempt dies —
    #: the kill-and-retry drill.
    chaos_crash: Optional[Tuple[int, float, str]] = None

    def validate(self) -> None:
        if self.kind not in ("urban", "uniform"):
            raise ShardConfigError(f"unknown world kind {self.kind!r}")
        if self.router is not None and self.router not in SHARD_SAFE_ROUTERS:
            raise ShardConfigError(
                f"router {self.router!r} is not shard-safe; "
                f"allowed: {SHARD_SAFE_ROUTERS} or None"
            )
        if self.mac not in SHARD_SAFE_MACS:
            raise ShardConfigError(
                f"mac {self.mac!r} is not shard-safe; allowed: {SHARD_SAFE_MACS}"
            )
        if self.kind == "uniform" and self.n_nodes < 1:
            raise ShardConfigError("uniform world needs n_nodes >= 1")
        if self.kind == "uniform" and self.mobile_fraction > 0.0:
            raise ShardConfigError("uniform worlds are static")
        if self.workload.kind == "unicast" and self.router is None:
            raise ShardConfigError(
                "unicast workload needs a router (use 'local' for raw sends)"
            )
        if self.workload.kind == "beacons" and self.router == "aodv":
            raise ShardConfigError(
                "aodv is a unicast protocol; beacons need flooding or no router"
            )
        self.workload.validate()
        for t, _node, _up in self.lifecycle:
            if t <= 0.0:
                raise ShardConfigError(
                    "lifecycle events must have time > 0 (the build barrier)"
                )
        if (
            self.faults is not None
            and self.faults.churn is not None
            and self.router == "aodv"
        ):
            raise ShardConfigError(
                "aodv + node churn is not fingerprint-stable sharded "
                "(on_node_state reads shard-local tables); use link_flap "
                "faults with aodv, or the flooding router with churn"
            )

    def router_param_dict(self) -> Dict[str, Any]:
        params = dict(self.router_params)
        if self.router == "aodv":
            # Intermediate cache replies read the serial-only global
            # sequence oracle; RFC 3561's D-flag removes that read.
            params.setdefault("destination_only", True)
        return params

    def mac_param_dict(self) -> Dict[str, Any]:
        return dict(self.mac_params)


@dataclass(frozen=True)
class ShardPlan:
    """How to cut a world: the cache-key-relevant half of a sharded run.

    Execution mode (fork / spawn / inline) deliberately lives on the
    engine, not here: a plan describes *what* is computed — and sharded
    results are fingerprint-equal across modes — while the mode only
    describes *where*.  Embed a plan (or its ``n_shards`` /
    ``partition_seed`` fields) in campaign task params and the
    content-addressed key changes whenever the cut does.
    """

    n_shards: int = 1
    cell_size_m: Optional[float] = None
    partition_seed: int = 0
    window_s: Optional[float] = None

    def validate(self) -> None:
        if self.n_shards < 1:
            raise ShardConfigError("n_shards must be >= 1")
        if self.cell_size_m is not None and not self.cell_size_m > 0.0:
            raise ShardConfigError("cell_size_m must be > 0")
        if self.window_s is not None and not self.window_s > 0.0:
            raise ShardConfigError("window_s must be > 0")
