"""Sharded simulation: multi-process battlefield worlds, conservative sync.

The single-process :class:`~repro.sim.kernel.Simulator` caps worlds at one
core's event rate; the paper's 10k-node inventories (and the IoBT
literature's "millions of things") need more.  :mod:`repro.shard` runs one
simulator replica per spatial shard — partitioned by
:func:`repro.net.topology.partition_network` — in its own worker process,
synchronized at conservative time-window barriers with lookahead derived
from the minimum cross-shard packet airtime and propagation delay.

Entry points:

* :class:`ShardScenarioSpec` / :class:`ShardPlan` — declarative world +
  cut descriptions (frozen, picklable, cache-key-hashable).
* :class:`ShardedSimulator` — the coordinator; ``run(until=...)`` like a
  plain simulator, returning a :class:`ShardRunResult` with the merged
  trace, counters, and a partition-invariant ``fingerprint()``.
* :func:`run_serial` — the 1-shard reference with identical keyed-RNG
  semantics; serial and sharded fingerprints of the same spec are equal.

>>> from repro.shard import ShardScenarioSpec, ShardedSimulator, run_serial
>>> spec = ShardScenarioSpec(seed=7, bitrate_cap_bps=5e4)
>>> serial = run_serial(spec, until=2.0)
>>> sharded = ShardedSimulator(spec, n_shards=4, mode="inline").run(until=2.0)
>>> assert serial.fingerprint() == sharded.fingerprint()
"""

from repro.shard.dispatch import ShardDispatcher, ShardTraceLog
from repro.shard.engine import (
    ShardedSimulator,
    ShardRunResult,
    ShardWorkerError,
    run_serial,
)
from repro.shard.rng import KeyedHopRng
from repro.shard.runtime import ShardRuntime
from repro.shard.spec import (
    SHARD_SAFE_MACS,
    SHARD_SAFE_ROUTERS,
    ChurnSpec,
    FaultPlanSpec,
    LinkFlapSpec,
    ShardConfigError,
    ShardPlan,
    ShardScenarioSpec,
    WorkloadSpec,
)

__all__ = [
    "ShardedSimulator",
    "ShardRunResult",
    "ShardWorkerError",
    "run_serial",
    "ShardRuntime",
    "ShardDispatcher",
    "ShardTraceLog",
    "KeyedHopRng",
    "ShardScenarioSpec",
    "ShardPlan",
    "WorkloadSpec",
    "ChurnSpec",
    "LinkFlapSpec",
    "FaultPlanSpec",
    "ShardConfigError",
    "SHARD_SAFE_ROUTERS",
    "SHARD_SAFE_MACS",
]
