"""Partition-invariant randomness for sharded dispatch.

A sequential RNG stream is the enemy of sharded determinism: the draw a
packet consumes depends on every draw before it, so any partition of the
world reorders the stream and changes every outcome.  :class:`KeyedHopRng`
replaces the stream with a *keyed* generator — each draw is a pure function
of ``(root seed, current key, draw index under that key)`` hashed through
BLAKE2b — so a hop's backoff and delivery draws depend only on the hop's
identity, never on which shard computes them or what was drawn before.

The sharded dispatcher re-keys before every draw site
(``rekey("hop", sender, seq)`` for the MAC grant,
``rekey("rx", sender, seq, receiver)`` for each delivery Bernoulli) and
installs the instance as ``stack.ctx.rng``, where it satisfies the slice of
the ``numpy.random.Generator`` surface the stack actually uses: ``random()``
and ``exponential(scale)``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Tuple

__all__ = ["KeyedHopRng"]

_U53 = 2.0**-53


class KeyedHopRng:
    """Hash-keyed uniform source: draws are addressed, not sequenced."""

    __slots__ = ("seed", "_key", "_index")

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._key: Tuple[Any, ...] = ()
        self._index = 0

    def rekey(self, *parts: Any) -> None:
        """Address the next draws: resets the per-key draw counter."""
        self._key = parts
        self._index = 0

    def _uniform(self) -> float:
        payload = repr((self.seed, self._key, self._index)).encode("utf-8")
        self._index += 1
        raw = hashlib.blake2b(payload, digest_size=8).digest()
        # Top 53 bits -> uniform double in [0, 1), same mapping numpy uses.
        return (int.from_bytes(raw, "big") >> 11) * _U53

    def uniforms_at(self, prefix: Tuple[Any, ...], suffixes: Any) -> list:
        """Batch of addressed first draws: one uniform per suffix.

        ``uniforms_at(("rx", s, q), ids)[i]`` equals
        ``rekey("rx", s, q, ids[i]); random()`` — same payload, same hash,
        same double — without mutating the instance key, so a whole
        broadcast's delivery Bernoullis come back in one call while
        staying pure functions of each hop's identity.
        """
        seed = self.seed
        blake2b = hashlib.blake2b
        out = []
        append = out.append
        for suffix in suffixes:
            payload = repr((seed, prefix + (suffix,), 0)).encode("utf-8")
            raw = blake2b(payload, digest_size=8).digest()
            append((int.from_bytes(raw, "big") >> 11) * _U53)
        return out

    # ---------------------------------------------- Generator-shaped surface

    def random(self) -> float:
        return self._uniform()

    def exponential(self, scale: float = 1.0) -> float:
        # Inverse-CDF with mean ``scale`` (numpy's parameterization);
        # log1p(-u) keeps precision for small u and never sees log(0).
        return -float(scale) * math.log1p(-self._uniform())

    def __getattr__(self, name: str) -> Any:
        raise AttributeError(
            f"KeyedHopRng has no {name!r}: only random() and exponential() "
            "are partition-invariant; components drawing anything else are "
            "not shard-safe"
        )
