"""One shard's replica: world build, ownership, windows, handoffs.

A :class:`ShardRuntime` is what actually lives inside each worker process
(or side by side in inline mode): a full replica of the world built
deterministically from the spec's seed, specialized to one shard of the
partition.  Replication is the synchronization strategy — mobility sweeps
and fault processes run identically everywhere from their own named RNG
streams, so node liveness, positions, and blocked links never need to be
shipped; only *packet handoffs* and externally injected lifecycle events
cross the barrier.

What is partitioned, not replicated:

* **Origination** — the synthetic workload only schedules ticks for owned
  senders.
* **Routing reaction** — non-owned nodes are detached from the router, so
  deliveries (which only happen owner-side) never trigger replica
  forwarding.
* **Trace recording** — :class:`.dispatch.ShardTraceLog` keeps each
  record in exactly one shard.

The conservative lookahead is ``min packet airtime + min cross-shard
propagation delay``: every cross-shard delivery is scheduled at least one
airtime after its send, so a window of ``lookahead / 2`` guarantees all
handoffs land strictly inside the *next* window.  The propagation term
only contributes when no broadcast can occur (broadcast delay carries no
propagation component) and the world is static.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.net.packet as packet_module
from repro.faults.faults import LinkFlapFault, NodeChurnFault
from repro.net.channel import Channel
from repro.net.mac import ContentionMac, IdealMac
from repro.net.node import Network
from repro.net.packet import Packet, PacketKind
from repro.net.registry import StackSpec, compose
from repro.net.stack import SPEED_OF_LIGHT_M_S
from repro.net.topology import (
    GridPartition,
    min_cross_shard_distance_m,
    partition_network,
)
from repro.obs import wire_from_env
from repro.scenarios.builder import ScenarioBuilder
from repro.shard.dispatch import Handoff, ShardDispatcher, ShardTraceLog
from repro.shard.rng import KeyedHopRng
from repro.shard.spec import ShardPlan, ShardScenarioSpec
from repro.sim.kernel import Simulator
from repro.util.geometry import Point
from repro.util.rng import derive_seed

__all__ = ["ShardRuntime", "REPLICATED_METRIC_PREFIXES", "AODV_CONTROL_BITS"]

#: Metric counters incremented identically in every replica (fault
#: processes run everywhere); merged with ``max``, not ``sum``.
REPLICATED_METRIC_PREFIXES = ("faults.",)

#: AODV RREQ/RREP frames are 256 bits — the smallest packet a world with
#: AODV can put on the air, hence a lookahead bound.
AODV_CONTROL_BITS = 256

#: Per-shard packet-uid blocks: shard ``i`` allocates uids from
#: ``1 + i * 10**9``, so forwarded uids never collide across shards.
UID_BLOCK = 10**9


class ShardRuntime:
    """A full world replica acting for one shard of the partition."""

    def __init__(
        self,
        spec: ShardScenarioSpec,
        plan: ShardPlan,
        shard_index: int,
        *,
        collect_trace: bool = True,
    ):
        spec.validate()
        plan.validate()
        self.spec = spec
        self.plan = plan
        self.shard_index = shard_index
        # Own uid counter, installed as the packet module's allocator
        # whenever this runtime is active (activate() — critical in
        # inline mode where several runtimes share one process).
        self._uid_counter = itertools.count(1 + shard_index * UID_BLOCK)
        self.activate()

        self.sim = Simulator(seed=spec.seed)
        self.sim.trace = ShardTraceLog(self.sim, shard_index)
        self.sim.trace.enabled = collect_trace
        # Env-wired observability (REPRO_OBS_NDJSON_DIR / _RING_DIR /
        # _PROFILE): the shard index namespaces export filenames so
        # fork-mode siblings — which inherit the parent's pid-seq counter
        # state — can never clobber each other's parts.  REPRO_OBS_TRACE
        # is deliberately dropped: the causal packet tracer bypasses the
        # ownership filter (emit_schema has no shard gate), so enabling
        # it per-replica would duplicate pkt.* records across shards.
        wire_from_env(
            self.sim,
            {k: v for k, v in os.environ.items() if k != "REPRO_OBS_TRACE"},
            shard=shard_index,
        )

        # Provenance for RunManifests stamped next to this run's exports.
        # Only the 1-shard (serial reference) world embeds the replay
        # payload: a shard-local trace is a partial view, so replaying it
        # alone could never reproduce the merged fingerprint.
        from repro.obs.forensics import content_hash

        self.sim.provenance["content_hashes"] = {
            "scenario_spec": content_hash(spec),
            "shard_plan": content_hash(plan),
        }
        if plan.n_shards == 1:
            self.sim.provenance["scenario"] = {
                "kind": "shard-world",
                "spec": dataclasses.asdict(spec),
                "plan": dataclasses.asdict(plan),
                "until": None,
            }

        self.scenario = None
        if spec.kind == "urban":
            self.network = self._build_urban()
        else:
            self.network = self._build_uniform()
        if spec.bitrate_cap_bps is not None:
            for node in self.network.nodes.values():
                node.bitrate_bps = min(node.bitrate_bps, spec.bitrate_cap_bps)

        self.partition: GridPartition = partition_network(
            self.network,
            plan.n_shards,
            cell_size_m=plan.cell_size_m,
            seed=plan.partition_seed,
        )
        self.owned = frozenset(self.partition.nodes_of(shard_index))
        self.sim.trace.set_ownership(self.owned)

        # Non-owned nodes keep their replica state but stop *reacting*:
        # deliveries only ever happen owner-side, and a detached node
        # cannot originate forwards.
        for nid in sorted(self.network.nodes):
            node = self.network.nodes[nid]
            if nid not in self.owned and node.router is not None:
                node.router.detach(nid)

        self.outbox: List[Handoff] = []
        self.hoprng = KeyedHopRng(derive_seed(spec.seed, "shard.hops"))
        self.dispatcher = ShardDispatcher(
            self.network.stack,
            owned=self.owned,
            shard_index=shard_index,
            assignments=self.partition.assignments,
            hoprng=self.hoprng,
            outbox=self.outbox,
        )
        self.network.stack.dispatcher = self.dispatcher

        self._install_handlers()
        self._install_workload()
        self._install_faults()
        if self.scenario is not None and spec.mobile_fraction > 0.0:
            self.scenario.mobility.start()
        self._install_chaos()

        self.lookahead_s = self._lookahead()

    # ------------------------------------------------------------ activation

    def activate(self) -> None:
        """Make this runtime's uid counter the packet allocator."""
        packet_module._packet_ids = self._uid_counter

    # ----------------------------------------------------------- world build

    def _build_urban(self) -> Network:
        spec = self.spec
        builder = (
            ScenarioBuilder(self.sim)
            .urban_grid(
                blocks=spec.blocks,
                block_size_m=spec.block_size_m,
                density=spec.density,
            )
            .population(n_blue=spec.n_blue, n_red=spec.n_red, n_gray=spec.n_gray)
            .mobility(
                spec.mobile_fraction,
                update_period_s=spec.mobility_period_s,
            )
        )
        if spec.router is not None:
            builder = builder.stack(
                router=spec.router,
                mac=spec.mac,
                router_params=spec.router_param_dict(),
                mac_params=spec.mac_param_dict(),
            )
        self.scenario = builder.build()
        return self.scenario.network

    def _build_uniform(self) -> Network:
        """A jittered grid of identical radios — the benchmark world.

        Built without the asset machinery (batteries, sensors): at 10k
        nodes the world must stay cheap to replicate, and uniform radios
        give the scale bench a controlled lookahead.
        """
        spec = self.spec
        channel = Channel(seed=derive_seed(spec.seed, "shard.channel"))
        mac: Any = (
            ContentionMac() if spec.mac == "csma" else IdealMac()
        )
        network = Network(self.sim, channel=channel, mac=mac)
        rng = np.random.default_rng(derive_seed(spec.seed, "shard.uniform"))
        side = int(math.ceil(math.sqrt(spec.n_nodes)))
        # One bulk draw keeps the build fast and trivially replicated.
        jitter = rng.uniform(-spec.jitter_m, spec.jitter_m, size=(spec.n_nodes, 2))
        for i in range(spec.n_nodes):
            x = (i % side) * spec.spacing_m + jitter[i, 0]
            y = (i // side) * spec.spacing_m + jitter[i, 1]
            network.create_node(
                i,
                Point(x, y),
                tx_power_dbm=spec.tx_power_dbm,
                bitrate_bps=spec.bitrate_bps,
            )
        if spec.router is not None:
            stack_spec = StackSpec(
                router=spec.router,
                mac=spec.mac,
                router_params=spec.router_param_dict(),
                mac_params=spec.mac_param_dict(),
            )
            compose(
                self.sim,
                stack_spec,
                network=network,
                attach=sorted(network.nodes),
            )
        return network

    # ------------------------------------------------------------- handlers

    def _install_handlers(self) -> None:
        trace = self.sim.trace

        def on_rx(node: Any, pkt: Packet, from_id: int) -> None:
            trace.emit(
                "app.rx",
                node=node.id,
                src=pkt.src,
                kind=pkt.kind.value,
                last_hop=from_id,
            )

        for node in self.network.nodes.values():
            node.default_handler = on_rx

    # ------------------------------------------------------------- workload

    def _workload_partner(self, sender: int, ids: Sequence[int]) -> int:
        """Seed-derived fixed unicast partner (never the sender itself)."""
        others = [n for n in ids if n != sender]
        pick = derive_seed(self.spec.seed, "shard.partner", str(sender)) % len(others)
        return others[pick]

    def _neighbor_buckets(
        self, ids: Sequence[int]
    ) -> Tuple[float, Dict[Tuple[int, int], List[int]]]:
        """Spatial hash for nearest-neighbor queries.

        A pairwise scan is O(n) per sender — 25M distance evaluations at
        5k nodes, dwarfing the simulation itself — and the build cost is
        replicated in every worker, so it would cap sharded speedup cold.
        Bucketing by node spacing makes each query O(1) on quasi-uniform
        worlds.
        """
        cell = max(
            self.spec.spacing_m
            if self.spec.kind == "uniform"
            else self.network._max_range(),
            1.0,
        )
        nodes = self.network.nodes
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for nid in ids:
            p = nodes[nid].position
            key = (math.floor(p.x / cell), math.floor(p.y / cell))
            buckets.setdefault(key, []).append(nid)
        return cell, buckets

    def _nearest_neighbor(
        self,
        sender: int,
        cell: float,
        buckets: Dict[Tuple[int, int], List[int]],
    ) -> int:
        """Closest other node; ties break to the lowest id (the same
        winner the ascending-id pairwise scan would pick)."""
        nodes = self.network.nodes
        p = nodes[sender].position
        cx, cy = math.floor(p.x / cell), math.floor(p.y / cell)
        best, best_d = sender, math.inf
        ring = 0
        while True:
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue  # only the new ring's cells
                    for nid in buckets.get((cx + dx, cy + dy), ()):
                        if nid == sender:
                            continue
                        q = nodes[nid].position
                        d = (p.x - q.x) ** 2 + (p.y - q.y) ** 2
                        if d < best_d or (d == best_d and nid < best):
                            best, best_d = nid, d
            # A node in ring r+1 can still be closer than one found in
            # ring r (corner vs edge), so scan until the ring's nearest
            # possible distance exceeds the best found.
            if best != sender and (ring * cell) ** 2 > best_d:
                return best
            ring += 1
            if ring * cell > 1e7:  # pragma: no cover - degenerate world
                return best

    def _install_workload(self) -> None:
        wl = self.spec.workload
        ids = sorted(self.network.nodes)
        if len(ids) < 2 and wl.kind != "beacons":
            return
        period = 1.0 / wl.rate_hz
        network = self.network
        if wl.kind == "local":
            cell, buckets = self._neighbor_buckets(ids)
        for sender in ids[:: wl.sender_stride]:
            if sender not in self.owned:
                continue
            # Seed-derived phase spreads senders across the period so the
            # serial run and every shard layout see identical tick times.
            phase = (
                derive_seed(self.spec.seed, "shard.phase", str(sender)) % 10**6
            ) / 10**6
            start = wl.start_s + phase * period
            if wl.kind == "beacons":
                dst: Optional[int] = None
                kind = PacketKind.BEACON
            else:
                dst = (
                    self._workload_partner(sender, ids)
                    if wl.kind == "unicast"
                    else self._nearest_neighbor(sender, cell, buckets)
                )
                kind = PacketKind.DATA

            def tick(s: int = sender, d: Optional[int] = dst, k: PacketKind = kind):
                node = network.nodes[s]
                pkt = Packet(
                    src=s,
                    dst=d,
                    kind=k,
                    size_bits=wl.size_bits,
                    ttl=wl.ttl,
                    created_at=self.sim.now,
                )
                if node.router is not None:
                    node.router.send(s, pkt)
                elif d is None:
                    network.broadcast(s, pkt)
                else:
                    network.send(s, d, pkt)

            self.sim.every(period, tick, start_delay=start)

    # --------------------------------------------------------------- faults

    def _install_faults(self) -> None:
        plan = self.spec.faults
        if plan is None:
            return
        if plan.churn is not None:
            c = plan.churn
            fault = NodeChurnFault(
                self.network,
                mtbf_s=c.mtbf_s,
                mean_downtime_s=c.mean_downtime_s,
            )
            fault.schedule(c.start_s, c.duration_s)
        if plan.link_flap is not None:
            f = plan.link_flap
            fault = LinkFlapFault(
                self.network,
                n_links=f.n_links,
                mtbf_s=f.mtbf_s,
                mean_downtime_s=f.mean_downtime_s,
            )
            fault.schedule(f.start_s, f.duration_s)

    # ---------------------------------------------------------------- chaos

    def _install_chaos(self) -> None:
        chaos = self.spec.chaos_crash
        if chaos is None or chaos[0] != self.shard_index:
            return
        _shard, when, sentinel = chaos

        def crash() -> None:
            if os.path.exists(sentinel):
                return  # already died once; behave this attempt
            with open(sentinel, "w", encoding="utf-8") as fh:
                fh.write("crashed\n")
            os._exit(11)

        self.sim.call_at(when, crash)

    # ------------------------------------------------------------- lookahead

    def _lookahead(self) -> float:
        if self.plan.n_shards <= 1:
            return math.inf
        min_bits = float(self.spec.workload.size_bits)
        if self.spec.router == "aodv":
            min_bits = min(min_bits, float(AODV_CONTROL_BITS))
        max_bitrate = max(
            node.bitrate_bps for node in self.network.nodes.values()
        )
        airtime = min_bits / max(max_bitrate, 1.0)
        # Broadcast delay carries no propagation term, so distance only
        # helps when nothing can broadcast and nobody moves.
        prop = 0.0
        broadcast_free = (
            self.spec.router is None and self.spec.workload.kind == "local"
        )
        if broadcast_free and self.spec.mobile_fraction == 0.0:
            dist = min_cross_shard_distance_m(self.network, self.partition)
            if math.isfinite(dist):
                prop = dist / SPEED_OF_LIGHT_M_S
        return airtime + prop

    # --------------------------------------------------------------- windows

    def run_window(self, t_end: float) -> List[Handoff]:
        """Advance to the barrier; return (and clear) the outbox."""
        self.activate()
        self.sim.run(until=t_end)
        out = list(self.outbox)
        self.outbox.clear()
        return out

    def apply_handoffs(self, handoffs: Sequence[Handoff]) -> None:
        """Schedule deliveries shipped by other shards.

        Lookahead guarantees every ``deliver_time`` lies at or beyond the
        barrier we just crossed, so ``call_at`` never schedules into the
        past.
        """
        self.activate()
        dispatcher = self.dispatcher
        for deliver_time, kind, src, dst, _shard, pkt in handoffs:
            self.sim.call_at(
                deliver_time,
                lambda k=kind, s=src, d=dst, p=pkt: dispatcher.apply_remote(
                    k, s, d, p
                ),
            )

    def apply_lifecycle(self, events: Sequence[Tuple[float, int, bool]]) -> None:
        """Schedule coordinator-injected node up/down transitions."""
        self.activate()
        network = self.network
        for when, node_id, up in events:
            if node_id not in network.nodes:
                continue
            if up:
                self.sim.call_at(when, lambda n=node_id: network.restore_node(n))
            else:
                self.sim.call_at(when, lambda n=node_id: network.fail_node(n))

    # --------------------------------------------------------------- results

    def collect(self) -> Dict[str, Any]:
        """The shard's contribution to the merged result (picklable).

        The trace travels as one struct-packed binary payload
        (:meth:`~repro.sim.trace.TraceLog.packed_payload`) rather than a
        list of per-record dicts — orders of magnitude less pickle for
        the pipe; the coordinator decodes with
        :func:`repro.obs.merge.payload_to_records`.  ``metrics`` is the
        registry's raw mergeable state (:func:`repro.obs.merge.
        merge_metrics` unifies it across shards).
        """
        self.sim.export_obs()
        return {
            "shard": self.shard_index,
            "owned": len(self.owned),
            "trace": self.sim.trace.packed_payload(),
            "counters": dict(self.sim.metrics.counters()),
            "metrics": self.sim.registry.state(),
            "events_processed": self.sim.events_processed,
            "wall_elapsed": self.sim.wall_elapsed,
            "now": self.sim.now,
        }
