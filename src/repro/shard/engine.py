"""The shard coordinator: window barriers, pipes, retries, merged results.

:class:`ShardedSimulator` exposes the same ``run(until=...)`` surface as
:class:`~repro.sim.kernel.Simulator` but executes the world as N shard
replicas advancing in conservative time windows:

1. Every worker builds the same world from the spec (``"ready"``
   handshake reports its lookahead; the coordinator takes the min).
2. Per window, the coordinator sends ``("window", t_end, handoffs,
   lifecycle)`` to every worker, which applies the inbound cross-shard
   deliveries and injected node up/down events, advances its simulator to
   the barrier, and replies ``("done", ...)`` with its outbox.  A window
   of ``lookahead / 2`` (strictly any window ≤ lookahead) guarantees
   every handoff generated in window *j* delivers after barrier *j*, so
   applying it at the start of window *j+1* never schedules into the
   past.
3. ``("finish",)`` collects per-shard traces and counters, which are
   merged deterministically: traces via
   :func:`repro.obs.merge.merge_traces`, counters by sum (max for
   replicated fault counters).

Failure semantics follow :mod:`repro.campaign.runner`: a worker that dies
or misses a barrier deadline poisons the whole attempt — workers share
replicated state, so partial recovery is impossible by design — and the
coordinator kills the pool and retries the entire run from scratch
(deterministic worlds make the retry bit-identical, minus the chaos that
killed it).  ``mode="inline"`` runs every shard runtime in-process with
the same barrier algebra: slower than a real pool but deterministic,
debuggable, and what most tests use.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.merge import (
    merge_metrics,
    merge_traces,
    merged_fingerprint,
    payload_to_records,
)
from repro.shard.runtime import REPLICATED_METRIC_PREFIXES, ShardRuntime
from repro.shard.spec import ShardConfigError, ShardPlan, ShardScenarioSpec

__all__ = [
    "ShardedSimulator",
    "ShardDivergenceError",
    "ShardRunResult",
    "ShardWorkerError",
    "run_serial",
]

#: Hard sanity cap on barrier count: a mis-specified window must fail
#: loudly, not grind through millions of IPC round-trips.
MAX_WINDOWS = 2_000_000


class ShardWorkerError(RuntimeError):
    """A worker died, errored, or missed a barrier deadline."""


class ShardDivergenceError(RuntimeError):
    """A sharded run's merged trace disagreed with the serial reference.

    Raised by :meth:`ShardedSimulator.run_verified` after both runs have
    been dumped to disk; :attr:`report` is the divergence report dict
    (see :func:`repro.obs.forensics.dump_divergence`) naming the first
    divergent event and its owning shard.
    """

    def __init__(self, message: str, report: Dict[str, Any]):
        super().__init__(message)
        self.report = report


@dataclass
class ShardRunResult:
    """Merged outcome of a sharded (or serial reference) run."""

    until: float
    n_shards: int
    mode: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: Merged registry instrument state (see ``merge_metrics``): counters
    #: summed (``faults.*`` max-merged), gauges maxed, histograms merged
    #: bucket-wise — plus the coordinator's ``shard.lag_events`` gauge.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    events_processed: int = 0
    wall_elapsed_s: float = 0.0
    lookahead_s: float = math.inf
    window_s: float = math.inf
    n_windows: int = 0
    retries: int = 0
    per_shard: List[Dict[str, Any]] = field(default_factory=list)
    #: Forensics provenance (serial runs only): per-stream RNG identity
    #: rows and periodic draw-count checkpoints — the RunManifest inputs.
    rng_streams: List[Dict[str, Any]] = field(default_factory=list)
    rng_checkpoints: List[Dict[str, Any]] = field(default_factory=list)
    checkpoint_interval_s: Optional[float] = None

    def fingerprint(self, categories: Optional[Sequence[str]] = None) -> str:
        """Partition-invariant content hash of the merged trace."""
        return merged_fingerprint(self.records, categories)

    @property
    def events_per_sec(self) -> float:
        if not math.isfinite(self.wall_elapsed_s) or self.wall_elapsed_s < 1e-9:
            return 0.0
        return self.events_processed / self.wall_elapsed_s


def run_serial(
    spec: ShardScenarioSpec,
    until: float,
    *,
    collect_trace: bool = True,
    checkpoint_interval_s: Optional[float] = None,
) -> ShardRunResult:
    """The 1-shard reference run: same keyed dispatch, no barriers.

    ``checkpoint_interval_s`` enables periodic RNG draw-count checkpoints
    (see :meth:`~repro.sim.kernel.Simulator.enable_rng_checkpoints`) —
    the checkpoint callback draws no randomness and emits no records, so
    enabling it never perturbs the trace.  The result then carries the
    RNG provenance a replayable RunManifest needs.
    """
    runtime = ShardRuntime(
        spec, ShardPlan(n_shards=1), 0, collect_trace=collect_trace
    )
    runtime.apply_lifecycle(spec.lifecycle)
    if checkpoint_interval_s is not None:
        runtime.sim.enable_rng_checkpoints(checkpoint_interval_s)
    t0 = time.perf_counter()
    runtime.sim.run(until=until)
    wall = time.perf_counter() - t0
    payload = runtime.collect()
    metrics = merge_metrics(
        [payload["metrics"]], replicated_prefixes=REPLICATED_METRIC_PREFIXES
    )
    metrics["shard.lag_events"] = {"kind": "gauge", "value": 0.0}
    return ShardRunResult(
        until=until,
        n_shards=1,
        mode="serial",
        records=merge_traces([payload_to_records(payload["trace"])]),
        counters=dict(payload["counters"]),
        metrics=metrics,
        events_processed=payload["events_processed"],
        wall_elapsed_s=wall,
        per_shard=[{"shard": 0, "owned": payload["owned"]}],
        rng_streams=runtime.sim.rng.stream_states(),
        rng_checkpoints=list(runtime.sim.rng_checkpoints),
        checkpoint_interval_s=checkpoint_interval_s,
    )


def _merge_counters(payloads: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for payload in payloads:
        for name, value in payload["counters"].items():
            if name.startswith(REPLICATED_METRIC_PREFIXES):
                merged[name] = max(merged.get(name, 0.0), value)
            else:
                merged[name] = merged.get(name, 0.0) + value
    return merged


def _shard_worker_main(
    conn: Any,
    spec: ShardScenarioSpec,
    plan: ShardPlan,
    shard_index: int,
    collect_trace: bool,
) -> None:
    """Worker process entry: build, handshake, serve window barriers."""
    try:
        runtime = ShardRuntime(
            spec, plan, shard_index, collect_trace=collect_trace
        )
        conn.send(("ready", shard_index, runtime.lookahead_s, len(runtime.owned)))
        while True:
            msg = conn.recv()
            if msg[0] == "window":
                _tag, t_end, handoffs, lifecycle = msg
                runtime.apply_handoffs(handoffs)
                runtime.apply_lifecycle(lifecycle)
                outbox = runtime.run_window(t_end)
                conn.send(
                    ("done", shard_index, outbox, runtime.sim.events_processed)
                )
            elif msg[0] == "finish":
                conn.send(("result", shard_index, runtime.collect()))
                return
            else:  # pragma: no cover - protocol guard
                raise ShardWorkerError(f"unknown message {msg[0]!r}")
    except EOFError:  # coordinator went away; nothing to report to
        pass
    except Exception as exc:
        try:
            conn.send(("error", shard_index, repr(exc)))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()


class ShardedSimulator:
    """Coordinator for a multi-process (or inline) sharded run."""

    def __init__(
        self,
        spec: ShardScenarioSpec,
        plan: Optional[ShardPlan] = None,
        *,
        n_shards: Optional[int] = None,
        mode: str = "fork",
        collect_trace: bool = True,
        barrier_timeout_s: float = 120.0,
        max_retries: int = 1,
    ):
        if plan is None:
            plan = ShardPlan(n_shards=n_shards if n_shards is not None else 1)
        elif n_shards is not None and n_shards != plan.n_shards:
            raise ShardConfigError("n_shards conflicts with plan.n_shards")
        if mode not in ("fork", "spawn", "inline"):
            raise ShardConfigError(f"unknown mode {mode!r}")
        if mode == "inline" and spec.chaos_crash is not None:
            raise ShardConfigError(
                "chaos_crash hard-kills its process; use fork/spawn mode"
            )
        spec.validate()
        plan.validate()
        self.spec = spec
        self.plan = plan
        self.mode = mode
        self.collect_trace = collect_trace
        self.barrier_timeout_s = barrier_timeout_s
        self.max_retries = max_retries

    # ---------------------------------------------------------------- public

    def run(self, until: float) -> ShardRunResult:
        """Advance every shard to ``until``; return the merged result."""
        if not (until > 0.0) or not math.isfinite(until):
            raise ShardConfigError(f"until must be finite and > 0, got {until}")
        if self.plan.n_shards == 1:
            return run_serial(self.spec, until, collect_trace=self.collect_trace)
        retries = 0
        while True:
            try:
                if self.mode == "inline":
                    result = self._run_inline(until)
                else:
                    result = self._run_pool(until)
                result.retries = retries
                return result
            except ShardWorkerError:
                retries += 1
                if retries > self.max_retries:
                    raise

    def run_verified(
        self,
        until: float,
        *,
        report_dir: str = "divergence-report",
        checkpoint_interval_s: Optional[float] = None,
    ) -> ShardRunResult:
        """Run sharded, then verify against the serial reference.

        On a fingerprint mismatch both merged streams are dumped to
        ``report_dir`` (NDJSON exports + RunManifests + a
        ``divergence.json`` naming the first divergent event and its
        owning shard — see :func:`repro.obs.forensics.dump_divergence`)
        and :class:`ShardDivergenceError` is raised.  On agreement the
        sharded result is returned untouched.
        """
        sharded = self.run(until)
        serial = run_serial(
            self.spec,
            until,
            collect_trace=self.collect_trace,
            checkpoint_interval_s=checkpoint_interval_s,
        )
        if serial.fingerprint() == sharded.fingerprint():
            return sharded
        # Imported lazily: the forensics layer only loads on the failure
        # path, keeping the happy path's import surface unchanged.
        from repro.obs.forensics import dump_divergence

        report = dump_divergence(
            serial, sharded, self.spec, self.plan, until, report_dir
        )
        first = (report.get("diff") or {}).get("first_divergence") or {}
        where = (
            f"t={first.get('time'):g} {first.get('category')} "
            f"(shard {first.get('owning_shard')})"
            if first
            else "streams differ only in cardinality"
        )
        raise ShardDivergenceError(
            f"sharded run diverged from serial reference at {where}; "
            f"full dump in {report['report_path']}",
            report,
        )

    # ---------------------------------------------------------------- shared

    def _resolve_window(self, lookahead: float) -> float:
        if not math.isfinite(lookahead) or lookahead <= 0.0:
            raise ShardConfigError(
                f"degenerate lookahead {lookahead!r}: the world admits "
                "zero-delay cross-shard interaction"
            )
        window = self.plan.window_s
        if window is None:
            # Half the lookahead: correct at any value <= lookahead, and
            # the margin keeps barrier-edge deliveries strictly interior.
            return lookahead / 2.0
        if window > lookahead:
            raise ShardConfigError(
                f"window_s={window} exceeds the conservative lookahead "
                f"{lookahead:.6g}s; handoffs would arrive late"
            )
        return window

    @staticmethod
    def _barriers(until: float, window: float) -> List[float]:
        n = int(math.ceil(until / window))
        if n > MAX_WINDOWS:
            raise ShardConfigError(
                f"{n} windows of {window:.3g}s to reach t={until}: raise "
                "window_s / bitrate_cap or lower the horizon"
            )
        return [min(until, (j + 1) * window) for j in range(n)]

    def _lifecycle_buckets(
        self, barriers: List[float]
    ) -> List[List[Tuple[float, int, bool]]]:
        """Bucket spec lifecycle events by the window containing them."""
        buckets: List[List[Tuple[float, int, bool]]] = [[] for _ in barriers]
        for event in sorted(self.spec.lifecycle):
            when = event[0]
            if when > barriers[-1]:
                continue  # beyond the horizon, same as serial
            for j, t_end in enumerate(barriers):
                if when <= t_end:
                    buckets[j].append(event)
                    break
        return buckets

    def _merged(
        self,
        until: float,
        payloads: List[Dict[str, Any]],
        wall: float,
        lookahead: float,
        window: float,
        n_windows: int,
    ) -> ShardRunResult:
        records: List[Dict[str, Any]] = []
        if self.collect_trace:
            records = merge_traces(
                [payload_to_records(p["trace"]) for p in payloads]
            )
        metrics = merge_metrics(
            [p["metrics"] for p in payloads],
            replicated_prefixes=REPLICATED_METRIC_PREFIXES,
        )
        # Coordinator-side gauge: how unevenly the partition loaded the
        # workers (max minus min events fired).  A lag of ~0 means the
        # layout is balanced; a large one names the scaling bottleneck.
        events = [p["events_processed"] for p in payloads]
        metrics["shard.lag_events"] = {
            "kind": "gauge",
            "value": float(max(events) - min(events)) if events else 0.0,
        }
        return ShardRunResult(
            until=until,
            n_shards=self.plan.n_shards,
            mode=self.mode,
            records=records,
            counters=_merge_counters(payloads),
            metrics=metrics,
            events_processed=sum(p["events_processed"] for p in payloads),
            wall_elapsed_s=wall,
            lookahead_s=lookahead,
            window_s=window,
            n_windows=n_windows,
            per_shard=[
                {"shard": p["shard"], "owned": p["owned"]} for p in payloads
            ],
        )

    # ---------------------------------------------------------------- inline

    def _run_inline(self, until: float) -> ShardRunResult:
        k = self.plan.n_shards
        t0 = time.perf_counter()
        runtimes = [
            ShardRuntime(self.spec, self.plan, i, collect_trace=self.collect_trace)
            for i in range(k)
        ]
        lookahead = min(rt.lookahead_s for rt in runtimes)
        window = self._resolve_window(lookahead)
        barriers = self._barriers(until, window)
        buckets = self._lifecycle_buckets(barriers)
        inboxes: List[List[Any]] = [[] for _ in range(k)]
        for j, t_end in enumerate(barriers):
            outboxes: List[List[Any]] = [[] for _ in range(k)]
            for i, runtime in enumerate(runtimes):
                runtime.apply_handoffs(inboxes[i])
                runtime.apply_lifecycle(buckets[j])
                outboxes[i] = runtime.run_window(t_end)
            inboxes = [[] for _ in range(k)]
            for out in outboxes:
                for handoff in out:
                    inboxes[handoff[4]].append(handoff)
        payloads = [rt.collect() for rt in runtimes]
        wall = time.perf_counter() - t0
        return self._merged(
            until, payloads, wall, lookahead, window, len(barriers)
        )

    # ------------------------------------------------------------------ pool

    def _recv(self, conn: Any, proc: Any, shard: int) -> Tuple[Any, ...]:
        """One message from ``conn`` within the barrier deadline."""
        deadline = time.monotonic() + self.barrier_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise ShardWorkerError(f"shard {shard} missed barrier deadline")
            try:
                if conn.poll(min(remaining, 0.25)):
                    msg = conn.recv()
                    break
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise ShardWorkerError(f"shard {shard} pipe failed: {exc!r}")
            if not proc.is_alive():
                raise ShardWorkerError(
                    f"shard {shard} died (exitcode={proc.exitcode})"
                )
        if msg[0] == "error":
            raise ShardWorkerError(f"shard {shard} errored: {msg[2]}")
        return msg

    @staticmethod
    def _kill_pool(procs: List[Any], conns: List[Any]) -> None:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=2.0)

    def _run_pool(self, until: float) -> ShardRunResult:
        k = self.plan.n_shards
        start_method = self.mode
        if start_method not in mp.get_all_start_methods():  # pragma: no cover
            start_method = "spawn"
        ctx = mp.get_context(start_method)
        t0 = time.perf_counter()
        procs: List[Any] = []
        conns: List[Any] = []
        try:
            for i in range(k):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, self.spec, self.plan, i, self.collect_trace),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)

            lookaheads = []
            for i in range(k):
                msg = self._recv(conns[i], procs[i], i)
                if msg[0] != "ready":
                    raise ShardWorkerError(
                        f"shard {i}: expected ready, got {msg[0]!r}"
                    )
                lookaheads.append(msg[2])
            lookahead = min(lookaheads)
            window = self._resolve_window(lookahead)
            barriers = self._barriers(until, window)
            buckets = self._lifecycle_buckets(barriers)

            inboxes: List[List[Any]] = [[] for _ in range(k)]
            for j, t_end in enumerate(barriers):
                for i in range(k):
                    conns[i].send(("window", t_end, inboxes[i], buckets[j]))
                inboxes = [[] for _ in range(k)]
                for i in range(k):
                    msg = self._recv(conns[i], procs[i], i)
                    if msg[0] != "done":
                        raise ShardWorkerError(
                            f"shard {i}: expected done, got {msg[0]!r}"
                        )
                    for handoff in msg[2]:
                        inboxes[handoff[4]].append(handoff)

            payloads: List[Optional[Dict[str, Any]]] = [None] * k
            for i in range(k):
                conns[i].send(("finish",))
            for i in range(k):
                msg = self._recv(conns[i], procs[i], i)
                if msg[0] != "result":
                    raise ShardWorkerError(
                        f"shard {i}: expected result, got {msg[0]!r}"
                    )
                payloads[msg[1]] = msg[2]
        except (OSError, BrokenPipeError) as exc:
            raise ShardWorkerError(f"pool pipe failure: {exc!r}")
        finally:
            self._kill_pool(procs, conns)
        wall = time.perf_counter() - t0
        return self._merged(
            until,
            [p for p in payloads if p is not None],
            wall,
            lookahead,
            window,
            len(barriers),
        )
