"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the library with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation kernel is misused."""


class NetworkError(ReproError):
    """Raised for network-layer failures (no route, node unknown, ...)."""


class CompositionError(ReproError):
    """Raised when a composite asset cannot be synthesized."""


class RequirementError(ReproError):
    """Raised when mission goals cannot be compiled into requirements."""


class DiscoveryError(ReproError):
    """Raised by the asset-discovery subsystem."""


class AdaptationError(ReproError):
    """Raised by the adaptation subsystem."""


class LearningError(ReproError):
    """Raised by the learning subsystem."""


class SecurityError(ReproError):
    """Raised by the security subsystem (attack configuration, trust)."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class CampaignError(ReproError):
    """Raised by the campaign runner when tasks exhaust their retry budget."""


class CampaignInterrupted(CampaignError):
    """Raised when a campaign is stopped by the user mid-run.

    Completed task results have already been flushed to the result cache;
    ``partial`` carries the outcomes settled before the interrupt so CLIs
    can print an honest summary and exit cleanly.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class ServiceError(ReproError):
    """Raised by the synthesis-service layer (admission, breakers, queries)."""
