"""E3 (§III-A): discovery of intermittent mobile assets; red/gray unmasking.

Two sweeps: (a) discovery recall over time as a function of asset duty
cycle (intermittent presence is what makes cyberphysical discovery hard);
(b) side-channel detection quality of non-blue emitters as a function of
their emission rate.  Expected shape: recall rises with probing time and
falls with duty cycle; side-channel detection recall rises with emission
rate at perfect precision (emissions cannot be faked *off*).
"""

from common import ResultTable, run_and_print, standard_scenario

from repro.core.synthesis import DiscoveryService


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E3 — discovery recall vs duty cycle & time; side-channel detection",
        ["duty_cycle", "t_30s_recall", "t_120s_recall", "emission_rate",
         "sidechannel_recall", "sidechannel_precision"],
    )
    duties = (0.1, 0.5, 1.0) if quick else (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)
    emissions = (0.05, 0.3, 0.8)
    for duty, emission in zip(duties, list(emissions) * 2):
        scenario = standard_scenario(31, n_blue=100, n_red=15, n_gray=25)
        for asset in scenario.inventory:
            asset.duty_cycle = duty
        scenario.start()
        service = DiscoveryService(
            scenario,
            scenario.blue_node_ids()[:15],
            probe_period_s=5.0,
            emission_rate=emission,
        )
        service.start()
        scenario.sim.run(until=30.0)
        recall_30 = service.recall()
        scenario.sim.run(until=120.0)
        recall_120 = service.recall()
        stats = service.hostile_detection_stats()
        table.add_row(
            duty_cycle=duty,
            t_30s_recall=recall_30,
            t_120s_recall=recall_120,
            emission_rate=emission,
            sidechannel_recall=stats["recall"],
            sidechannel_precision=stats["precision"],
        )
    return table


def test_e3_discovery(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    # At full duty cycle, longer probing keeps recall high (records of
    # intermittent assets can age out, so strict monotonicity only holds
    # when assets answer every probe).
    full_duty = [r for r in rows if r["duty_cycle"] == 1.0]
    assert all(r["t_120s_recall"] >= 0.8 * r["t_30s_recall"] for r in full_duty)
    # Side-channel precision is perfect: only genuine emitters are flagged.
    assert all(r["sidechannel_precision"] in (0.0, 1.0) for r in rows)
    # Higher duty cycle -> higher recall (first vs last sweep row).
    assert rows[-1]["t_120s_recall"] >= rows[0]["t_120s_recall"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
