"""E18 (extension; §III-B functional composition): pipeline placement.

Place a perception pipeline (capture -> detect -> associate -> report) onto
the discovered compute fabric: greedy latency-aware placement vs the
cloud-only baseline (everything on the single biggest host), across data
rates.  Expected shape: greedy never loses to cloud-only; *where* it places
shifts with rate — at low rates it processes near the camera (the transfer
to the far edge cloud dominates), at mid rates capacity pushes the heavy
stage onto the big host, and at extreme rates the whole fabric saturates
(reported as infeasible), which is the capacity wall §IV-B's dynamic
reallocation argument starts from.
"""

from common import ResultTable, run_and_print, standard_scenario

from repro.core.synthesis.functional import PipelinePlacer, ServiceGraph, Stage
from repro.net.topology import build_topology


def _pipeline(source_node):
    return ServiceGraph.linear_pipeline(
        [
            Stage("capture", 1e6, output_bits_per_unit=64_000,
                  pinned_node=source_node),
            Stage("detect", 5e9, output_bits_per_unit=4_000),
            Stage("associate", 5e8, output_bits_per_unit=1_000),
            Stage("report", 1e5, output_bits_per_unit=512),
        ]
    )


def run_experiment(quick: bool = True) -> ResultTable:
    scenario = standard_scenario(95, n_blue=100, n_red=0, n_gray=0)
    hosts = [a for a in scenario.inventory.blue() if a.profile.compute_flops > 0]
    topology = build_topology(scenario.network)
    camera_hosts = [a for a in hosts if a.profile.device_class == "camera_pole"]
    source = (camera_hosts[0] if camera_hosts else hosts[0]).node_id
    service = _pipeline(source)
    table = ResultTable(
        "E18 — pipeline placement: greedy edge-aware vs cloud-only",
        ["data_rate_hz", "placement", "latency_s", "transfer_s", "compute_s",
         "hosts_used", "feasible"],
    )
    rates = (1.0, 100.0) if quick else (1.0, 10.0, 100.0, 500.0, 2000.0)
    for rate in rates:
        placer = PipelinePlacer(hosts, topology, data_rate_hz=rate)
        for label, placement in (
            ("greedy", placer.place(service)),
            ("cloud_only", placer.colocated_baseline(service)),
        ):
            table.add_row(
                data_rate_hz=rate,
                placement=label,
                latency_s=placement.end_to_end_latency_s,
                transfer_s=placement.transfer_latency_s,
                compute_s=placement.compute_latency_s,
                hosts_used=len(set(placement.assignment.values())),
                feasible=placement.feasible,
            )
    return table


def test_e18_placement(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    for rate in {r["data_rate_hz"] for r in rows}:
        greedy = next(
            r for r in rows
            if r["data_rate_hz"] == rate and r["placement"] == "greedy"
        )
        cloud = next(
            r for r in rows
            if r["data_rate_hz"] == rate and r["placement"] == "cloud_only"
        )
        # Greedy placement never loses to the cloud-only baseline.
        assert greedy["latency_s"] <= cloud["latency_s"] + 1e-9
    # Greedy stays feasible at the quick-mode rates (full mode sweeps past
    # the fabric's capacity wall on purpose).
    quick_rates = {1.0, 100.0}
    assert all(
        r["feasible"]
        for r in rows
        if r["placement"] == "greedy" and r["data_rate_hz"] in quick_rates
    )


if __name__ == "__main__":
    run_experiment(quick=False).print()
