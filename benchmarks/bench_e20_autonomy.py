"""E20 (extension; §VI): the autonomy / dependability balance.

§VI asks: "More autonomy implies less predictability of aggregate behavior
which may reduce what can be guaranteed ... Can systems therefore adapt the
balance depending on requirements, such as acceptable response time?"

The evacuation mission exposes the balance as a knob: ``caution_radius``
inflates the avoided region around each believed hazard.  Radius 0 is
maximal responsiveness (shortest safe-looking route, no buffer for belief
errors); larger radii buy dependability (fewer exposures) with longer
evacuation routes.  The sweep draws the frontier a commander's risk policy
would pick a point on — the quantitative form of §VI's open question.
"""

from common import ResultTable, run_and_print

from repro import ScenarioBuilder, Simulator
from repro.core.services.evacuation import EvacuationConfig, EvacuationMission


def _run(caution_radius: int, seed: int):
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=8, block_size_m=100.0, density=0.4)
        .population(n_blue=80, n_red=20, n_gray=30)
        .build()
    )
    # Hazards appear before most walking happens and scanning is fast, so
    # beliefs exist when routes are chosen — the regime where the caution
    # knob is live.  (Exposures from not-yet-detected hazards are a
    # detection-latency problem no routing margin can fix.)
    mission = EvacuationMission(
        scenario,
        EvacuationConfig(
            caution_radius=caution_radius,
            deadline_s=900.0,
            hazard_onset_s=(5.0, 30.0),
            step_period_s=16.0,
            scan_period_s=2.0,
        ),
    )
    return mission.run()


def run_experiment(quick: bool = True) -> ResultTable:
    seeds = (11, 12, 13) if quick else tuple(range(11, 19))
    radii = (0, 1, 2)
    table = ResultTable(
        "E20 — autonomy/dependability frontier (hazard caution radius)",
        ["caution_radius", "exposures", "mean_time_s", "evacuated_frac"],
    )
    for radius in radii:
        exposures = time_s = evacuated = 0.0
        for seed in seeds:
            result = _run(radius, seed)
            exposures += result.exposures
            time_s += result.mean_evacuation_time_s
            evacuated += result.evacuated_fraction
        n = len(seeds)
        table.add_row(
            caution_radius=radius,
            exposures=exposures / n,
            mean_time_s=time_s / n,
            evacuated_frac=evacuated / n,
        )
    return table


def test_e20_autonomy_dependability(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    # Caution buys safety: exposures non-increasing in the radius.
    exposures = [r["exposures"] for r in rows]
    assert exposures[-1] <= exposures[0]
    # And costs time: routes get no shorter as the radius grows.
    times = [r["mean_time_s"] for r in rows]
    assert times[-1] >= times[0]


if __name__ == "__main__":
    run_experiment(quick=False).print()
