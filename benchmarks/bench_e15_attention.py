"""E15 (§V-A): attention directed to true anomalies despite deception.

A stream of sensor reports: genuine anomalies are corroborated by several
trusted scouts; deceptive injections are loud (more extreme values!) but
come from fewer, low-trust sources.  Sweep the number of deceptive
situations and measure precision@k of the attention ranking, with and
without the trust/corroboration machinery.  Expected shape: naive
surprise-only ranking is hijacked by loud deceptions; trust-weighted,
corroboration-aware ranking keeps precision high.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning.anomaly import AttentionManager, Report
from repro.security.trust import TrustLedger

N_TRUE = 4


def _run(n_deceptions: int, use_trust: bool, seed: int = 6) -> float:
    rng = np.random.default_rng(seed)
    trust = TrustLedger()
    scouts = list(range(1, 7))
    liars = list(range(100, 100 + max(1, n_deceptions)))
    if use_trust:
        for _ in range(10):
            for s in scouts:
                trust.observe(s, True)
            for liar in liars:
                trust.observe(liar, False)
    manager = AttentionManager(trust=trust)
    manager.prime_baseline(
        "activity", list(10.0 + rng.normal(0, 1.0, 50))
    )
    # Genuine anomalies: 3 distinct scouts each, moderately extreme.
    for situation in range(1, N_TRUE + 1):
        for scout in rng.choice(scouts, size=3, replace=False):
            manager.ingest(
                Report("activity", 25.0 + float(rng.normal(0, 1)), int(scout),
                       situation),
                update_baseline=False,
            )
    # Deceptions: one low-trust source each, very extreme (louder!).
    for k in range(n_deceptions):
        manager.ingest(
            Report("activity", 90.0 + float(rng.normal(0, 1)),
                   liars[k % len(liars)], 1000 + k),
            update_baseline=False,
        )
    return manager.precision_at_k(N_TRUE, set(range(1, N_TRUE + 1)))


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E15 — attention precision@4 vs deceptive injections",
        ["n_deceptions", "naive_precision", "trust_aware_precision"],
    )
    counts = (0, 4, 12) if quick else (0, 2, 4, 8, 12, 20)
    seeds = (6, 7, 8)
    for n in counts:
        naive = float(np.mean([_run(n, False, s) for s in seeds]))
        aware = float(np.mean([_run(n, True, s) for s in seeds]))
        table.add_row(
            n_deceptions=n, naive_precision=naive, trust_aware_precision=aware
        )
    return table


def test_e15_attention(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    # With no deception both are perfect.
    assert rows[0]["trust_aware_precision"] == 1.0
    # Under heavy deception, trust-aware attention stays high while the
    # naive ranking is hijacked by the louder injections.
    worst = rows[-1]
    assert worst["trust_aware_precision"] >= 0.9
    assert worst["naive_precision"] < worst["trust_aware_precision"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
