"""E9 (Figure 4 + §V-A): truth discovery under adversarial sources.

Sweep the fraction of colluding (truth-inverting) sources and compare
majority vote, plain EM, and EM with two anchored (vetted) scouts.
Expected shape: majority vote collapses past 50% colluders; plain EM holds
to ~50% then flips into the mirrored story; anchored EM holds throughout —
a quantitative version of Figure 4's "reliable information" box.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning import TruthDiscovery, majority_vote
from repro.things.humans import HumanSource

N_SOURCES = 24
N_EVENTS = 60


def _accuracy_at(malicious_fraction: float, seed: int):
    rng = np.random.default_rng(seed)
    truths = {e: bool(rng.random() < 0.5) for e in range(1, N_EVENTS + 1)}
    n_malicious = int(round(malicious_fraction * N_SOURCES))
    sources = [
        HumanSource(
            i,
            reliability=0.85 if i > n_malicious else 0.9,
            report_rate=0.85,
            malicious=i <= n_malicious,
        )
        for i in range(1, N_SOURCES + 1)
    ]
    honest_ids = [s.source_id for s in sources if not s.malicious]
    claims = []
    for source in sources:
        claims.extend(source.report_all(truths, rng))

    mv = majority_vote(claims)
    mv_acc = sum(mv[e] == truths[e] for e in mv) / len(mv)
    plain_acc = TruthDiscovery().run(claims).accuracy(truths)
    anchors = {i: 0.85 for i in honest_ids[:2]} if len(honest_ids) >= 2 else {}
    anchored_acc = (
        TruthDiscovery(anchors=anchors).run(claims).accuracy(truths)
        if anchors
        else float("nan")
    )
    return mv_acc, plain_acc, anchored_acc


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E9 / Fig.4 — truth-discovery accuracy vs colluding-source fraction",
        ["malicious_fraction", "majority_vote", "em_plain", "em_anchored"],
    )
    fractions = (0.0, 0.3, 0.6) if quick else (0.0, 0.15, 0.3, 0.45, 0.6, 0.75)
    seeds = (3, 4) if quick else (3, 4, 5, 6, 7)
    for fraction in fractions:
        mv = plain = anchored = 0.0
        for seed in seeds:
            a, b, c = _accuracy_at(fraction, seed)
            mv += a
            plain += b
            anchored += c
        n = len(seeds)
        table.add_row(
            malicious_fraction=fraction,
            majority_vote=mv / n,
            em_plain=plain / n,
            em_anchored=anchored / n,
        )
    return table


def test_fig4_truth_discovery(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    # No adversaries: everyone near-perfect.
    assert rows[0]["em_plain"] > 0.95
    # Past majority collusion: anchored EM survives, majority vote dies.
    worst = rows[-1]
    assert worst["em_anchored"] > 0.9
    assert worst["majority_vote"] < 0.5
    assert worst["em_anchored"] > worst["majority_vote"] + 0.4


if __name__ == "__main__":
    run_experiment(quick=False).print()
