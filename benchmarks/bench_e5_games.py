"""E5 (§IV-A): game-theoretic intent decomposition.

Two sweeps of the task-assignment potential game: (a) best-response
convergence rounds vs agent count (scalability of the decomposition);
(b) welfare loss vs number of welfare-minimizing (malicious) agents.
Expected shape: honest dynamics always converge to a Nash equilibrium in a
handful of rounds even at hundreds of agents; welfare decays roughly
linearly in the number of malicious agents.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.adaptation.games import BestResponseDynamics, TaskAssignmentGame


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E5 — best-response convergence & malicious-agent welfare loss",
        ["n_agents", "n_malicious", "rounds", "converged", "welfare",
         "efficiency"],
    )
    agent_counts = (10, 50, 200) if quick else (10, 50, 200, 500, 1000)
    values = [float(v) for v in np.linspace(10, 2, 16)]
    for n_agents in agent_counts:
        game = TaskAssignmentGame(values, n_agents)
        result = BestResponseDynamics(
            game, rng=np.random.default_rng(n_agents)
        ).run()
        table.add_row(
            n_agents=n_agents,
            n_malicious=0,
            rounds=result.rounds,
            converged=result.converged,
            welfare=result.welfare,
            efficiency=result.efficiency,
        )
    # Malicious sweep at a fixed population (agents < tasks so stacking
    # strands task value).
    malicious_counts = (0, 2, 4) if quick else (0, 1, 2, 4, 6, 8)
    game = TaskAssignmentGame(values, 12)
    for k in malicious_counts:
        result = BestResponseDynamics(
            game, malicious=set(range(k)), rng=np.random.default_rng(77)
        ).run()
        table.add_row(
            n_agents=12,
            n_malicious=k,
            rounds=result.rounds,
            converged=result.converged,
            welfare=result.welfare,
            efficiency=result.efficiency,
        )
    return table


def test_e5_games(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    honest = [r for r in rows if r["n_malicious"] == 0]
    assert all(r["converged"] for r in honest)
    # Welfare decays as malicious agents are added.
    malicious_sweep = [r for r in rows if r["n_agents"] == 12]
    efficiencies = [r["efficiency"] for r in malicious_sweep]
    assert efficiencies[0] >= efficiencies[-1]


if __name__ == "__main__":
    run_experiment(quick=False).print()
