"""Causal-tracing perf baseline: on/off kernel overhead + per-router latency.

Two questions this benchmark pins down, and records in ``BENCH_pr4.json``
for future PRs to diff against:

1. **What does tracing cost?**  The same seeded AODV workload runs with
   :class:`~repro.obs.tracing.PacketTracer` off and on; the events/sec
   ratio is the tracing overhead.  The tracer emits trace records from
   callbacks the kernel was already visiting (no extra events, no RNG), so
   the disabled path must be within measurement noise and the enabled path
   costs only record construction.
2. **Where does delivery latency go per router?**  Delivery latency
   percentiles (p50/p90/p99) for each routing protocol on a shared random
   deployment, the numbers the phase-attribution reports decompose.

Determinism cross-check: the traced and untraced runs of one (router,
seed) cell must agree bit-for-bit on the non-``pkt.*`` trace fingerprint —
the tracer observes, it never perturbs.
"""

import numpy as np
from common import (
    ResultTable,
    campaign_runner,
    run_and_print,
    sim_rate,
    write_bench_pr4,
    write_bench_pr8,
)

from repro import Simulator
from repro.campaign import SweepSpec
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import (
    AodvRouter,
    FloodingRouter,
    GossipRouter,
    GreedyGeoRouter,
)
from repro.net.transport import MessageService
from repro.obs import wire_from_env
from repro.obs.tracing import TRACE_CATEGORIES
from repro.util.geometry import Point

N_NODES = 24
AREA_M = 320.0
HORIZON = 300.0
SEND_UNTIL = 240.0
MEAN_IAT_S = 2.0

ROUTERS = {
    "flooding": FloodingRouter,
    "gossip": GossipRouter,
    "aodv": AodvRouter,
    "geo": GreedyGeoRouter,
}


def tracing_task(params, seed):
    """One cell: random deployment, Poisson unicasts, one router,
    tracing on or off."""
    router_name = params["router"]
    traced = bool(params["traced"])

    sim = wire_from_env(Simulator(seed=seed))
    if traced:
        sim.enable_packet_tracing()
    net = Network(
        sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed)
    )
    topo_rng = sim.rng.get("topo")
    for i in range(1, N_NODES + 1):
        net.create_node(
            i,
            Point(
                float(topo_rng.uniform(0, AREA_M)),
                float(topo_rng.uniform(0, AREA_M)),
            ),
        )
    router = ROUTERS[router_name](net)
    router.attach_all(range(1, N_NODES + 1))
    service = MessageService(router)

    rng = sim.rng.get("workload")

    def tick():
        if sim.now > SEND_UNTIL:
            return
        a, b = rng.choice(range(1, N_NODES + 1), size=2, replace=False)
        service.send(int(a), int(b))
        sim.call_in(float(rng.exponential(MEAN_IAT_S)), tick)

    sim.call_in(0.5, tick)
    sim.run(until=HORIZON)
    sim.export_obs()

    latencies = np.array(
        [r.latency_s for r in service.receipts.values() if r.latency_s is not None]
    )
    behaviour_fp = sim.trace.fingerprint(
        categories=sorted(
            {r.category for r in sim.trace.records} - set(TRACE_CATEGORIES)
        )
    )
    def pct(q):
        # NaN (not None) when nothing delivered: stays a float for the
        # aggregator; json_safe nulls it at export time.
        return float(np.percentile(latencies, q)) if latencies.size else float("nan")

    return {
        "delivery_ratio": service.delivery_ratio(),
        "latency_p50_s": pct(50),
        "latency_p90_s": pct(90),
        "latency_p99_s": pct(99),
        "pkt_records": float(
            sum(1 for r in sim.trace.records if r.category in TRACE_CATEGORIES)
        ),
        # Radio-level behaviour signature: if tracing perturbed a single
        # transmission or RNG draw, this count would shift.
        "tx_attempts": float(sim.metrics.counter("net.tx_attempts")),
        "behaviour_fingerprint": behaviour_fp,
        **sim_rate(sim),
    }


def run_experiment(quick: bool = True) -> ResultTable:
    spec = SweepSpec(
        name="tracing-overhead",
        grid={"router": tuple(ROUTERS), "traced": (False, True)},
        seeds=(11,) if quick else (11, 23, 47),
        # Pair traced/untraced on identical worlds per router/seed.
        seed_params=("router",),
    )
    result = campaign_runner(tracing_task).run(spec)
    table = result.table(
        "Tracing — on/off overhead and per-router delivery latency",
        param_cols=["router", "traced"],
        metrics=[
            "delivery_ratio",
            "latency_p50_s",
            "latency_p90_s",
            "latency_p99_s",
            "pkt_records",
            "tx_attempts",
            "events_per_sec",
            # Constant within each (router, traced) group in quick mode;
            # the overhead test compares it across the traced arms.
            "behaviour_fingerprint",
        ],
    )

    rows = {(r["router"], bool(r["traced"])): r for r in table.to_dicts()}
    off = [rows[(name, False)]["events_per_sec"] for name in ROUTERS]
    on = [rows[(name, True)]["events_per_sec"] for name in ROUTERS]
    eps_off = float(np.mean(off))
    eps_on = float(np.mean(on))
    write_bench_pr4(
        events_per_sec={
            "tracing_off": eps_off,
            "tracing_on": eps_on,
            "overhead_frac": (eps_off - eps_on) / eps_off if eps_off > 0 else None,
        },
        routers={
            name: {
                "delivery_ratio": rows[(name, True)]["delivery_ratio"],
                "latency_s": {
                    "p50": rows[(name, True)]["latency_p50_s"],
                    "p90": rows[(name, True)]["latency_p90_s"],
                    "p99": rows[(name, True)]["latency_p99_s"],
                },
            }
            for name in ROUTERS
        },
    )
    return table


def run_pr8(rounds: int = 6, seed: int = 11) -> dict:
    """Overhead pin for the binary telemetry plane (``BENCH_pr8.json``).

    The PR4 sweep above answers "does tracing perturb behaviour"; this
    mode answers "what does tracing *cost now*" precisely enough to gate
    on.  Single-shot events/sec on a shared 1-vCPU box is ±10% noise —
    the same order as the budget being enforced — so each round runs a
    router's off and on arms back-to-back (adjacent runs share the same
    host-contention window) with a full collection before every run (one
    arm never pays another's garbage).  The overhead is the *median
    paired* on/off ratio across rounds: independent per-arm maxima catch
    quiet windows at different times and so fabricate overhead out of
    host noise, a max-paired ratio cherry-picks the round where noise
    favoured the on arm, while the median of paired ratios cancels the
    common-mode slowdown and is robust to outliers in both directions.
    The reported off rate is the best-of (the least-interfered sample)
    and the on rate is that off rate scaled by the median paired ratio,
    so the three published numbers stay mutually consistent.

    Returns the payload written to ``BENCH_pr8.json``; the behaviour
    fingerprint is asserted stable across every run of a router on the
    way (tracing on or off, round to round — the tracer only observes).
    """
    import gc
    import json
    import os

    samples = {name: {"off": [], "on": []} for name in ROUTERS}
    fingerprints = {}
    for _ in range(rounds):
        for name in ROUTERS:
            for traced in (False, True):
                gc.collect()
                res = tracing_task({"router": name, "traced": traced}, seed)
                samples[name]["on" if traced else "off"].append(
                    res["events_per_sec"]
                )
                fp = fingerprints.setdefault(name, res["behaviour_fingerprint"])
                if res["behaviour_fingerprint"] != fp:
                    raise AssertionError(
                        f"router {name}: behaviour fingerprint changed across "
                        "runs — tracing perturbed the simulation"
                    )

    routers = {}
    for name, arms in samples.items():
        ratio = float(
            np.median([on / off for off, on in zip(arms["off"], arms["on"])])
        )
        off_best = max(arms["off"])
        routers[name] = {
            "tracing_off": off_best,
            "tracing_on": off_best * ratio,
            "overhead_frac": 1.0 - ratio,
        }
    eps_off = float(np.mean([r["tracing_off"] for r in routers.values()]))
    eps_on = float(np.mean([r["tracing_on"] for r in routers.values()]))
    overhead = (eps_off - eps_on) / eps_off

    baseline = {"source": "BENCH_pr4.json"}
    pr4_path = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_pr4.json")
    try:
        with open(pr4_path, encoding="utf-8") as fh:
            pr4 = json.load(fh)["events_per_sec"]
        baseline["tracing_off"] = pr4["tracing_off"]
        baseline["overhead_frac"] = pr4["overhead_frac"]
        baseline["tracing_off_ratio"] = (
            eps_off / pr4["tracing_off"] if pr4["tracing_off"] else None
        )
    except (OSError, KeyError, ValueError):
        baseline["tracing_off"] = None

    path = write_bench_pr8(
        events_per_sec={
            "tracing_off": eps_off,
            "tracing_on": eps_on,
            "overhead_frac": overhead,
        },
        routers=routers,
        baseline=baseline,
        methodology={
            "workload": "PR4 tracing sweep (24 nodes, 300 s, 4 routers)",
            "seed": seed,
            "rounds": rounds,
            "protocol": (
                "interleaved arms, gc.collect() per run; overhead from the "
                "median paired on/off ratio per router (common-mode host "
                "noise cancels); off rate is best-of-N"
            ),
        },
    )
    print(f"wrote {path}")
    for name, r in routers.items():
        print(
            f"  {name}: off={r['tracing_off']:.0f} on={r['tracing_on']:.0f} "
            f"events/s  overhead={r['overhead_frac']:.2%}"
        )
    print(
        f"  mean: off={eps_off:.0f} on={eps_on:.0f} events/s  "
        f"overhead={overhead:.2%}"
        + (
            f"  (off vs PR4 baseline: {baseline['tracing_off_ratio']:.2f}x)"
            if baseline.get("tracing_off_ratio")
            else ""
        )
    )
    return {
        "events_per_sec": {
            "tracing_off": eps_off,
            "tracing_on": eps_on,
            "overhead_frac": overhead,
        },
        "routers": routers,
        "baseline": baseline,
    }


def test_tracing_overhead(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {(r["router"], bool(r["traced"])): r for r in table.to_dicts()}
    for name in ROUTERS:
        untraced, traced = rows[(name, False)], rows[(name, True)]
        # The tracer must not perturb behaviour: identical delivery and
        # identical non-pkt trace fingerprints, and pkt.* records only
        # ever appear in the traced run.
        assert traced["delivery_ratio"] == untraced["delivery_ratio"]
        assert traced["tx_attempts"] == untraced["tx_attempts"]
        assert (
            traced["behaviour_fingerprint"] == untraced["behaviour_fingerprint"]
        )
        assert untraced["pkt_records"] == 0.0
        assert traced["pkt_records"] > 0.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pr8",
        action="store_true",
        help="noise-controlled overhead pin: write BENCH_pr8.json",
    )
    parser.add_argument(
        "--rounds", type=int, default=6, help="best-of rounds for --pr8"
    )
    args = parser.parse_args()
    if args.pr8:
        run_pr8(rounds=args.rounds)
    else:
        run_experiment(quick=False).print()
