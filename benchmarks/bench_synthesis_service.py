"""Synthesis-service throughput and tail latency, with and without chaos.

The service's contract (DESIGN.md §3.6) is *bounded answers under fire*:
thousands of concurrent "recruit me a composite" queries per second, every
one terminal, even while the backend is sick and the inventory churns.
This benchmark measures that contract at 1k- and 10k-asset inventories:

* **chaos off** — steady state: each distinct goal is answered live once,
  then served from the per-epoch fresh cache.  Headline: queries/sec on
  the 1k inventory (the ISSUE floor is >= 1000 qps).
* **chaos on** — the backend raises on every call and node churn advances
  the inventory epoch between timed batches, so fresh-cache entries are
  invalidated; the breaker opens and the service answers from its stale
  store, flagged degraded.  Headline: chaos p99 within ``P99_FACTOR`` x
  the chaos-off p99 — resilience must not cost the tail.

Epoch publishes (a full topology rebuild: ~0.4 s at 1k assets, ~8 s at
10k) happen *between* timed batches, exactly as a production hub would
rebuild off the serving path; query latencies measure serving, not world
rebuilding.

Writes ``BENCH_pr6.json`` (schema ``bench-pr6/1``).  Run directly::

    PYTHONPATH=src:benchmarks python benchmarks/bench_synthesis_service.py
"""

import asyncio
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from common import json_safe, standard_scenario

from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis.composer import GreedyComposer
from repro.service import SnapshotHub, SynthesisQuery, SynthesisService
from repro.service.chaos import ChaosBackend, ChaosConfig
from repro.things.capabilities import SensingModality
from repro.util.backoff import BackoffPolicy
from repro.util.geometry import Region

BENCH_PR6_SCHEMA = "bench-pr6/1"
QPS_FLOOR = 1000.0   # chaos-off queries/sec on the 1k inventory
P99_FACTOR = 5.0     # chaos p99 <= factor * chaos-off p99 (1k inventory)

SIZES = (1000, 10_000)
N_GOALS = 8
N_BATCHES = 4


def build_hub(n_assets: int, seed: int = 3) -> Tuple[SnapshotHub, object]:
    blocks = max(4, int(np.sqrt(n_assets / 2.0)))
    scenario = standard_scenario(
        seed, blocks=blocks, n_blue=n_assets, n_red=0, n_gray=0
    )
    hub = SnapshotHub(scenario.inventory, min_refresh_s=3600.0)
    return hub, scenario


def goals(region: Region, n: int) -> List[MissionGoal]:
    """n overlapping surveillance goals over the scenario district."""
    span_x = (region.x_max - region.x_min) * 0.5
    span_y = (region.y_max - region.y_min) * 0.5
    out = []
    for i in range(n):
        dx = (region.x_max - region.x_min - span_x) * (i / max(1, n - 1))
        out.append(
            MissionGoal(
                MissionType.SURVEIL,
                Region(
                    region.x_min + dx,
                    region.y_min,
                    region.x_min + dx + span_x,
                    region.y_min + span_y,
                ),
                min_coverage=0.3,
                modalities=frozenset(
                    {SensingModality.SEISMIC, SensingModality.ACOUSTIC}
                ),
            )
        )
    return out


def make_service(hub: SnapshotHub, **kwargs) -> SynthesisService:
    kwargs.setdefault("backoff", BackoffPolicy(base_s=0.005, max_s=0.05))
    kwargs.setdefault("max_retries", 0)
    kwargs.setdefault("breaker_min_calls", 4)
    kwargs.setdefault("breaker_window", 8)
    kwargs.setdefault("breaker_open_s", 0.2)
    kwargs.setdefault("max_concurrent", 4)
    return SynthesisService(hub, **kwargs)


async def timed_batches(
    service: SynthesisService,
    mission_goals: List[MissionGoal],
    *,
    n_queries: int,
    concurrency: int = 64,
    deadline_s: float = 0.5,
    between_batches=None,
) -> Tuple[List[float], Dict[str, int], float]:
    """Drive ``n_queries`` in N_BATCHES timed batches.

    Returns (per-query latencies, outcome counts, total timed seconds).
    ``between_batches`` (e.g. a churn step) runs off the clock, like a
    hub rebuilding topology outside the serving path.
    """
    latencies: List[float] = []
    counts: Dict[str, int] = {}
    timed = 0.0
    sem = asyncio.Semaphore(concurrency)
    per_batch = n_queries // N_BATCHES

    async def one(i: int):
        async with sem:
            q = SynthesisQuery(
                goal=mission_goals[i % len(mission_goals)],
                deadline_s=deadline_s,
                # Priming a 10k inventory takes minutes of compose time, so
                # the staleness budget must cover the full priming pass.
                max_stale_s=600.0,
            )
            t0 = time.perf_counter()
            outcome = await service.submit(q)
            latencies.append(time.perf_counter() - t0)
            counts[outcome.status.value] = counts.get(outcome.status.value, 0) + 1

    for batch in range(N_BATCHES):
        t0 = time.perf_counter()
        await asyncio.gather(*(one(batch * per_batch + i) for i in range(per_batch)))
        timed += time.perf_counter() - t0
        if between_batches is not None and batch < N_BATCHES - 1:
            between_batches()
    return latencies, counts, timed


def percentile_ms(latencies: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1000.0)


def run_mode(
    hub: SnapshotHub,
    scenario,
    *,
    chaos: bool,
    n_queries: int,
    seed: int = 3,
) -> Dict[str, object]:
    mission_goals = goals(scenario.region, N_GOALS)
    service = make_service(hub, backends={"greedy": GreedyComposer()})

    churn_rng = np.random.default_rng(seed)
    network = hub.network

    def churn_step():
        """Off-the-clock world churn: kill a few nodes, publish an epoch."""
        up = [n.id for n in network.up_nodes()]
        for node_id in churn_rng.choice(up, size=max(1, len(up) // 50), replace=False):
            network.fail_node(int(node_id))
        hub.publish()

    async def scenario_run():
        async with service:
            # Prime with the healthy composer: answer each distinct goal
            # live once (the steady-state answer population a long-running
            # service would have accumulated).
            for g in mission_goals:
                outcome = await service.submit(
                    SynthesisQuery(goal=g, deadline_s=60.0)
                )
                assert outcome.status.value == "ok", outcome.reason
            if chaos:
                # The backend falls over and the world churns: every call
                # now raises, and a fresh epoch invalidates the fresh cache.
                service.backends["greedy"] = ChaosBackend(
                    GreedyComposer(),
                    ChaosConfig(error_prob=1.0, seed=seed),
                    name="bench",
                )
                churn_step()
            return await timed_batches(
                service,
                mission_goals,
                n_queries=n_queries,
                between_batches=churn_step if chaos else None,
            )

    latencies, counts, timed = asyncio.run(scenario_run())

    terminal = sum(counts.values())
    return {
        "queries": terminal,
        "timed_s": timed,
        "qps": terminal / timed if timed > 0 else 0.0,
        "p50_ms": percentile_ms(latencies, 50),
        "p99_ms": percentile_ms(latencies, 99),
        "outcomes": counts,
        "all_terminal": terminal == n_queries,
        "epoch": hub.epoch,
    }


def bench(sizes=SIZES, n_queries: int = 4000) -> Dict[str, object]:
    inventories: Dict[str, object] = {}
    for n_assets in sizes:
        # 10k-asset epochs cost ~8 s of topology each; keep that size light.
        n_q = n_queries if n_assets <= 1000 else max(N_BATCHES, n_queries // 4)
        hub, scenario = build_hub(n_assets)
        off = run_mode(hub, scenario, chaos=False, n_queries=n_q)
        hub, scenario = build_hub(n_assets)  # fresh world for the chaos run
        on = run_mode(hub, scenario, chaos=True, n_queries=n_q)
        inventories[str(n_assets)] = {"chaos_off": off, "chaos_on": on}
        print(
            f"{n_assets:>6} assets: off {off['qps']:,.0f} qps "
            f"p99={off['p99_ms']:.2f}ms | chaos {on['qps']:,.0f} qps "
            f"p99={on['p99_ms']:.2f}ms "
            f"degraded={on['outcomes'].get('degraded', 0)}/{on['queries']}"
        )

    anchor = inventories["1000"]
    slos = {
        "qps_floor": QPS_FLOOR,
        "p99_factor": P99_FACTOR,
        "qps_1k_chaos_off": anchor["chaos_off"]["qps"],
        "qps_1k_ok": anchor["chaos_off"]["qps"] >= QPS_FLOOR,
        "chaos_p99_ratio": (
            anchor["chaos_on"]["p99_ms"] / anchor["chaos_off"]["p99_ms"]
            if anchor["chaos_off"]["p99_ms"] > 0
            else float("inf")
        ),
        "chaos_p99_ok": (
            anchor["chaos_on"]["p99_ms"]
            <= P99_FACTOR * anchor["chaos_off"]["p99_ms"]
        ),
        "all_terminal": all(
            mode["all_terminal"]
            for entry in inventories.values()
            for mode in entry.values()
        ),
    }
    return {
        "schema": BENCH_PR6_SCHEMA,
        "slos": slos,
        "inventories": inventories,
    }


def write_bench_pr6(payload: Dict[str, object], path: Optional[str] = None) -> str:
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr6.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def main() -> int:
    payload = bench()
    path = write_bench_pr6(payload)
    print(f"wrote {path}")
    slos = payload["slos"]
    print(
        f"SLOs: qps_1k={slos['qps_1k_chaos_off']:,.0f} "
        f"(floor {slos['qps_floor']:,.0f}) -> "
        f"{'OK' if slos['qps_1k_ok'] else 'FAIL'}; "
        f"chaos p99 ratio={slos['chaos_p99_ratio']:.2f} "
        f"(cap {slos['p99_factor']}) -> "
        f"{'OK' if slos['chaos_p99_ok'] else 'FAIL'}; "
        f"all_terminal={'OK' if slos['all_terminal'] else 'FAIL'}"
    )
    ok = slos["qps_1k_ok"] and slos["chaos_p99_ok"] and slos["all_terminal"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
