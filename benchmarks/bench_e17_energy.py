"""E17 (extension; §II "limitations on energy"): energy-aware composition.

Half the inventory's batteries are nearly drained.  Compose a surveillance
composite energy-blind vs energy-aware and run the sensing/reporting
workload until coverage collapses.  Expected shape: the energy-aware
composite starts with (at worst slightly) lower coverage but holds it far
longer — mission lifetime is the metric that matters for forward-deployed
assets.
"""

from common import ResultTable, run_and_print, standard_scenario

from repro.core.mission import MissionGoal, MissionType
from repro.core.services.surveillance import SurveillanceService
from repro.core.synthesis import GreedyComposer, compile_goal
from repro.net.topology import build_topology
from repro.things.capabilities import SensingModality

MODALITIES = frozenset({SensingModality.SEISMIC, SensingModality.ACOUSTIC})
SENSE_PERIOD_S = 2.0
HORIZON_S = 3000.0


def _run(energy_aware: bool, seed: int = 91):
    scenario = standard_scenario(seed, n_blue=120, n_red=0, n_gray=0)
    rng = scenario.sim.rng.get("drain")
    # Half the force is running on fumes: ~30 J left, a few minutes of
    # sensing + reporting at this workload.
    for asset in scenario.inventory.blue():
        if asset.battery is not None and rng.random() < 0.5:
            asset.battery.remaining_j = min(30.0, 0.02 * asset.battery.capacity_j)
    goal = MissionGoal(
        MissionType.SURVEIL, scenario.region, min_coverage=0.6,
        modalities=MODALITIES,
    )
    requirements = compile_goal(goal)
    pool = [a for a in scenario.inventory.blue() if a.alive and a.sensors]
    topology = build_topology(scenario.network)
    composer = GreedyComposer(energy_aware=energy_aware)
    composite = composer.compose(requirements, pool, topology)
    sensors = [scenario.inventory.get(a) for a in composite.sensors]
    service = SurveillanceService(scenario, sensors, sample_period_s=10.0)
    service.start()

    def sense_round():
        for asset in sensors:
            if asset.alive and asset.battery is not None:
                # Sensing + reporting drain per round (high-rate imagery).
                asset.battery.drain_sense(50)
                asset.battery.drain_radio(bits_tx=1_000_000, bits_rx=0)

    scenario.sim.every(SENSE_PERIOD_S, sense_round)
    baseline = service.coverage()
    scenario.sim.run(until=HORIZON_S)
    series = scenario.sim.metrics.series("surveillance.coverage")
    # Lifetime: time until coverage first fell below 60% of the baseline
    # (the point where the composite no longer meets its coverage margin).
    lifetime = HORIZON_S
    for t, v in zip(series.times, series.values):
        if v < 0.6 * baseline:
            lifetime = t
            break
    return {
        "initial_coverage": baseline,
        "final_coverage": series.values[-1] if series.values else float("nan"),
        "lifetime_s": lifetime,
        "mean_coverage": series.time_average(horizon=HORIZON_S),
    }


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E17 — composition policy vs mission lifetime (half-drained force)",
        ["policy", "initial_coverage", "final_coverage", "lifetime_s",
         "mean_coverage"],
    )
    for energy_aware in (False, True):
        out = _run(energy_aware)
        table.add_row(
            policy="energy_aware" if energy_aware else "energy_blind",
            **out,
        )
    return table


def test_e17_energy_aware_composition(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["policy"]: r for r in table.to_dicts()}
    assert rows["energy_aware"]["lifetime_s"] >= rows["energy_blind"]["lifetime_s"]
    assert (
        rows["energy_aware"]["mean_coverage"]
        >= rows["energy_blind"]["mean_coverage"] - 0.05
    )


if __name__ == "__main__":
    run_experiment(quick=False).print()
