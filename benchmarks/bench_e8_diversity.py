"""E8 (§IV-B, citations [15-18]): diverse teams outperform homogeneous ones.

Controller teams track a signal whose regime changes mid-run (slow drift ->
fast switching).  Homogeneous teams are tuned for one regime; diverse teams
span the parameter spectrum and imitate their best member.  Expected shape:
across regime changes, every diverse team beats the homogeneous team of the
same size; the gap widens when imitation (social adaptation) is enabled.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.adaptation.controllers import (
    make_diverse_team,
    make_homogeneous_team,
)


def _signal(t: int) -> float:
    if t < 500:
        return float(np.sin(t * 0.01) * 10.0)          # slow drift
    return float(np.sign(np.sin(t * 0.5)) * 10.0)      # fast switching


def _drive(team, seed: int, steps: int = 1000) -> float:
    rng = np.random.default_rng(seed)
    for t in range(steps):
        truth = _signal(t)
        team.step(truth + float(rng.normal(0, 1.0)), truth)
    return team.team_rmse


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E8 — diverse vs homogeneous controller teams across regime change",
        ["team_size", "team", "imitation", "rmse"],
    )
    sizes = (5, 9) if quick else (3, 5, 9, 15)
    seeds = (1, 2, 3) if quick else tuple(range(1, 9))
    for size in sizes:
        for label, factory, imitate in (
            ("homogeneous", lambda n, im: make_homogeneous_team(n, 0.2, imitate=im), False),
            ("homogeneous", lambda n, im: make_homogeneous_team(n, 0.2, imitate=im), True),
            ("diverse", lambda n, im: make_diverse_team(n, imitate=im), False),
            ("diverse", lambda n, im: make_diverse_team(n, imitate=im), True),
        ):
            rmse = float(
                np.mean([_drive(factory(size, imitate), s) for s in seeds])
            )
            table.add_row(
                team_size=size, team=label, imitation=imitate, rmse=rmse
            )
    return table


def test_e8_diversity(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    for size in {r["team_size"] for r in rows}:
        diverse = min(
            r["rmse"] for r in rows
            if r["team_size"] == size and r["team"] == "diverse"
        )
        homogeneous = min(
            r["rmse"] for r in rows
            if r["team_size"] == size and r["team"] == "homogeneous"
        )
        assert diverse < homogeneous


if __name__ == "__main__":
    run_experiment(quick=False).print()
