"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §2 (E1..E15) and
prints its series as a :class:`~repro.util.tables.ResultTable`.  Benchmarks
run in two modes:

* ``pytest benchmarks/ --benchmark-only`` — *quick* mode: reduced sweeps so
  the whole harness completes in minutes; timing captured by
  pytest-benchmark.
* ``python benchmarks/bench_*.py`` — *full* mode: the complete sweep for
  the experiment writeup (EXPERIMENTS.md numbers come from these).
"""

from __future__ import annotations

from typing import Callable

from repro import ScenarioBuilder, Simulator
from repro.util.tables import ResultTable

__all__ = ["ResultTable", "standard_scenario", "run_and_print"]


def standard_scenario(
    seed: int,
    *,
    blocks: int = 8,
    n_blue: int = 80,
    n_red: int = 10,
    n_gray: int = 30,
    density: float = 0.4,
    targets: int = 0,
    jammers: int = 0,
    events: int = 0,
):
    """The default urban world used across experiments."""
    sim = Simulator(seed=seed)
    builder = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=blocks, block_size_m=100.0, density=density)
        .population(n_blue=n_blue, n_red=n_red, n_gray=n_gray)
    )
    if targets:
        builder = builder.targets(targets)
    if jammers:
        builder = builder.jammers(jammers)
    if events:
        builder = builder.events(events)
    return builder.build()


def run_and_print(benchmark, fn: Callable[[], ResultTable]) -> ResultTable:
    """Benchmark ``fn`` once (pedantic single round) and print its table."""
    table = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    table.print()
    return table
