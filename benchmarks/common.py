"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §2 (E1..E20) and
prints its series as a :class:`~repro.util.tables.ResultTable`.  Benchmarks
run in two modes:

* ``pytest benchmarks/ --benchmark-only`` — *quick* mode: reduced sweeps so
  the whole harness completes in minutes; timing captured by
  pytest-benchmark.
* ``python benchmarks/bench_*.py`` — *full* mode: the complete sweep for
  the experiment writeup (EXPERIMENTS.md numbers come from these).

Sweep-shaped benchmarks run through :mod:`repro.campaign`;
:func:`campaign_runner` wires a runner to the benchmark environment:

* ``REPRO_BENCH_WORKERS`` — process-pool width (default 1, i.e. serial;
  parallel and serial runs aggregate to identical tables by construction);
* ``REPRO_CAMPAIGN_CACHE`` — result-cache directory (default: no cache).
  With a cache, an interrupted sweep resumes where it stopped and a warm
  rerun executes nothing.
"""

from __future__ import annotations

import os
import re
import time
from typing import Any, Callable, Dict, Optional

from repro import ScenarioBuilder, Simulator
from repro.campaign import CampaignRunner, ResultCache
from repro.obs import wire_from_env
from repro.util.tables import ResultTable, json_safe

__all__ = [
    "ResultTable",
    "standard_scenario",
    "run_and_print",
    "json_safe",
    "table_slug",
    "write_table_json",
    "campaign_runner",
    "sim_rate",
    "write_bench_pr4",
    "write_bench_pr8",
    "manifest_paths",
    "BENCH_PR4_SCHEMA",
    "BENCH_PR8_SCHEMA",
]


def manifest_paths() -> list:
    """RunManifests stamped by this process's env-wired exports, sorted.

    Scans the ``REPRO_OBS_*`` export locations for ``*.manifest.json``
    files (see :mod:`repro.obs.forensics`): every ``BENCH_*.json`` records
    them so a benchmark number can always be traced back to the exact
    seeds, RNG draw counts, and spec hashes that produced it.
    """
    import glob

    candidates = []
    for var in ("REPRO_OBS_RING_DIR", "REPRO_OBS_NDJSON_DIR"):
        directory = os.environ.get(var)
        if directory and os.path.isdir(directory):
            candidates.extend(
                glob.glob(os.path.join(directory, "*.manifest.json"))
            )
    single = os.environ.get("REPRO_OBS_NDJSON")
    if single and os.path.exists(single + ".manifest.json"):
        candidates.append(single + ".manifest.json")
    return sorted(set(candidates))


def standard_scenario(
    seed: int,
    *,
    blocks: int = 8,
    n_blue: int = 80,
    n_red: int = 10,
    n_gray: int = 30,
    density: float = 0.4,
    targets: int = 0,
    jammers: int = 0,
    events: int = 0,
):
    """The default urban world used across experiments.

    Honors the ``REPRO_OBS_*`` environment (``REPRO_OBS_NDJSON`` streams
    the trace to an NDJSON export, ``REPRO_OBS_PROFILE`` turns on the
    kernel profiler), so any benchmark can run fully instrumented with no
    code change; both default off and cost nothing when unset.
    """
    sim = wire_from_env(Simulator(seed=seed))
    builder = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=blocks, block_size_m=100.0, density=density)
        .population(n_blue=n_blue, n_red=n_red, n_gray=n_gray)
    )
    if targets:
        builder = builder.targets(targets)
    if jammers:
        builder = builder.jammers(jammers)
    if events:
        builder = builder.events(events)
    return builder.build()


def campaign_runner(
    fn: Callable[[Dict[str, Any], int], Dict[str, Any]],
    *,
    workers: Optional[int] = None,
    **overrides: Any,
) -> CampaignRunner:
    """A :class:`CampaignRunner` wired to the benchmark environment.

    ``fn`` must be a module-level ``(params, seed) -> dict`` function (the
    picklability contract for pool workers).
    """
    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    cache_dir = os.environ.get("REPRO_CAMPAIGN_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return CampaignRunner(fn, workers=workers, cache=cache, **overrides)


def sim_rate(sim: Simulator) -> Dict[str, float]:
    """Kernel throughput counters for a task's result dict.

    ``Simulator.run`` accumulates events fired and wall seconds spent, so
    every benchmark can report events/sec for free by merging this into
    its metrics (``result.update(sim_rate(sim))``).
    """
    return {
        "events_processed": float(sim.events_processed),
        "sim_wall_s": sim.wall_elapsed,
        "events_per_sec": sim.events_per_sec,
    }


def write_table_json(table: ResultTable, path: str) -> None:
    """Write a table as a JSON document with non-finite values nulled."""
    table.to_json(path)


#: Schema tag for the PR4 perf baseline file; bump only with a migration
#: note so future PRs can diff against older baselines.
BENCH_PR4_SCHEMA = "bench-pr4/1"


def write_bench_pr4(
    *,
    events_per_sec: Dict[str, float],
    routers: Dict[str, Dict[str, Any]],
    path: Optional[str] = None,
) -> str:
    """Write the PR4 perf baseline (``BENCH_pr4.json``) in a stable schema.

    ``events_per_sec`` carries ``{"tracing_off", "tracing_on",
    "overhead_frac"}`` kernel-throughput numbers; ``routers`` maps router
    name -> ``{"delivery_ratio": float, "latency_s": {"p50","p90","p99"}}``.
    Default location is the repository root (next to ROADMAP.md), so
    successive PRs diff one well-known file; ``REPRO_BENCH_JSON_DIR``
    redirects it alongside the other benchmark JSON artifacts.
    """
    import json

    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr4.json")
    payload = {
        "schema": BENCH_PR4_SCHEMA,
        "events_per_sec": events_per_sec,
        "routers": routers,
        "run_manifests": manifest_paths(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


#: Schema tag for the PR8 telemetry-plane overhead pin (``BENCH_pr8.json``).
BENCH_PR8_SCHEMA = "bench-pr8/1"


def write_bench_pr8(
    *,
    events_per_sec: Dict[str, float],
    routers: Dict[str, Dict[str, Any]],
    baseline: Dict[str, Any],
    methodology: Dict[str, Any],
    path: Optional[str] = None,
) -> str:
    """Write the PR8 tracing-overhead pin (``BENCH_pr8.json``).

    ``events_per_sec`` carries the cross-router ``{"tracing_off",
    "tracing_on", "overhead_frac"}`` summary measured on the PR4 workload
    with the binary staging path; ``routers`` maps router name ->
    per-arm best-of rates and overhead; ``baseline`` records the
    BENCH_pr4 numbers this run is compared against (so the artifact is
    self-contained); ``methodology`` pins how the numbers were taken
    (rounds, interleaving, GC control) — a future reader must be able to
    reproduce the measurement, not just the value.
    """
    import json

    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr8.json")
    payload = {
        "schema": BENCH_PR8_SCHEMA,
        "events_per_sec": events_per_sec,
        "routers": routers,
        "baseline": baseline,
        "methodology": methodology,
        "run_manifests": manifest_paths(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def table_slug(title: str) -> str:
    """Filename slug for a table title: lowercase, dash-separated, bounded.

    Consecutive non-alphanumeric runs collapse to a single dash (so
    "E2 / Fig.2 — x" and "E2   Fig 2 - x" cannot silently collide on a
    dash-count difference), and an empty slug is an error rather than a
    file named ``.json``.
    """
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    slug = slug[:60].rstrip("-")
    if not slug:
        raise ValueError(f"table title {title!r} produces an empty JSON slug")
    return slug


#: Slugs written by this process, mapping slug -> title that claimed it.
_WRITTEN_SLUGS: Dict[str, str] = {}


def run_and_print(benchmark, fn: Callable[[], ResultTable]) -> ResultTable:
    """Benchmark ``fn`` once (pedantic single round) and print its table.

    When ``REPRO_BENCH_JSON_DIR`` is set, the table is also written there
    as ``<title-slug>.json`` (non-finite values nulled via json_safe).
    Two distinct titles mapping to one slug raise instead of silently
    overwriting each other's JSON output.
    """
    t0 = time.perf_counter()
    table = benchmark.pedantic(fn, rounds=1, iterations=1)
    harness_wall_s = time.perf_counter() - t0
    print()
    table.print()
    print(f"[obs] harness wall={harness_wall_s:.2f}s")
    telemetry = table.meta.get("telemetry") if isinstance(table.meta, dict) else None
    if telemetry:
        print(
            "[obs] campaign tasks={n_tasks} cached={n_cached} "
            "executed={n_executed} retried={n_retried} wall={wall_s:.2f}s".format(
                **{
                    k: telemetry.get(k, 0)
                    for k in (
                        "n_tasks", "n_cached", "n_executed", "n_retried", "wall_s"
                    )
                }
            )
        )
    out_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        slug = table_slug(table.title)
        claimed_by = _WRITTEN_SLUGS.setdefault(slug, table.title)
        if claimed_by != table.title:
            raise RuntimeError(
                f"JSON slug collision: {table.title!r} and {claimed_by!r} "
                f"both map to {slug!r}"
            )
        write_table_json(table, os.path.join(out_dir, f"{slug}.json"))
    return table
