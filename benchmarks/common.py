"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md §2 (E1..E15) and
prints its series as a :class:`~repro.util.tables.ResultTable`.  Benchmarks
run in two modes:

* ``pytest benchmarks/ --benchmark-only`` — *quick* mode: reduced sweeps so
  the whole harness completes in minutes; timing captured by
  pytest-benchmark.
* ``python benchmarks/bench_*.py`` — *full* mode: the complete sweep for
  the experiment writeup (EXPERIMENTS.md numbers come from these).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Callable

from repro import ScenarioBuilder, Simulator
from repro.util.tables import ResultTable

__all__ = [
    "ResultTable",
    "standard_scenario",
    "run_and_print",
    "json_safe",
    "write_table_json",
]


def standard_scenario(
    seed: int,
    *,
    blocks: int = 8,
    n_blue: int = 80,
    n_red: int = 10,
    n_gray: int = 30,
    density: float = 0.4,
    targets: int = 0,
    jammers: int = 0,
    events: int = 0,
):
    """The default urban world used across experiments."""
    sim = Simulator(seed=seed)
    builder = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=blocks, block_size_m=100.0, density=density)
        .population(n_blue=n_blue, n_red=n_red, n_gray=n_gray)
    )
    if targets:
        builder = builder.targets(targets)
    if jammers:
        builder = builder.jammers(jammers)
    if events:
        builder = builder.events(events)
    return builder.build()


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats (nan/inf) with ``None``.

    Metrics use NaN as the "no data" convention (e.g. delivery ratio with
    zero sends); raw NaN/Infinity is not valid JSON and silently breaks
    downstream parsers, so JSON output is guarded through this filter.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def write_table_json(table: ResultTable, path: str) -> None:
    """Write a table as a JSON document with non-finite values nulled."""
    document = {"title": table.title, "rows": json_safe(table.to_dicts())}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, allow_nan=False)
        fh.write("\n")


def run_and_print(benchmark, fn: Callable[[], ResultTable]) -> ResultTable:
    """Benchmark ``fn`` once (pedantic single round) and print its table.

    When ``REPRO_BENCH_JSON_DIR`` is set, the table is also written there
    as ``<title-slug>.json`` (non-finite values nulled via json_safe).
    """
    table = benchmark.pedantic(fn, rounds=1, iterations=1)
    print()
    table.print()
    out_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        slug = "".join(
            ch if ch.isalnum() else "-" for ch in table.title.lower()
        ).strip("-")
        write_table_json(table, os.path.join(out_dir, f"{slug[:60]}.json"))
    return table
