"""E12 (§V-B, citations [28-33]): the cost-of-learning frontier.

Evaluate every topology-activation option on estimation error vs
communication energy, and show the policy choosing along the frontier as
the error target tightens.  Expected shape: a clean monotone frontier
(more links, less error) with the policy selecting the cheapest option
meeting each target — the "activate different network topologies based on
the trade-off" behavior.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning.cost import ActivationPolicy, cost_accuracy_frontier


def run_experiment(quick: bool = True) -> ResultTable:
    n_sensors = 16 if quick else 32
    noise = 1.0
    table = ResultTable(
        "E12 — accuracy vs communication-energy frontier + policy choices",
        ["row_kind", "option", "links", "energy_j", "rmse", "error_target"],
    )
    for row in cost_accuracy_frontier(
        n_sensors, noise, rng=np.random.default_rng(0)
    ):
        table.add_row(
            row_kind="frontier",
            option=row["name"],
            links=row["links"],
            energy_j=row["energy_j"],
            rmse=row["rmse"],
            error_target="",
        )
    policy = ActivationPolicy(n_sensors, noise, rng=np.random.default_rng(0))
    targets = (1.0, 0.5, 0.3, 0.2) if quick else (1.0, 0.6, 0.45, 0.3, 0.25, 0.18)
    for target in targets:
        chosen = policy.choose(target)
        table.add_row(
            row_kind="policy",
            option=chosen.name,
            links=chosen.links,
            energy_j=chosen.energy_j,
            rmse=policy.error_of(chosen),
            error_target=target,
        )
    return table


def test_e12_cost_frontier(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    frontier = [r for r in rows if r["row_kind"] == "frontier"]
    # The frontier is monotone: more energy, less error.
    energies = [r["energy_j"] for r in frontier]
    errors = [r["rmse"] for r in frontier]
    assert energies == sorted(energies)
    assert errors == sorted(errors, reverse=True)
    # Policy spends more energy as the target tightens.
    policy_rows = [r for r in rows if r["row_kind"] == "policy"]
    chosen_energy = [r["energy_j"] for r in policy_rows]
    assert chosen_energy == sorted(chosen_energy)


if __name__ == "__main__":
    run_experiment(quick=False).print()
