"""E13 (§V-B): continual learning without forgetting; poisoning defense.

Part 1: a stream of battlefield contexts (distinct input regimes with
different input-output maps) trains a blind single-model learner vs a
context-detecting learner; both are then re-examined on every past context.
Expected shape: the blind learner's error on early contexts grows with each
new regime (catastrophic forgetting); the context-aware learner's stays
flat.

Part 2: label-flip poisoning of a training batch, with and without the
reference-model residual filter.  Expected shape: filtering recovers most
of the clean-model accuracy.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning.adversarial import flip_labels, poisoning_detector
from repro.core.learning.continual import (
    BlindContinualLearner,
    ContextAwareLearner,
    OnlineLinearModel,
)

DIM = 4


def _contexts(n_contexts: int, rng):
    out = []
    for i in range(n_contexts):
        w = rng.normal(0, 1, DIM)
        center = i * 8.0
        x = rng.normal(center, 1.0, (400, DIM))
        out.append((x, x @ w))
    return out


def run_experiment(quick: bool = True) -> ResultTable:
    rng = np.random.default_rng(9)
    n_contexts = 3 if quick else 5
    contexts = _contexts(n_contexts, rng)
    blind = BlindContinualLearner(DIM)
    aware = ContextAwareLearner(DIM, context_threshold=4.0)
    table = ResultTable(
        "E13 — forgetting across contexts; poisoning filter",
        ["row_kind", "after_context", "context_0_mse_blind",
         "context_0_mse_aware", "detail", "value"],
    )
    for i, (x, y) in enumerate(contexts):
        blind.learn(x, y)
        aware.learn(x, y)
        x0, y0 = contexts[0]
        table.add_row(
            row_kind="forgetting",
            after_context=i,
            context_0_mse_blind=blind.evaluate(x0, y0),
            context_0_mse_aware=aware.evaluate(x0, y0),
            detail="",
            value="",
        )

    # --- poisoning defense
    w = rng.normal(0, 1, DIM)
    x = rng.normal(0, 1, (600, DIM))
    y = x @ w + rng.normal(0, 0.05, 600)
    poisoned, mask = flip_labels(y, 0.25, rng)
    holdout_x = rng.normal(0, 1, (200, DIM))
    holdout_y = holdout_x @ w

    def train_mse(labels, keep=None):
        model = OnlineLinearModel(DIM)
        if keep is None:
            model.partial_fit(x, labels)
        else:
            model.partial_fit(x[keep], labels[keep])
        return model.mse(holdout_x, holdout_y)

    clean_mse = train_mse(y)
    poisoned_mse = train_mse(poisoned)
    flagged = poisoning_detector(x, poisoned, w)
    filtered_mse = train_mse(poisoned, keep=~flagged)
    for detail, value in (
        ("clean", clean_mse),
        ("poisoned_25pct", poisoned_mse),
        ("poisoned_filtered", filtered_mse),
    ):
        table.add_row(
            row_kind="poisoning",
            after_context="",
            context_0_mse_blind="",
            context_0_mse_aware="",
            detail=detail,
            value=value,
        )
    return table


def test_e13_continual(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    forgetting = [r for r in rows if r["row_kind"] == "forgetting"]
    first, last = forgetting[0], forgetting[-1]
    # Blind learner forgets context 0; context-aware does not.
    assert last["context_0_mse_blind"] > first["context_0_mse_blind"] + 0.01
    assert last["context_0_mse_aware"] < 0.01
    poisoning = {r["detail"]: r["value"] for r in rows if r["row_kind"] == "poisoning"}
    assert poisoning["poisoned_25pct"] > poisoning["clean"]
    assert poisoning["poisoned_filtered"] < poisoning["poisoned_25pct"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
