"""E10 (§V-A): network tomography — diagnostics without direct observation.

Over a real battlefield topology snapshot, monitor nodes exchange
end-to-end probes along min-ETX paths.  A hidden set of links fails; the
boolean tomography engine localizes them from path outcomes only.  A second
sweep recovers per-link delays from end-to-end sums.  Expected shape:
localization recall grows with monitor count (more paths = more coverage
and more exoneration); additive-delay error shrinks as measurements
approach full rank.
"""

import itertools

import numpy as np
from common import ResultTable, run_and_print, standard_scenario

from repro.core.learning.tomography import (
    AdditiveTomography,
    BooleanTomography,
    PathMeasurement,
)
from repro.net.topology import build_topology


def _paths_between_monitors(topology, monitors):
    paths = []
    for a, b in itertools.combinations(monitors, 2):
        path = topology.shortest_path(a, b)
        if path is not None and len(path) >= 2:
            paths.append(tuple(path))
    return paths


def _link_delays(topology, rng):
    return {
        tuple(sorted(edge)): float(rng.uniform(0.005, 0.05))
        for edge in topology.graph.edges
    }


def run_experiment(quick: bool = True) -> ResultTable:
    scenario = standard_scenario(51, n_blue=90, n_red=0, n_gray=0)
    topology = build_topology(scenario.network)
    # Work on the giant component so monitor pairs have paths.
    giant = max(topology.components(), key=len)
    nodes = sorted(giant)
    rng = np.random.default_rng(8)
    delays = _link_delays(topology, rng)

    table = ResultTable(
        "E10 — failure localization & delay estimation vs monitor count",
        ["n_monitors", "n_paths", "failed_links", "precision", "recall",
         "delay_mae_s", "rank_deficiency"],
    )
    monitor_counts = (4, 8, 16) if quick else (4, 8, 16, 24, 32)
    for n_monitors in monitor_counts:
        monitors = list(
            rng.choice(nodes, size=min(n_monitors, len(nodes)), replace=False)
        )
        paths = _paths_between_monitors(topology, monitors)
        if not paths:
            continue
        # Fail 3 random links that at least one path crosses.
        crossed = sorted({link for p in paths for link in zip(p, p[1:])})
        crossed = sorted({tuple(sorted(link)) for link in crossed})
        k = min(3, len(crossed))
        failed = {
            crossed[i]
            for i in rng.choice(len(crossed), size=k, replace=False)
        }
        boolean_ms = []
        additive_ms = []
        for path in paths:
            links = [tuple(sorted(link)) for link in zip(path, path[1:])]
            ok = not any(link in failed for link in links)
            boolean_ms.append(PathMeasurement(path, success=ok))
            if ok:
                additive_ms.append(
                    PathMeasurement(
                        path,
                        success=True,
                        delay_s=sum(delays[link] for link in links),
                    )
                )
        boolean = BooleanTomography(boolean_ms)
        score = boolean.score(failed)
        if additive_ms:
            additive = AdditiveTomography(additive_ms)
            mae = additive.estimation_error(delays)
            deficiency = additive.rank_deficiency()
        else:
            mae, deficiency = float("nan"), -1
        table.add_row(
            n_monitors=n_monitors,
            n_paths=len(paths),
            failed_links=len(failed),
            precision=score["precision"],
            recall=score["recall"],
            delay_mae_s=mae,
            rank_deficiency=deficiency,
        )
    return table


def test_e10_tomography(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    assert rows, "no tomography rows produced"
    # More monitors -> more measurement paths.
    n_paths = [r["n_paths"] for r in rows]
    assert n_paths == sorted(n_paths)
    # Localization is useful at the largest monitor set.
    assert rows[-1]["recall"] >= 0.5
    assert rows[-1]["precision"] >= 0.5


if __name__ == "__main__":
    run_experiment(quick=False).print()
