"""E14 (§V-B + §VI): learning safety — verification and runtime assurance.

Part 1: interval output-range analysis (IBP) over random small MLPs —
fraction of input boxes *verified* safe vs box radius, cross-checked by
simulation-driven falsification (no verified box may contain a violation).

Part 2: runtime shield around an unsafe learned policy — interception rate
and the guarantee that no unsafe action escapes.  Also the actuation
interlock: demolition requests blocked when occupancy sensing reports
humans present (the paper's "smarter ammunition" discussion).

Expected shape: verification rate decays with box radius (IBP bounds widen)
but soundness never breaks; the shield intercepts exactly the unsafe
fraction of proposals.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning.safety import IntervalMlp, RuntimeMonitor, ShieldedPolicy
from repro.things.actuators import ActuationRequest, Actuator, SafetyInterlock
from repro.things.capabilities import ActuationType


def _random_mlp(rng):
    return IntervalMlp(
        [
            (rng.normal(0, 1, (10, 3)), rng.normal(0, 0.1, 10)),
            (rng.normal(0, 0.5, (1, 10)), np.zeros(1)),
        ]
    )


def run_experiment(quick: bool = True) -> ResultTable:
    rng = np.random.default_rng(14)
    table = ResultTable(
        "E14 — verified boxes vs radius; runtime-shield interception",
        ["row_kind", "radius", "verified_frac", "falsified_verified",
         "detail", "value"],
    )
    n_models = 10 if quick else 30
    models = [_random_mlp(rng) for _ in range(n_models)]
    thresholds = []
    for model in models:
        samples = [
            model.forward(rng.uniform(-1, 1, 3))[0] for _ in range(200)
        ]
        thresholds.append(float(np.percentile(samples, 99)) + 0.5)

    radii = (0.05, 0.15, 0.4) if quick else (0.02, 0.05, 0.1, 0.2, 0.4, 0.8)
    for radius in radii:
        verified = 0
        falsified_inside_verified = 0
        trials = 0
        for model, threshold in zip(models, thresholds):
            for _ in range(5):
                center = rng.uniform(-0.5, 0.5, 3)
                lo, hi = center - radius, center + radius
                trials += 1
                if model.verify_output_below(lo, hi, threshold):
                    verified += 1
                    if model.falsify(lo, hi, threshold, rng, samples=200) is not None:
                        falsified_inside_verified += 1
        table.add_row(
            row_kind="verification",
            radius=radius,
            verified_frac=verified / trials,
            falsified_verified=falsified_inside_verified,
            detail="",
            value="",
        )

    # --- runtime shield
    policy_rng = np.random.default_rng(5)
    policy = lambda s: np.array([float(policy_rng.normal(0, 2))])  # noqa: E731
    monitor = RuntimeMonitor("bound", lambda s, a: abs(a[0]) <= 1.0)
    shield = ShieldedPolicy(policy, monitor, lambda s: np.array([0.0]))
    violations = 0
    for _ in range(500):
        action = shield.act(np.zeros(1))
        if abs(action[0]) > 1.0:
            violations += 1
    table.add_row(
        row_kind="shield", radius="", verified_frac="", falsified_verified="",
        detail="intervention_rate", value=shield.intervention_rate,
    )
    table.add_row(
        row_kind="shield", radius="", verified_frac="", falsified_verified="",
        detail="unsafe_actions_escaped", value=violations,
    )

    # --- actuation interlock (smarter ammunition)
    interlock = SafetyInterlock()
    humans_present = {"flag": True}
    interlock.add_guard(
        "occupancy",
        lambda req: "humans detected in radius" if humans_present["flag"] else None,
    )
    charge = Actuator(1, ActuationType.DEMOLITION, interlock=interlock)
    blocked = not charge.fire(
        ActuationRequest(kind=ActuationType.DEMOLITION, human_decision=True)
    )
    humans_present["flag"] = False
    allowed = charge.fire(
        ActuationRequest(kind=ActuationType.DEMOLITION, human_decision=True)
    )
    table.add_row(
        row_kind="interlock", radius="", verified_frac="",
        falsified_verified="", detail="blocked_when_occupied", value=blocked,
    )
    table.add_row(
        row_kind="interlock", radius="", verified_frac="",
        falsified_verified="", detail="allowed_when_clear", value=allowed,
    )
    return table


def test_e14_safety(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    verification = [r for r in rows if r["row_kind"] == "verification"]
    # Soundness: no verified box ever falsified.
    assert all(r["falsified_verified"] == 0 for r in verification)
    # Verified fraction decays with radius.
    fractions = [r["verified_frac"] for r in verification]
    assert fractions[0] >= fractions[-1]
    shield = {r["detail"]: r["value"] for r in rows if r["row_kind"] == "shield"}
    assert shield["unsafe_actions_escaped"] == 0
    assert 0.0 < shield["intervention_rate"] < 1.0
    interlock = {r["detail"]: r["value"] for r in rows if r["row_kind"] == "interlock"}
    assert interlock["blocked_when_occupied"] is True
    assert interlock["allowed_when_clear"] is True


if __name__ == "__main__":
    run_experiment(quick=False).print()
