"""PR7 scale gate: sharded engine throughput at 1/2/4 shards.

Runs uniform-grid worlds (1k and 5k nodes; ``--full`` adds 10k) with a
mostly-shard-local raw-send workload through :class:`repro.shard.ShardedSimulator`
at shard counts 1, 2, and 4, and records events/sec for each.  Wall time is
measured around the whole ``run()`` — including the replicated world build
and barrier IPC — so the speedup numbers are end-to-end, not cherry-picked.

The acceptance gate (>= ``REQUIRED_SPEEDUP``x events/sec at 4 shards vs 1
on the >= 5k-node world) is only *enforced* when the host actually has 4+
CPUs; on smaller hosts the numbers are still recorded, with the gate marked
unenforced.  Results land in ``BENCH_pr7.json`` (schema ``bench-pr7/1``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded_scale.py [--quick|--full]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.shard import ShardPlan, ShardScenarioSpec, ShardedSimulator, WorkloadSpec
from repro.util.tables import json_safe

BENCH_PR7_SCHEMA = "bench-pr7/1"

#: 4 shards must deliver at least this events/sec multiple over 1 shard on
#: the gate world — when the host has the cores to show it.
REQUIRED_SPEEDUP = 2.0

#: The gate applies to the largest world at or above this size.
GATE_MIN_NODES = 5000

SHARD_COUNTS = (1, 2, 4)


def _world(n_nodes: int, seed: int = 3) -> ShardScenarioSpec:
    """A uniform radio field with nearest-neighbor datagrams.

    Raw link-layer sends (no router) with a ``local`` workload keep
    cross-shard traffic confined to the cut fronts, and the low bitrate
    cap keeps the conservative window wide (fewer barriers per simulated
    second) without changing the per-event work being measured.
    """
    return ShardScenarioSpec(
        seed=seed,
        kind="uniform",
        n_nodes=n_nodes,
        spacing_m=60.0,
        jitter_m=8.0,
        bitrate_bps=5e4,
        router=None,
        mac="csma",
        workload=WorkloadSpec(
            kind="local", rate_hz=1.0, size_bits=2048, ttl=1, sender_stride=1
        ),
    )


def _run_once(
    spec: ShardScenarioSpec, n_shards: int, until: float, mode: str
) -> Dict[str, Any]:
    plan = ShardPlan(n_shards=n_shards, cell_size_m=120.0)
    engine = ShardedSimulator(spec, plan, mode=mode, collect_trace=False)
    t0 = time.perf_counter()
    result = engine.run(until)
    wall = time.perf_counter() - t0
    events = result.events_processed
    return {
        "n_shards": n_shards,
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 1e-9 else 0.0,
        "n_windows": result.n_windows,
        "retries": result.retries,
    }


def bench(
    sizes: Tuple[int, ...] = (1000, 5000),
    until: float = 4.0,
    mode: str = "fork",
) -> Dict[str, Any]:
    cpu_count = os.cpu_count() or 1
    worlds: Dict[str, Any] = {}
    for n_nodes in sizes:
        spec = _world(n_nodes)
        rows: List[Dict[str, Any]] = []
        for k in SHARD_COUNTS:
            row = _run_once(spec, k, until, mode)
            rows.append(row)
            print(
                f"n={n_nodes} shards={k}: {row['events']} events in "
                f"{row['wall_s']:.2f}s -> {row['events_per_sec']:,.0f} ev/s"
            )
        base = rows[0]["events_per_sec"]
        worlds[f"n{n_nodes}"] = {
            "n_nodes": n_nodes,
            "until_s": until,
            "shards": {str(r["n_shards"]): r for r in rows},
            "speedup_2x": rows[1]["events_per_sec"] / base if base else 0.0,
            "speedup_4x": rows[2]["events_per_sec"] / base if base else 0.0,
        }

    gate_worlds = [w for w in worlds.values() if w["n_nodes"] >= GATE_MIN_NODES]
    gate_world = max(gate_worlds, key=lambda w: w["n_nodes"]) if gate_worlds else None
    enforced = cpu_count >= 4 and gate_world is not None
    passed: Optional[bool] = None
    if gate_world is not None:
        passed = gate_world["speedup_4x"] >= REQUIRED_SPEEDUP
    return {
        "schema": BENCH_PR7_SCHEMA,
        "cpu_count": cpu_count,
        "mode": mode,
        "gate": {
            "required_speedup_4x": REQUIRED_SPEEDUP,
            "world": f"n{gate_world['n_nodes']}" if gate_world else None,
            "enforced": enforced,
            "passed": passed,
        },
        "worlds": worlds,
    }


def write_bench_pr7(payload: Dict[str, Any], path: Optional[str] = None) -> str:
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr7.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small worlds, short horizon (smoke only; gate never enforced)",
    )
    parser.add_argument(
        "--full", action="store_true", help="add the 10k-node world"
    )
    parser.add_argument(
        "--mode", default="fork", choices=("fork", "spawn", "inline")
    )
    args = parser.parse_args(argv)

    if args.quick:
        payload = bench(sizes=(300,), until=2.0, mode=args.mode)
    elif args.full:
        payload = bench(sizes=(1000, 5000, 10000), until=4.0, mode=args.mode)
    else:
        payload = bench(sizes=(1000, 5000), until=4.0, mode=args.mode)

    path = write_bench_pr7(payload)
    print(f"wrote {path}")
    gate = payload["gate"]
    if gate["enforced"]:
        if gate["passed"]:
            print(
                f"OK: {gate['world']} reached "
                f"{payload['worlds'][gate['world']]['speedup_4x']:.2f}x "
                f"at 4 shards (floor {REQUIRED_SPEEDUP}x)"
            )
            return 0
        print(
            f"FAIL: {gate['world']} at "
            f"{payload['worlds'][gate['world']]['speedup_4x']:.2f}x "
            f"(< {REQUIRED_SPEEDUP}x) with {payload['cpu_count']} CPUs"
        )
        return 1
    print(
        f"gate not enforced (cpu_count={payload['cpu_count']}, "
        f"gate world={gate['world']}); numbers recorded only"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
