"""Faults & reliability: reliable vs. fire-and-forget transport under chaos.

A 28-node multi-hop line runs a Poisson unicast workload through the chaos
schedule the robustness milestone specifies: node crash/restart churn (MTBF
300 s, mean downtime 60 s), a 5% per-hop packet-drop gremlin, and one 60 s
spatial partition.  The same AODV substrate carries both transports:

* ``fire_forget`` — :class:`~repro.net.transport.MessageService`: one shot,
  no acknowledgment; a message sent toward a crashed node or across the
  partition is simply gone.
* ``reliable`` — :class:`~repro.net.transport.ReliableMessageService`:
  end-to-end ACKs, exponential-backoff retransmission (seeded jitter), and
  duplicate suppression; retries outlive downtime windows, so messages ride
  out churn and the partition heals them.

Expected shape: reliable delivers >= 1.5x the fire-and-forget ratio under
chaos, at the cost of a substantial retransmit rate.  Both runs are
bit-identical across executions with the same seed (fault injection draws
only from named RNG streams), which the test asserts via trace
fingerprints.

The seed replication runs through :mod:`repro.campaign` with the same
explicit seed list the hand-rolled loop used (7 quick; 7/13/21 full), so
both transports stay paired on identical chaos schedules and the table
matches the pre-campaign harness.  ``REPRO_BENCH_WORKERS`` parallelizes
the grid; ``REPRO_CAMPAIGN_CACHE`` caches completed (transport, seed)
cells across runs.
"""

import numpy as np
from common import ResultTable, campaign_runner, run_and_print, sim_rate

from repro.campaign import SweepSpec

from repro import Simulator
from repro.faults import FaultInjector, fault_windows, windowed_delivery_ratio
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter
from repro.net.transport import MessageService, ReliableMessageService
from repro.obs import wire_from_env
from repro.util.geometry import Point

N_NODES = 28
SPACING_M = 75.0
HORIZON = 900.0
SEND_UNTIL = 650.0  # leave the tail for retransmissions to settle
MEAN_IAT_S = 5.0


def _build(seed):
    sim = wire_from_env(Simulator(seed=seed))
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    for i in range(1, N_NODES + 1):
        net.create_node(i, Point(i * SPACING_M, 0.0))
    return sim, net


def _chaos(net) -> FaultInjector:
    """The milestone chaos schedule: churn + 5% drop + one 60 s partition."""
    injector = FaultInjector(net)
    injector.node_churn(mtbf_s=300.0, mean_downtime_s=60.0, start_s=0.0)
    injector.gremlin(drop_p=0.05, start_s=0.0)
    injector.partition_spatial(start_s=300.0, duration_s=60.0)
    return injector


def _workload(sim, send_fn, rng):
    def tick():
        if sim.now > SEND_UNTIL:
            return
        a, b = rng.choice(np.arange(1, N_NODES + 1), size=2, replace=False)
        send_fn(int(a), int(b))
        sim.call_in(float(rng.exponential(MEAN_IAT_S)), tick)

    sim.call_in(float(rng.exponential(MEAN_IAT_S)), tick)


def _run(transport: str, seed: int):
    sim, net = _build(seed)
    injector = _chaos(net)
    router = AodvRouter(net)
    router.attach_all(range(1, N_NODES + 1))
    if transport == "reliable":
        service = ReliableMessageService(router, base_rto_s=2.0, max_retries=7)
    else:
        service = MessageService(router)
    _workload(sim, lambda a, b: service.send(a, b), sim.rng.get("workload"))
    sim.run(until=HORIZON)
    if sim.trace.sinks:  # profiler rows/metrics reach the export, if any
        sim.export_obs()

    population = (
        service.fates.values()
        if transport == "reliable"
        else service.receipts.values()
    )
    windows = [w for ws in fault_windows(sim.trace).values() for w in ws]
    latencies = [
        r.latency_s for r in population if r.latency_s is not None
    ]
    out = {
        "delivery": service.delivery_ratio(),
        "in_fault": windowed_delivery_ratio(population, windows, inside=True),
        "latency_p50_s": float(np.median(latencies)) if latencies else float("nan"),
        "tx_per_delivery": service.transmissions_per_delivery(),
        "retransmit_rate": (
            service.retransmit_rate() if transport == "reliable" else 0.0
        ),
        "gave_up": (
            service.fate_counts()["gave_up"] if transport == "reliable" else 0
        ),
        "mttr_s": injector.mttr(),
        "availability": injector.availability(HORIZON),
        "fingerprint": sim.trace.fingerprint(),
    }
    return out, sim


def chaos_task(params, seed):
    """Campaign task: one (transport, seed) chaos run, table-named metrics.

    Kernel throughput (``sim_rate``) rides along in the result dict —
    wall-clock figures, so they stay out of the deterministic metric
    columns the table selects.
    """
    out, sim = _run(params["transport"], seed)
    return {
        "delivery_ratio": out["delivery"],
        "delivery_in_fault": out["in_fault"],
        "latency_p50_s": out["latency_p50_s"],
        "tx_per_delivery": out["tx_per_delivery"],
        "retransmit_rate": out["retransmit_rate"],
        "gave_up": float(out["gave_up"]),
        "mttr_s": out["mttr_s"],
        "availability": out["availability"],
        "trace_fingerprint": out["fingerprint"],
        **sim_rate(sim),
    }


def run_experiment(quick: bool = True) -> ResultTable:
    spec = SweepSpec(
        name="faults-reliability",
        grid={"transport": ("fire_forget", "reliable")},
        seeds=(7,) if quick else (7, 13, 21),
    )
    result = campaign_runner(chaos_task).run(spec)
    return result.table(
        "Faults — reliable vs fire-and-forget transport under chaos",
        param_cols=["transport"],
        metrics=[
            "delivery_ratio",
            "delivery_in_fault",
            "latency_p50_s",
            "tx_per_delivery",
            "retransmit_rate",
            "gave_up",
            "mttr_s",
            "availability",
        ],
    )


def test_faults_reliability(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["transport"]: r for r in table.to_dicts()}
    # The reliability layer earns >= 1.5x delivery under the chaos schedule.
    assert (
        rows["reliable"]["delivery_ratio"]
        >= 1.5 * rows["fire_forget"]["delivery_ratio"]
    )
    # Chaos really degraded the substrate (otherwise the comparison is idle).
    assert rows["fire_forget"]["delivery_ratio"] < 0.8
    assert rows["fire_forget"]["availability"] < 0.95
    # Reliability costs retransmissions; fate accounting saw real give-ups.
    assert rows["reliable"]["retransmit_rate"] > 0.0


def test_chaos_run_is_deterministic(benchmark):
    """Same seed + same chaos schedule => bit-identical runs."""

    def both():
        return _run("reliable", 7)[0], _run("fire_forget", 7)[0]

    (rel_a, ff_a) = benchmark.pedantic(both, rounds=1, iterations=1)
    rel_b, ff_b = _run("reliable", 7)[0], _run("fire_forget", 7)[0]
    assert rel_a == rel_b
    assert ff_a == ff_b
    assert rel_a["fingerprint"] == rel_b["fingerprint"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
