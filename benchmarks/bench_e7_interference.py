"""E7 (§IV-A, citation [12]): uncoordinated adaptive components interact badly.

N adaptive rate controllers share one bottleneck.  Uncoordinated, each
chases the shared delay signal at full gain — corrections compound and the
system oscillates/saturates.  Coordinated, they split the correction.
Expected shape (the cited server-farm result): uncoordinated delay RMSE is
an order of magnitude worse and grows with controller count; coordinated
stays near the setpoint at any N.
"""

from common import ResultTable, run_and_print

from repro.core.adaptation.resources import (
    AdaptiveRateController,
    CoordinatedRateControllers,
)


def _run(n_controllers: int, coordinated: bool, epochs: int = 150):
    controllers = [
        AdaptiveRateController(setpoint_s=1.0, rate=1.0, gain=1.5)
        for _ in range(n_controllers)
    ]
    shared = CoordinatedRateControllers(
        controllers, capacity=2.0 * n_controllers, coordinated=coordinated
    )
    return shared.run(epochs)


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E7 — coordinated vs uncoordinated adaptive controllers",
        ["n_controllers", "mode", "delay_rmse", "mean_delay", "oscillation"],
    )
    counts = (2, 5, 10) if quick else (2, 5, 10, 20, 40)
    for n in counts:
        for coordinated in (True, False):
            out = _run(n, coordinated)
            table.add_row(
                n_controllers=n,
                mode="coordinated" if coordinated else "uncoordinated",
                delay_rmse=out["delay_rmse"],
                mean_delay=out["mean_delay"],
                oscillation=out["oscillation"],
            )
    return table


def test_e7_interference(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    for n in {r["n_controllers"] for r in rows}:
        coord = next(
            r for r in rows
            if r["n_controllers"] == n and r["mode"] == "coordinated"
        )
        uncoord = next(
            r for r in rows
            if r["n_controllers"] == n and r["mode"] == "uncoordinated"
        )
        if n >= 5:
            # The pathology the paper cites: severe loss without coordination.
            assert uncoord["delay_rmse"] > 3 * coord["delay_rmse"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
