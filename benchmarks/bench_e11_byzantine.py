"""E11 (§V-B): distributed learning resilient to compromise & churn.

Decentralized SGD over a time-varying topology with f Byzantine workers,
sweeping the aggregation rule and f.  Expected shape: plain averaging
degrades sharply with any Byzantine presence; Krum / median / trimmed-mean
track the clean loss until f approaches their breakdown points.
"""

import numpy as np
from common import ResultTable, run_and_print

from repro.core.learning import AGGREGATORS
from repro.core.learning.distributed import (
    DecentralizedSGD,
    RandomTopology,
    make_regression_shards,
)

N_WORKERS = 12
ROUNDS = 60


def _final_loss(rule: str, n_byzantine: int, seed: int = 2) -> float:
    rng = np.random.default_rng(seed)
    shards, _w = make_regression_shards(N_WORKERS, 50, 5, rng)
    sgd = DecentralizedSGD(
        shards,
        RandomTopology(N_WORKERS, 0.5, np.random.default_rng(seed + 1)),
        aggregator=AGGREGATORS[rule],
        byzantine_workers=set(range(n_byzantine)),
        rng=np.random.default_rng(seed + 2),
    )
    return sgd.run(ROUNDS)[-1]


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E11 — decentralized SGD loss vs Byzantine workers by aggregator",
        ["aggregator", "f0", "f1", "f2", "f3"],
    )
    rules = ("mean", "krum", "median", "trimmed_mean")
    for rule in rules:
        losses = {f: _final_loss(rule, f) for f in (0, 1, 2, 3)}
        table.add_row(
            aggregator=rule,
            f0=losses[0],
            f1=losses[1],
            f2=losses[2],
            f3=losses[3],
        )
    return table


def test_e11_byzantine(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["aggregator"]: r for r in table.to_dicts()}
    # Clean runs all converge.
    assert all(r["f0"] < 0.1 for r in rows.values())
    # Mean is the fragile baseline; robust rules stay near clean loss at f=2.
    assert rows["mean"]["f2"] > 5 * rows["krum"]["f2"]
    assert rows["krum"]["f2"] < 0.2
    assert rows["median"]["f2"] < 0.2


if __name__ == "__main__":
    run_experiment(quick=False).print()
