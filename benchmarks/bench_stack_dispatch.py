"""PR5 perf gate: layered fast-path dispatcher vs the pre-refactor path.

:class:`LegacyNetwork` below is a *frozen copy* of the hand-inlined
``Network.send`` / ``Network.broadcast`` transmit path as it stood
immediately before the layered-stack refactor (the code the PR5 golden
fingerprints were captured from).  Running identical workloads through the
frozen copy and through the live :class:`repro.net.stack.FastPathDispatcher`
gives a machine-independent before/after comparison:

* behavior: both sides must produce bit-identical trace fingerprints;
* throughput: the dispatcher must stay within 5% of the legacy events/sec
  (``RATIO_FLOOR``).

Results land in ``BENCH_pr5.json`` (schema ``bench-pr5/1``) next to the
earlier ``BENCH_pr4.json`` baseline.  Run directly::

    PYTHONPATH=src python benchmarks/bench_stack_dispatch.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.channel import Channel
from repro.net.node import SPEED_OF_LIGHT_M_S, NetNode, Network
from repro.net.packet import Packet
from repro.net.routing import FloodingRouter, GreedyGeoRouter
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point, distance
from repro.util.tables import json_safe

BENCH_PR5_SCHEMA = "bench-pr5/1"

#: The dispatcher may not fall below this fraction of legacy throughput.
RATIO_FLOOR = 0.95

#: Timing repetitions; events/sec is taken best-of to shed scheduler noise.
REPEATS = 5


class LegacyNetwork(Network):
    """The pre-refactor inline transmit path, frozen for comparison.

    The overridden methods reproduce the old implementation verbatim; the
    constructor re-creates the flat attribute layout (`_h_backoff`,
    `_c_tx`, ...) the old code read, aliasing the stack's instruments so
    metric accounting stays shared and neither side pays extra attribute
    hops the other does not.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        ctx = self.stack.ctx
        self._h_backoff = ctx.h_backoff
        self._c_tx = ctx.c_tx
        self._c_rx = ctx.c_rx
        self._c_dropped = ctx.c_dropped
        self._count_control = ctx.count_control
        self._gremlin_verdict = self.stack.faults.gremlin_verdict
        self._sniffers = self.stack.app.sniffers

    def _busy_neighbors(self, node: NetNode) -> int:
        return sum(
            self.nodes[nid].busy_tx
            for nid in self.neighbors(node.id)
            if nid in self.nodes
        )

    def send(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_result: Optional[Callable[[bool], None]] = None,
    ) -> None:
        sender = self.node(sender_id)
        receiver = self.node(receiver_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            if on_result:
                on_result(False)
            return
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        prop = distance(sender.position, receiver.position) / SPEED_OF_LIGHT_M_S
        delay = backoff + airtime + prop
        p_ok = self.channel.delivery_probability(
            sender.tx_power_dbm,
            sender.position,
            receiver.position,
            sender.id,
            receiver.id,
        ) * access.collision_survival
        drop_reason: Optional[str] = None
        if not receiver.up:
            success = False
            drop_reason = "receiver_down"
        elif self._rng.random() < p_ok:
            success = True
        else:
            success = False
            drop_reason = "loss"
        if success and self.link_blocked(sender_id, receiver_id):
            success = False
            drop_reason = "link_blocked"
            self.sim.metrics.incr("net.link_blocked")
        duplicate = corrupt = False
        extra_delay = 0.0
        if success:
            verdict = self._gremlin_verdict(sender_id, receiver_id, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                delay += extra_delay
                if drop:
                    success = False
                    drop_reason = "gremlin"
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id,
                receiver_id,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=prop,
                extra_s=extra_delay,
            )

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            if success and receiver.up:
                if corrupt:
                    self.sim.metrics.incr("net.rx_corrupt")
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, receiver_id, "corrupt")
                    if on_result:
                        on_result(False)
                    return
                self.sim.metrics.incr("net.tx_success")
                self._c_rx.inc()
                if token is not None:
                    tracer.on_rx(
                        token, packet, sender_id, receiver_id, extra_s=extra_delay
                    )
                self._deliver(receiver, packet, sender_id)
                if duplicate:
                    self.sim.metrics.incr("net.rx_duplicated")
                    if receiver.up:
                        self._deliver(receiver, packet, sender_id)
                if on_result:
                    on_result(True)
            else:
                self.sim.metrics.incr("net.tx_failed")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(
                        token,
                        sender_id,
                        receiver_id,
                        drop_reason or "receiver_down",
                    )
                if on_result:
                    on_result(False)

        self.sim.call_in(delay, complete)

    def broadcast(self, sender_id: int, packet: Packet) -> int:
        sender = self.node(sender_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            return 0
        neighbor_ids = self.neighbors(sender_id)
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        base_delay = backoff + airtime
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        survival = access.collision_survival
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id,
                None,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=0.0,
                extra_s=0.0,
            )
        deliveries: List[Tuple[int, bool, bool, float]] = []
        for nid in neighbor_ids:
            receiver = self.nodes[nid]
            p_ok = (
                self.channel.delivery_probability(
                    sender.tx_power_dbm,
                    sender.position,
                    receiver.position,
                    sender.id,
                    receiver.id,
                )
                * survival
            )
            if self._rng.random() >= p_ok:
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "loss")
                continue
            if self.link_blocked(sender_id, nid):
                self.sim.metrics.incr("net.link_blocked")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "link_blocked")
                continue
            corrupt = duplicate = False
            extra_delay = 0.0
            verdict = self._gremlin_verdict(sender_id, nid, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                if drop:
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, nid, "gremlin")
                    continue
            deliveries.append((nid, corrupt, duplicate, extra_delay))

        def deliver_one(
            nid: int, corrupt: bool, duplicate: bool, extra_delay: float
        ) -> None:
            receiver = self.nodes.get(nid)
            if receiver is None or not receiver.up:
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "receiver_down")
                return
            if corrupt:
                self.sim.metrics.incr("net.rx_corrupt")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "corrupt")
                return
            self.sim.metrics.incr("net.tx_success")
            self._c_rx.inc()
            if token is not None:
                tracer.on_rx(token, packet, sender_id, nid, extra_s=extra_delay)
            self._deliver(receiver, packet, sender_id)
            if duplicate:
                self.sim.metrics.incr("net.rx_duplicated")
                receiver = self.nodes.get(nid)
                if receiver is not None and receiver.up:
                    self._deliver(receiver, packet, sender_id)

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            for nid, corrupt, duplicate, extra_delay in deliveries:
                if extra_delay > 0.0:
                    self.sim.call_in(
                        extra_delay,
                        lambda n=nid, c=corrupt, d=duplicate, e=extra_delay: (
                            deliver_one(n, c, d, e)
                        ),
                    )
                else:
                    deliver_one(nid, corrupt, duplicate, 0.0)

        self.sim.call_in(base_delay, complete)
        return len(neighbor_ids)

    def _deliver(self, receiver: NetNode, packet: Packet, from_id: int) -> None:
        if receiver.energy_hook:
            receiver.energy_hook(0.0, packet.size_bits)
        for sniffer in self._sniffers:
            sniffer(packet, from_id, receiver.id)
        if receiver.router is not None:
            receiver.router.on_receive(receiver, packet, from_id)
        else:
            receiver.deliver_local(packet, from_id)


# ------------------------------------------------------------------ workloads


def _run_workload(net_cls, router_cls, seed: int, n_side: int, n_messages: int):
    """One deterministic run; returns (fingerprint, events, wall_s)."""
    sim = Simulator(seed=seed)
    net = net_cls(sim, Channel(seed=sim.rng.seed))
    node_id = 1
    for row in range(n_side):
        for col in range(n_side):
            net.create_node(node_id, Point(col * 60.0, row * 60.0))
            node_id += 1
    ids = sorted(net.nodes)
    router = router_cls(net)
    router.attach_all(ids)
    svc = MessageService(router)
    for i in range(n_messages):
        src = ids[(3 * i) % len(ids)]
        dst = ids[(7 * i + 5) % len(ids)]
        if dst == src:
            dst = ids[(dst + 1) % len(ids)]
        sim.call_at(
            1.0 + i * 0.25,
            lambda s=src, d=dst, k=i: svc.send(s, d, payload=("m", k)),
        )
    t0 = time.perf_counter()
    sim.run(until=60.0)
    wall_s = time.perf_counter() - t0
    return sim.trace.fingerprint(), sim.events_processed, wall_s


WORKLOADS = {
    # Broadcast-heavy fan-out path.
    "flooding": (FloodingRouter, 31, 8, 80),
    # Unicast-heavy hop-by-hop path.
    "geo": (GreedyGeoRouter, 32, 8, 160),
}


def bench() -> Dict[str, object]:
    workloads: Dict[str, Dict[str, object]] = {}
    total = {"legacy": 0.0, "stack": 0.0}
    for name, (router_cls, seed, n_side, n_messages) in WORKLOADS.items():
        rates = {}
        prints = {}
        events = {}
        for label, net_cls in (("legacy", LegacyNetwork), ("stack", Network)):
            best = 0.0
            for _ in range(REPEATS):
                fp, n_events, wall_s = _run_workload(
                    net_cls, router_cls, seed, n_side, n_messages
                )
                best = max(best, n_events / max(wall_s, 1e-9))
            rates[label] = best
            prints[label] = fp
            events[label] = n_events
        ratio = rates["stack"] / rates["legacy"]
        workloads[name] = {
            "legacy_events_per_sec": rates["legacy"],
            "stack_events_per_sec": rates["stack"],
            "ratio": ratio,
            "events": events["stack"],
            "fingerprint_match": prints["legacy"] == prints["stack"],
        }
        total["legacy"] += rates["legacy"]
        total["stack"] += rates["stack"]
        print(
            f"{name:>10}: legacy={rates['legacy']:,.0f} ev/s  "
            f"stack={rates['stack']:,.0f} ev/s  ratio={ratio:.3f}  "
            f"fingerprints {'MATCH' if workloads[name]['fingerprint_match'] else 'DIVERGE'}"
        )
    payload = {
        "schema": BENCH_PR5_SCHEMA,
        "ratio_floor": RATIO_FLOOR,
        "events_per_sec": {
            "legacy": total["legacy"] / len(WORKLOADS),
            "stack": total["stack"] / len(WORKLOADS),
            "ratio": total["stack"] / total["legacy"],
        },
        "workloads": workloads,
    }
    return payload


def write_bench_pr5(payload: Dict[str, object], path: Optional[str] = None) -> str:
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr5.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def main() -> int:
    payload = bench()
    path = write_bench_pr5(payload)
    print(f"wrote {path}")
    ok = True
    for name, row in payload["workloads"].items():
        if not row["fingerprint_match"]:
            print(f"FAIL: {name}: dispatcher diverged from legacy behavior")
            ok = False
        if row["ratio"] < RATIO_FLOOR:
            print(
                f"FAIL: {name}: dispatcher at {row['ratio']:.3f}x legacy "
                f"(floor {RATIO_FLOOR})"
            )
            ok = False
    if ok:
        print(f"OK: dispatcher within {(1 - RATIO_FLOOR):.0%} of legacy throughput")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
