"""PR5 perf gate: layered fast-path dispatcher vs the pre-refactor path.

:class:`LegacyNetwork` below is a *frozen copy* of the hand-inlined
``Network.send`` / ``Network.broadcast`` transmit path as it stood
immediately before the layered-stack refactor (the code the PR5 golden
fingerprints were captured from).  Running identical workloads through the
frozen copy and through the live :class:`repro.net.stack.FastPathDispatcher`
gives a machine-independent before/after comparison:

* behavior: both sides must produce bit-identical trace fingerprints;
* throughput: the dispatcher must stay within 5% of the legacy events/sec
  (``RATIO_FLOOR``).

Results land in ``BENCH_pr5.json`` (schema ``bench-pr5/1``) next to the
earlier ``BENCH_pr4.json`` baseline.  Run directly::

    PYTHONPATH=src python benchmarks/bench_stack_dispatch.py

``--pr10`` runs the vectorized-fast-path gate instead (see
:func:`bench_pr10`): 1k/5k-node worlds, fast path on/off, tracing on/off,
writing ``BENCH_pr10.json`` (schema ``bench-pr10/1``).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.net import fastpath
from repro.net.channel import Channel
from repro.net.node import SPEED_OF_LIGHT_M_S, NetNode, Network
from repro.net.packet import Packet
from repro.net.routing import FloodingRouter, GreedyGeoRouter
from repro.net.transport import MessageService
from repro.sim import Simulator
from repro.util.geometry import Point, distance
from repro.util.tables import json_safe

BENCH_PR5_SCHEMA = "bench-pr5/1"

#: The dispatcher may not fall below this fraction of legacy throughput.
RATIO_FLOOR = 0.95

#: Timing repetitions; events/sec is taken best-of to shed scheduler noise.
REPEATS = 5


class LegacyNetwork(Network):
    """The pre-refactor inline transmit path, frozen for comparison.

    The overridden methods reproduce the old implementation verbatim; the
    constructor re-creates the flat attribute layout (`_h_backoff`,
    `_c_tx`, ...) the old code read, aliasing the stack's instruments so
    metric accounting stays shared and neither side pays extra attribute
    hops the other does not.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        ctx = self.stack.ctx
        self._h_backoff = ctx.h_backoff
        self._c_tx = ctx.c_tx
        self._c_rx = ctx.c_rx
        self._c_dropped = ctx.c_dropped
        self._count_control = ctx.count_control
        self._gremlin_verdict = self.stack.faults.gremlin_verdict
        self._sniffers = self.stack.app.sniffers

    def _busy_neighbors(self, node: NetNode) -> int:
        return sum(
            self.nodes[nid].busy_tx
            for nid in self.neighbors(node.id)
            if nid in self.nodes
        )

    def send(
        self,
        sender_id: int,
        receiver_id: int,
        packet: Packet,
        on_result: Optional[Callable[[bool], None]] = None,
    ) -> None:
        sender = self.node(sender_id)
        receiver = self.node(receiver_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            if on_result:
                on_result(False)
            return
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        prop = distance(sender.position, receiver.position) / SPEED_OF_LIGHT_M_S
        delay = backoff + airtime + prop
        p_ok = self.channel.delivery_probability(
            sender.tx_power_dbm,
            sender.position,
            receiver.position,
            sender.id,
            receiver.id,
        ) * access.collision_survival
        drop_reason: Optional[str] = None
        if not receiver.up:
            success = False
            drop_reason = "receiver_down"
        elif self._rng.random() < p_ok:
            success = True
        else:
            success = False
            drop_reason = "loss"
        if success and self.link_blocked(sender_id, receiver_id):
            success = False
            drop_reason = "link_blocked"
            self.sim.metrics.incr("net.link_blocked")
        duplicate = corrupt = False
        extra_delay = 0.0
        if success:
            verdict = self._gremlin_verdict(sender_id, receiver_id, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                delay += extra_delay
                if drop:
                    success = False
                    drop_reason = "gremlin"
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id,
                receiver_id,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=prop,
                extra_s=extra_delay,
            )

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            if success and receiver.up:
                if corrupt:
                    self.sim.metrics.incr("net.rx_corrupt")
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, receiver_id, "corrupt")
                    if on_result:
                        on_result(False)
                    return
                self.sim.metrics.incr("net.tx_success")
                self._c_rx.inc()
                if token is not None:
                    tracer.on_rx(
                        token, packet, sender_id, receiver_id, extra_s=extra_delay
                    )
                self._deliver(receiver, packet, sender_id)
                if duplicate:
                    self.sim.metrics.incr("net.rx_duplicated")
                    if receiver.up:
                        self._deliver(receiver, packet, sender_id)
                if on_result:
                    on_result(True)
            else:
                self.sim.metrics.incr("net.tx_failed")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(
                        token,
                        sender_id,
                        receiver_id,
                        drop_reason or "receiver_down",
                    )
                if on_result:
                    on_result(False)

        self.sim.call_in(delay, complete)

    def broadcast(self, sender_id: int, packet: Packet) -> int:
        sender = self.node(sender_id)
        tracer = self.sim.packet_tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if not sender.up:
            if tracer is not None:
                tracer.drop_unsent(packet, sender_id, "sender_down")
            return 0
        neighbor_ids = self.neighbors(sender_id)
        busy = self._busy_neighbors(sender)
        access = self.mac.access(busy, self._rng)
        backoff = access.backoff_s
        self._h_backoff.observe(backoff)
        airtime = self.transmission_delay_s(sender, packet)
        base_delay = backoff + airtime
        self.sim.metrics.incr("net.tx_attempts")
        self._c_tx.inc()
        self._count_control(sender, packet)
        if sender.energy_hook:
            sender.energy_hook(packet.size_bits, 0.0)
        sender.busy_tx += 1
        survival = access.collision_survival
        token = None
        if tracer is not None:
            token = tracer.on_enqueue(
                sender_id,
                None,
                packet,
                backoff_s=backoff,
                airtime_s=airtime,
                prop_s=0.0,
                extra_s=0.0,
            )
        deliveries: List[Tuple[int, bool, bool, float]] = []
        for nid in neighbor_ids:
            receiver = self.nodes[nid]
            p_ok = (
                self.channel.delivery_probability(
                    sender.tx_power_dbm,
                    sender.position,
                    receiver.position,
                    sender.id,
                    receiver.id,
                )
                * survival
            )
            if self._rng.random() >= p_ok:
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "loss")
                continue
            if self.link_blocked(sender_id, nid):
                self.sim.metrics.incr("net.link_blocked")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "link_blocked")
                continue
            corrupt = duplicate = False
            extra_delay = 0.0
            verdict = self._gremlin_verdict(sender_id, nid, packet)
            if verdict is not None:
                drop, duplicate, corrupt, extra_delay = verdict
                if drop:
                    self._c_dropped.inc()
                    if token is not None:
                        tracer.on_drop(token, sender_id, nid, "gremlin")
                    continue
            deliveries.append((nid, corrupt, duplicate, extra_delay))

        def deliver_one(
            nid: int, corrupt: bool, duplicate: bool, extra_delay: float
        ) -> None:
            receiver = self.nodes.get(nid)
            if receiver is None or not receiver.up:
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "receiver_down")
                return
            if corrupt:
                self.sim.metrics.incr("net.rx_corrupt")
                self._c_dropped.inc()
                if token is not None:
                    tracer.on_drop(token, sender_id, nid, "corrupt")
                return
            self.sim.metrics.incr("net.tx_success")
            self._c_rx.inc()
            if token is not None:
                tracer.on_rx(token, packet, sender_id, nid, extra_s=extra_delay)
            self._deliver(receiver, packet, sender_id)
            if duplicate:
                self.sim.metrics.incr("net.rx_duplicated")
                receiver = self.nodes.get(nid)
                if receiver is not None and receiver.up:
                    self._deliver(receiver, packet, sender_id)

        def complete() -> None:
            sender.busy_tx = max(0, sender.busy_tx - 1)
            for nid, corrupt, duplicate, extra_delay in deliveries:
                if extra_delay > 0.0:
                    self.sim.call_in(
                        extra_delay,
                        lambda n=nid, c=corrupt, d=duplicate, e=extra_delay: (
                            deliver_one(n, c, d, e)
                        ),
                    )
                else:
                    deliver_one(nid, corrupt, duplicate, 0.0)

        self.sim.call_in(base_delay, complete)
        return len(neighbor_ids)

    def _deliver(self, receiver: NetNode, packet: Packet, from_id: int) -> None:
        if receiver.energy_hook:
            receiver.energy_hook(0.0, packet.size_bits)
        for sniffer in self._sniffers:
            sniffer(packet, from_id, receiver.id)
        if receiver.router is not None:
            receiver.router.on_receive(receiver, packet, from_id)
        else:
            receiver.deliver_local(packet, from_id)


# ------------------------------------------------------------------ workloads


def _run_workload(net_cls, router_cls, seed: int, n_side: int, n_messages: int):
    """One deterministic run; returns (fingerprint, events, wall_s)."""
    sim = Simulator(seed=seed)
    net = net_cls(sim, Channel(seed=sim.rng.seed))
    node_id = 1
    for row in range(n_side):
        for col in range(n_side):
            net.create_node(node_id, Point(col * 60.0, row * 60.0))
            node_id += 1
    ids = sorted(net.nodes)
    router = router_cls(net)
    router.attach_all(ids)
    svc = MessageService(router)
    for i in range(n_messages):
        src = ids[(3 * i) % len(ids)]
        dst = ids[(7 * i + 5) % len(ids)]
        if dst == src:
            dst = ids[(dst + 1) % len(ids)]
        sim.call_at(
            1.0 + i * 0.25,
            lambda s=src, d=dst, k=i: svc.send(s, d, payload=("m", k)),
        )
    t0 = time.perf_counter()
    sim.run(until=60.0)
    wall_s = time.perf_counter() - t0
    return sim.trace.fingerprint(), sim.events_processed, wall_s


WORKLOADS = {
    # Broadcast-heavy fan-out path.
    "flooding": (FloodingRouter, 31, 8, 80),
    # Unicast-heavy hop-by-hop path.
    "geo": (GreedyGeoRouter, 32, 8, 160),
}


def bench() -> Dict[str, object]:
    workloads: Dict[str, Dict[str, object]] = {}
    total = {"legacy": 0.0, "stack": 0.0}
    for name, (router_cls, seed, n_side, n_messages) in WORKLOADS.items():
        rates = {}
        prints = {}
        events = {}
        for label, net_cls in (("legacy", LegacyNetwork), ("stack", Network)):
            best = 0.0
            for _ in range(REPEATS):
                fp, n_events, wall_s = _run_workload(
                    net_cls, router_cls, seed, n_side, n_messages
                )
                best = max(best, n_events / max(wall_s, 1e-9))
            rates[label] = best
            prints[label] = fp
            events[label] = n_events
        ratio = rates["stack"] / rates["legacy"]
        workloads[name] = {
            "legacy_events_per_sec": rates["legacy"],
            "stack_events_per_sec": rates["stack"],
            "ratio": ratio,
            "events": events["stack"],
            "fingerprint_match": prints["legacy"] == prints["stack"],
        }
        total["legacy"] += rates["legacy"]
        total["stack"] += rates["stack"]
        print(
            f"{name:>10}: legacy={rates['legacy']:,.0f} ev/s  "
            f"stack={rates['stack']:,.0f} ev/s  ratio={ratio:.3f}  "
            f"fingerprints {'MATCH' if workloads[name]['fingerprint_match'] else 'DIVERGE'}"
        )
    payload = {
        "schema": BENCH_PR5_SCHEMA,
        "ratio_floor": RATIO_FLOOR,
        "events_per_sec": {
            "legacy": total["legacy"] / len(WORKLOADS),
            "stack": total["stack"] / len(WORKLOADS),
            "ratio": total["stack"] / total["legacy"],
        },
        "workloads": workloads,
    }
    return payload


def write_bench_pr5(payload: Dict[str, object], path: Optional[str] = None) -> str:
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr5.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


# --------------------------------------------------------------------- pr10
#
# The PR10 gate measures the vectorized fast path (calendar queue, batched
# SINR kernel, slotted packet pools) on worlds two orders of magnitude
# larger than the PR5 gate: 1k- and 5k-node grids carrying 64 persistent
# greedy-geo unicast streams.  Every cell of the {fast on/off} x {tracing
# on/off} matrix must produce the same trace fingerprint across the fast
# arms (the vectorized path is bit-identical, not merely close), the
# fast-on/tracing-off arm must clear 3x the BENCH_pr8 tracing-off baseline,
# and the absolute tracing tax (wall microseconds added per event, median
# of paired on/off rounds) must stay within the 10% budget PR8 gated
# against — 10% of the PR8-era per-event time.  The tax is gated in
# absolute terms because this PR shrinks the denominator: events are 3-4x
# faster, so the same (in fact smaller) tax reads as a larger *fraction*
# of a much smaller event budget.  Both numbers are reported.

BENCH_PR10_SCHEMA = "bench-pr10/1"

#: Fast-on/tracing-off events/sec must reach this multiple of the
#: BENCH_pr8 tracing-off baseline in every world.
PR10_FLOOR_RATIO = 3.0

#: Fallback for the BENCH_pr8 tracing-off baseline (events/sec) when the
#: artifact is not present next to ROADMAP.md.
PR10_BASELINE_FALLBACK = 16326.307007931164

#: The tracing tax may not exceed this fraction of the *baseline* event
#: budget (1e6 / baseline microseconds per event).
PR10_TAX_BUDGET_FRAC = 0.10

#: World name -> grid side (1024 and 5041 nodes at 60 m spacing).
PR10_WORLDS = {"1k": 32, "5k": 71}

PR10_SEED = 41
PR10_MESSAGES = 5000
PR10_PAIRS = 64
PR10_ROUNDS = 5


def _run_pr10_workload(n_side: int, tracing: bool):
    """One deterministic pr10 run; returns (fingerprint, events, wall_s).

    64 persistent source->destination streams on an ``n_side`` x
    ``n_side`` grid (60 m spacing), greedy-geo routed, 5000 messages at a
    20 ms clip.  Persistent streams keep the forwarding working set hot —
    the regime the next-hop/pair caches and the calendar queue are built
    for — and the fixed pair table makes every run bit-reproducible.
    """
    sim = Simulator(seed=PR10_SEED)
    if tracing:
        sim.enable_packet_tracing()
    net = Network(sim, Channel(seed=sim.rng.seed))
    node_id = 1
    for row in range(n_side):
        for col in range(n_side):
            net.create_node(node_id, Point(col * 60.0, row * 60.0))
            node_id += 1
    ids = sorted(net.nodes)
    router = GreedyGeoRouter(net)
    router.attach_all(ids)
    svc = MessageService(router)
    n = len(ids)
    for i in range(PR10_MESSAGES):
        pair = i % PR10_PAIRS
        src = ids[(7919 * pair) % n]
        dst = ids[(104729 * pair + 13) % n]
        if dst == src:
            dst = ids[(dst + 1) % n]
        sim.call_at(
            1.0 + i * 0.02,
            lambda s=src, d=dst, k=i: svc.send(s, d, payload=("m", k)),
        )
    gc.collect()
    t0 = time.perf_counter()
    sim.run(until=600.0)
    wall_s = time.perf_counter() - t0
    return sim.trace.fingerprint(), sim.events_processed, wall_s


def _with_fast_path(value: str, fn: Callable[[], Tuple[str, int, float]]):
    """Run ``fn`` with ``REPRO_FAST_PATH`` pinned to ``value``.

    The gate is resolved at dispatcher construction, so the environment
    must cover world build and run; it is restored (and the cached gate
    refreshed) afterwards no matter what.
    """
    old = os.environ.get("REPRO_FAST_PATH")
    os.environ["REPRO_FAST_PATH"] = value
    fastpath.refresh()
    try:
        return fn()
    finally:
        if old is None:
            os.environ.pop("REPRO_FAST_PATH", None)
        else:
            os.environ["REPRO_FAST_PATH"] = old
        fastpath.refresh()


def _pr10_baseline() -> Dict[str, object]:
    """The BENCH_pr8 tracing-off baseline this gate multiplies."""
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_pr8.json",
    )
    baseline: Dict[str, object] = {
        "source": "BENCH_pr8.json",
        "events_per_sec": PR10_BASELINE_FALLBACK,
        "from_artifact": False,
    }
    try:
        with open(path, encoding="utf-8") as fh:
            baseline["events_per_sec"] = json.load(fh)["events_per_sec"][
                "tracing_off"
            ]
            baseline["from_artifact"] = True
    except (OSError, KeyError, ValueError):
        pass
    return baseline


def bench_pr10() -> Dict[str, object]:
    baseline = _pr10_baseline()
    baseline_eps = float(baseline["events_per_sec"])
    floor_eps = PR10_FLOOR_RATIO * baseline_eps
    budget_us = PR10_TAX_BUDGET_FRAC * 1e6 / baseline_eps

    worlds: Dict[str, Dict[str, object]] = {}
    for name, n_side in PR10_WORLDS.items():
        cells: Dict[str, List[float]] = {}
        prints: Dict[str, str] = {}
        events: Dict[str, int] = {}
        # Interleaved rounds: each round visits every cell back-to-back so
        # paired statistics share one host-contention window (the
        # BENCH_pr8 protocol).
        for _ in range(PR10_ROUNDS):
            for fast in (True, False):
                for tracing in (False, True):
                    key = (
                        f"fast_{'on' if fast else 'off'}/"
                        f"tracing_{'on' if tracing else 'off'}"
                    )
                    fp, n_events, wall_s = _with_fast_path(
                        "1" if fast else "0",
                        lambda t=tracing: _run_pr10_workload(n_side, t),
                    )
                    cells.setdefault(key, []).append(n_events / max(wall_s, 1e-9))
                    if key in prints and prints[key] != fp:
                        raise AssertionError(
                            f"{name}/{key}: fingerprint changed between "
                            "rounds — the run is not deterministic"
                        )
                    prints[key] = fp
                    events[key] = n_events
        rates = {key: max(vals) for key, vals in cells.items()}
        # Tracing tax on the fast path: median of paired per-round deltas
        # in microseconds per event (common-mode host noise cancels).
        tax_us = statistics.median(
            1e6 / on - 1e6 / off
            for on, off in zip(
                cells["fast_on/tracing_on"], cells["fast_on/tracing_off"]
            )
        )
        overhead_frac = statistics.median(
            1.0 - on / off
            for on, off in zip(
                cells["fast_on/tracing_on"], cells["fast_on/tracing_off"]
            )
        )
        worlds[name] = {
            "n_side": n_side,
            "n_nodes": n_side * n_side,
            "events": events["fast_on/tracing_off"],
            "events_per_sec": rates,
            "fingerprints": prints,
            "fingerprint_match": {
                "tracing_off": prints["fast_on/tracing_off"]
                == prints["fast_off/tracing_off"],
                "tracing_on": prints["fast_on/tracing_on"]
                == prints["fast_off/tracing_on"],
            },
            "speedup_vs_baseline": rates["fast_on/tracing_off"] / baseline_eps,
            "fastpath_speedup": rates["fast_on/tracing_off"]
            / rates["fast_off/tracing_off"],
            "tracing": {
                "tax_us_per_event": tax_us,
                "overhead_frac": overhead_frac,
            },
        }
        print(
            f"{name:>3}: fast-on {rates['fast_on/tracing_off']:,.0f} ev/s "
            f"({worlds[name]['speedup_vs_baseline']:.2f}x baseline), "
            f"fast-off {rates['fast_off/tracing_off']:,.0f} ev/s, "
            f"tracing tax {tax_us:.2f} us/event "
            f"({overhead_frac:.1%} of the fast event budget)"
        )

    return {
        "schema": BENCH_PR10_SCHEMA,
        "baseline": baseline,
        "floor": {
            "ratio": PR10_FLOOR_RATIO,
            "events_per_sec": floor_eps,
        },
        "tracing_tax": {
            "budget_frac": PR10_TAX_BUDGET_FRAC,
            "baseline_event_budget_us": 1e6 / baseline_eps,
            "budget_us_per_event": budget_us,
        },
        "worlds": worlds,
        "methodology": {
            "workload": (
                f"{PR10_PAIRS} persistent greedy-geo unicast streams, "
                f"{PR10_MESSAGES} messages at 20 ms, 60 m grid spacing, "
                f"seed {PR10_SEED}"
            ),
            "rounds": PR10_ROUNDS,
            "protocol": (
                "interleaved cells per round, gc.collect() before each "
                "timed run; rates are best-of-rounds, tracing tax is the "
                "median paired on/off delta on the fast arms"
            ),
        },
    }


def write_bench_pr10(payload: Dict[str, object], path: Optional[str] = None) -> str:
    if path is None:
        out_dir = os.environ.get("REPRO_BENCH_JSON_DIR") or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "BENCH_pr10.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(json_safe(payload), fh, indent=2, allow_nan=False)
        fh.write("\n")
    return path


def main_pr10() -> int:
    payload = bench_pr10()
    path = write_bench_pr10(payload)
    print(f"wrote {path}")
    ok = True
    floor_eps = payload["floor"]["events_per_sec"]
    budget_us = payload["tracing_tax"]["budget_us_per_event"]
    for name, row in payload["worlds"].items():
        fast_on = row["events_per_sec"]["fast_on/tracing_off"]
        if fast_on < floor_eps:
            print(
                f"FAIL: {name}: fast path at {fast_on:,.0f} ev/s, floor is "
                f"{floor_eps:,.0f} ({PR10_FLOOR_RATIO}x BENCH_pr8 baseline)"
            )
            ok = False
        for arm, matched in row["fingerprint_match"].items():
            if not matched:
                print(
                    f"FAIL: {name}/{arm}: vectorized fast path diverged "
                    "from the scalar path"
                )
                ok = False
        tax_us = row["tracing"]["tax_us_per_event"]
        if tax_us > budget_us:
            print(
                f"FAIL: {name}: tracing tax {tax_us:.2f} us/event exceeds "
                f"the {budget_us:.2f} us budget "
                f"({PR10_TAX_BUDGET_FRAC:.0%} of the baseline event budget)"
            )
            ok = False
    if ok:
        print(
            f"OK: fast path >= {PR10_FLOOR_RATIO}x baseline in every world, "
            "fingerprints bit-identical across fast arms, tracing tax "
            "within budget"
        )
    return 0 if ok else 1


def main() -> int:
    payload = bench()
    path = write_bench_pr5(payload)
    print(f"wrote {path}")
    ok = True
    for name, row in payload["workloads"].items():
        if not row["fingerprint_match"]:
            print(f"FAIL: {name}: dispatcher diverged from legacy behavior")
            ok = False
        if row["ratio"] < RATIO_FLOOR:
            print(
                f"FAIL: {name}: dispatcher at {row['ratio']:.3f}x legacy "
                f"(floor {RATIO_FLOOR})"
            )
            ok = False
    if ok:
        print(f"OK: dispatcher within {(1 - RATIO_FLOOR):.0%} of legacy throughput")
    return 0 if ok else 1


if __name__ == "__main__":
    if "--pr10" in sys.argv[1:]:
        sys.exit(main_pr10())
    sys.exit(main())
