"""E6 (§I, §VI): command by intent shortens the decision loop.

Decision requests about a drifting situation are served by three C2 modes;
the envelope-width sweep shows how much delegation buys how much loop.
Expected shape: hierarchical >> intent >> autonomous in latency and
staleness; intent-mode latency falls monotonically with envelope width.
"""

from common import ResultTable, run_and_print

from repro import Simulator
from repro.core.services.c2 import C2Comparison, C2Mode


def _run(mode, envelope=0.7, *, seed=5, duration=4 * 3600.0):
    sim = Simulator(seed=seed)
    comparison = C2Comparison(
        sim,
        mode,
        arrival_rate_hz=0.1,
        envelope_fraction=envelope,
        drift_speed_m_s=1.5,
    )
    comparison.start(duration)
    sim.run(until=3 * duration)
    return comparison.report()


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E6 — decision latency & information staleness by C2 mode",
        ["mode", "envelope", "decisions", "latency_mean_s", "latency_p95_s",
         "staleness_mean_m", "stale_fraction"],
    )
    duration = (2 * 3600.0) if quick else (8 * 3600.0)
    for mode in C2Mode:
        report = _run(mode, duration=duration)
        table.add_row(
            mode=mode.value,
            envelope=0.7,
            decisions=report["decisions"],
            latency_mean_s=report["latency_mean_s"],
            latency_p95_s=report["latency_p95_s"],
            staleness_mean_m=report["staleness_mean_m"],
            stale_fraction=report["stale_fraction"],
        )
    envelopes = (0.25, 0.75) if quick else (0.0, 0.25, 0.5, 0.75, 1.0)
    for envelope in envelopes:
        report = _run(C2Mode.INTENT, envelope, duration=duration)
        table.add_row(
            mode="intent",
            envelope=envelope,
            decisions=report["decisions"],
            latency_mean_s=report["latency_mean_s"],
            latency_p95_s=report["latency_p95_s"],
            staleness_mean_m=report["staleness_mean_m"],
            stale_fraction=report["stale_fraction"],
        )
    return table


def test_e6_intent(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    by_mode = {r["mode"]: r for r in rows[:3]}
    assert (
        by_mode["hierarchical"]["latency_mean_s"]
        > by_mode["intent"]["latency_mean_s"]
        > by_mode["autonomous"]["latency_mean_s"]
    )
    assert (
        by_mode["hierarchical"]["stale_fraction"]
        >= by_mode["intent"]["stale_fraction"]
        >= by_mode["autonomous"]["stale_fraction"]
    )
    # Wider envelope, shorter loop.
    sweep = [r for r in rows[3:]]
    assert sweep[-1]["latency_mean_s"] <= sweep[0]["latency_mean_s"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
