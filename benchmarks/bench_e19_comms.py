"""E19 (extension; §IV-B dynamic network reallocation): transport switching.

A squad operates through three connectivity phases: clustered (0-100 s),
dispersed into two islands bridged only by a ferry vehicle (100-300 s),
then regrouped (300-400 s).  Messages flow throughout.  Compare a static
mesh transport (AODV), a static DTN transport (spray-and-wait), and the
adaptive :class:`TransportSwitcher`.  Expected shape: mesh loses the
dispersed phase entirely; DTN pays overhead always; the switcher tracks
whichever regime it is in: DTN-grade delivery through the partition,
mesh-grade latency while connected.  (At this squad scale spray-and-wait is
actually *cheaper* per delivery than AODV — discovery floods dominate — so
the static-DTN cost shows up as latency, not transmissions.)
"""

import numpy as np
from common import ResultTable, run_and_print

from repro import Simulator
from repro.core.adaptation.comms import TransportSwitcher
from repro.net.channel import Channel
from repro.net.node import Network
from repro.net.routing import AodvRouter, SprayAndWaitRouter
from repro.net.transport import MessageService
from repro.util.geometry import Point

N_NODES = 10
HORIZON = 400.0


def _build(seed):
    sim = Simulator(seed=seed)
    net = Network(sim, Channel(shadowing_sigma_db=0, fading_sigma_db=0, seed=seed))
    for i in range(1, N_NODES + 1):
        net.create_node(i, Point(i * 30.0, 0.0))
    return sim, net


def _phase_script(sim, net):
    """Disperse at t=100 (islands 1-5 | 6-10 + ferry node 5), regroup at 300."""

    def disperse():
        for i in range(6, N_NODES + 1):
            net.set_position(i, Point(5000.0 + i * 30.0, 0.0))

    def regroup():
        # Bring the dispersed half AND the ferry home.
        for i in range(5, N_NODES + 1):
            net.set_position(i, Point(i * 30.0, 0.0))

    def shuttle():
        if 100.0 <= sim.now < 300.0:
            pos = net.node(5).position
            target_x = 5150.0 if pos.x < 2500 else 150.0
            net.set_position(5, Point(target_x, 0.0))

    sim.call_at(100.0, disperse)
    sim.call_at(300.0, regroup)
    sim.every(20.0, shuttle)


def _workload(sim, send_fn, rng):
    """Poisson message arrivals (mean 10 s) so send times do not align
    with DTN contact sweeps (lockstep periods would let bundles ride the
    very next sweep and make DTN latency look artificially instant)."""

    def tick():
        a, b = rng.choice(np.arange(1, N_NODES + 1), size=2, replace=False)
        send_fn(int(a), int(b))
        sim.call_in(float(rng.exponential(10.0)), tick)

    sim.call_in(float(rng.exponential(10.0)), tick)


def _run(transport: str, seed: int = 13):
    sim, net = _build(seed)
    _phase_script(sim, net)
    rng = np.random.default_rng(seed)

    if transport == "adaptive":
        switcher = TransportSwitcher(
            net,
            list(range(1, N_NODES + 1)),
            {
                "mesh": AodvRouter(net),
                "dtn": SprayAndWaitRouter(net, copies=4, contact_period_s=7.0),
            },
            check_period_s=10.0,
        )
        switcher.start()
        _workload(sim, lambda a, b: switcher.send(a, b), rng)
        sim.run(until=HORIZON)
        latencies = [
            r.latency_s for r in switcher._receipts if r.latency_s is not None
        ]
        return {
            "delivery": switcher.delivery_ratio(),
            "latency_p50_s": float(np.median(latencies)) if latencies else float("nan"),
            "tx_per_delivery": (
                sim.metrics.counter("net.tx_attempts")
                / max(1, switcher.delivered_count())
            ),
            "switches": switcher.switches,
        }

    if transport == "mesh":
        router = AodvRouter(net)
    else:
        router = SprayAndWaitRouter(net, copies=4, contact_period_s=7.0)
    router.attach_all(range(1, N_NODES + 1))
    service = MessageService(router)
    _workload(sim, lambda a, b: service.send(a, b), rng)
    sim.run(until=HORIZON)
    delivered = sum(1 for r in service.receipts.values() if r.delivered)
    latencies = [
        r.latency_s
        for r in service.receipts.values()
        if r.latency_s is not None
    ]
    return {
        "delivery": service.delivery_ratio(),
        "latency_p50_s": float(np.median(latencies)) if latencies else float("nan"),
        "tx_per_delivery": (
            sim.metrics.counter("net.tx_attempts") / max(1, delivered)
        ),
        "switches": 0,
    }


def run_experiment(quick: bool = True) -> ResultTable:
    seeds = (13,) if quick else (13, 14, 15)
    table = ResultTable(
        "E19 — transport regimes through disperse/regroup phases",
        ["transport", "delivery_ratio", "latency_p50_s", "tx_per_delivery", "switches"],
    )
    for transport in ("mesh", "dtn", "adaptive"):
        delivery = latency = tx = switches = 0.0
        for seed in seeds:
            out = _run(transport, seed)
            delivery += out["delivery"]
            latency += out["latency_p50_s"]
            tx += out["tx_per_delivery"]
            switches += out["switches"]
        n = len(seeds)
        table.add_row(
            transport=transport,
            delivery_ratio=delivery / n,
            latency_p50_s=latency / n,
            tx_per_delivery=tx / n,
            switches=switches / n,
        )
    return table


def test_e19_transport_switching(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["transport"]: r for r in table.to_dicts()}
    # The partition phase costs the static mesh real delivery.
    assert rows["adaptive"]["delivery_ratio"] > rows["mesh"]["delivery_ratio"]
    # The switcher actually switched (out and back).
    assert rows["adaptive"]["switches"] >= 2
    # The static DTN pays its price in latency while connected.
    assert rows["adaptive"]["latency_p50_s"] <= rows["dtn"]["latency_p50_s"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
