"""E4 (Figure 3 + §IV): adaptive reflexes after disruption.

A surveillance composite loses half its sensors to a kinetic strike while
jammers light up (degrading RF/visual sensing).  Three response policies:

* ``none`` — no adaptation (the brittle baseline);
* ``reflex`` — fast local adaptation: modality switching plus enlisting
  nearby spare sensors (the paper's "instinctual reflexes", ~5 s);
* ``resynthesis`` — global re-composition from the surviving inventory
  (higher quality, but it models the slower decision loop, ~60 s).

Expected shape: both adaptive policies recover coverage while ``none``
stays degraded; the reflex recovers *sooner*, re-synthesis recovers
*more* — the two-timescale structure of Figure 3.
"""

from common import ResultTable, run_and_print, standard_scenario

from repro.core.adaptation.perception import ModalityManager
from repro.core.mission import MissionGoal, MissionType
from repro.core.services.surveillance import SurveillanceService
from repro.core.synthesis import GreedyComposer, compile_goal
from repro.net.topology import build_topology
from repro.security.attacks import JammingAttack, NodeDestructionAttack
from repro.things.capabilities import SensingModality
from repro.util.geometry import distance

ATTACK_T = 100.0
HORIZON = 400.0
# Mid-range ground modalities only: long-range drone radar would cover the
# whole district with one asset and leave nothing to destroy.
MODALITIES = frozenset({SensingModality.SEISMIC, SensingModality.ACOUSTIC})


def _compose_sensors(scenario):
    goal = MissionGoal(
        MissionType.SURVEIL, scenario.region, min_coverage=0.7,
        modalities=MODALITIES,
    )
    requirements = compile_goal(goal)
    pool = [a for a in scenario.inventory.blue() if a.alive and a.sensors]
    topology = build_topology(scenario.network)
    composite = GreedyComposer().compose(requirements, pool, topology)
    return [scenario.inventory.get(a) for a in composite.sensors]


def _run_policy(policy: str, seed: int = 41):
    scenario = standard_scenario(
        seed, n_blue=120, n_red=0, n_gray=0, jammers=3
    )
    scenario.start()
    sensors = _compose_sensors(scenario)
    service = SurveillanceService(scenario, sensors, sample_period_s=2.0)
    service.start()
    manager = ModalityManager(sensors)
    sim = scenario.sim

    victims = sensors[: max(1, len(sensors) // 2)]
    NodeDestructionAttack(scenario, [a.id for a in victims]).schedule(ATTACK_T)
    JammingAttack(scenario).schedule(ATTACK_T, duration_s=HORIZON)

    def reflex():
        # Local: switch modalities and enlist the nearest live spare for
        # each dead composite sensor.
        manager.update(scenario.environment)
        spares = [
            a
            for a in scenario.inventory.blue()
            if a.alive and a.sensors and a not in service.sensor_assets
        ]
        replacements = list(service.usable_sensors())
        for dead in victims:
            if not spares:
                break
            nearest = min(
                spares, key=lambda s: distance(s.position, dead.position)
            )
            spares.remove(nearest)
            replacements.append(nearest)
        service.replace_sensors(replacements)
        manager.assets = list(replacements)
        manager.update(scenario.environment)

    def resynthesize():
        fresh = _compose_sensors(scenario)
        service.replace_sensors(fresh)
        refreshed = ModalityManager(fresh)
        refreshed.update(scenario.environment)

    if policy == "reflex":
        sim.call_at(ATTACK_T + 5.0, reflex)
    elif policy == "resynthesis":
        sim.call_at(ATTACK_T + 60.0, resynthesize)

    baseline = service.coverage()
    sim.run(until=HORIZON)
    series = sim.metrics.series("surveillance.coverage")
    post = series.window(ATTACK_T + 1, HORIZON)
    # Recovery target: 80% of pre-attack coverage.  Half the composite is
    # permanently destroyed, so neither policy can restore 100%; 80% marks
    # "service effectively restored".
    recovery = service.recovery_time_s(ATTACK_T, 0.8 * baseline)
    return {
        "baseline": baseline,
        "min_after": min(post) if post else float("nan"),
        "mean_after": sum(post) / len(post) if post else float("nan"),
        "final": series.values[-1] if series.values else float("nan"),
        "recovery_s": recovery if recovery is not None else float("inf"),
    }


def run_experiment(quick: bool = True) -> ResultTable:
    table = ResultTable(
        "E4 / Fig.3 — coverage recovery after strike + jamming",
        ["policy", "baseline", "min_after", "mean_after", "final",
         "recovery_s"],
    )
    for policy in ("none", "reflex", "resynthesis"):
        out = _run_policy(policy)
        table.add_row(policy=policy, **out)
    return table


def test_fig3_reflexes(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["policy"]: r for r in table.to_dicts()}
    # Adaptive policies end better than no adaptation.
    assert rows["reflex"]["final"] >= rows["none"]["final"]
    assert rows["resynthesis"]["final"] >= rows["none"]["final"]
    # The reflex acts sooner than re-synthesis.
    assert rows["reflex"]["recovery_s"] <= rows["resynthesis"]["recovery_s"]


if __name__ == "__main__":
    run_experiment(quick=False).print()
