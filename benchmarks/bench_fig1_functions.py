"""E1 (Figure 1): interaction of synthesis, adaptation, and learning.

The paper's Figure 1 is a conceptual diagram of the three IoBT functions
feeding each other.  This experiment makes it quantitative: an evacuation
mission with each function independently ablated.  Expected shape: the
full stack minimizes hazard exposures; each ablation costs safety, with
adaptation (re-routing) the single most load-bearing function.
"""

from common import ResultTable, run_and_print

from repro import ScenarioBuilder, Simulator
from repro.core.services.evacuation import EvacuationConfig, EvacuationMission

CONFIGURATIONS = [
    ("full", dict()),
    ("no_synthesis", dict(use_synthesis=False)),
    ("no_learning", dict(use_learning=False)),
    ("no_adaptation", dict(use_adaptation=False)),
    ("none", dict(use_synthesis=False, use_learning=False, use_adaptation=False)),
]


def _one_mission(seed: int, **flags):
    sim = Simulator(seed=seed)
    scenario = (
        ScenarioBuilder(sim)
        .urban_grid(blocks=8, block_size_m=100.0, density=0.4)
        .population(n_blue=80, n_red=40, n_gray=30)
        .build()
    )
    return EvacuationMission(scenario, EvacuationConfig(**flags)).run()


def run_experiment(quick: bool = True) -> ResultTable:
    seeds = (11, 12, 13) if quick else tuple(range(11, 21))
    table = ResultTable(
        "E1 / Fig.1 — evacuation mission, IoBT-function ablation",
        ["configuration", "evacuated_frac", "exposures", "mean_time_s",
         "belief_accuracy"],
    )
    for label, flags in CONFIGURATIONS:
        ev = ex = ti = acc = 0.0
        for seed in seeds:
            result = _one_mission(seed, **flags)
            ev += result.evacuated_fraction
            ex += result.exposures
            ti += result.mean_evacuation_time_s
            acc += result.hazard_belief_accuracy
        n = len(seeds)
        table.add_row(
            configuration=label,
            evacuated_frac=ev / n,
            exposures=ex / n,
            mean_time_s=ti / n,
            belief_accuracy=acc / n,
        )
    return table


def test_fig1_function_ablation(benchmark):
    table = run_and_print(benchmark, run_experiment)
    exposures = {
        row["configuration"]: row["exposures"] for row in table.to_dicts()
    }
    # The paper's argument: the full stack is the safest configuration.
    assert exposures["full"] <= min(
        exposures["no_adaptation"], exposures["none"]
    )


if __name__ == "__main__":
    run_experiment(quick=False).print()
