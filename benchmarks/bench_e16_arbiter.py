"""E16 (extension; §II "diverse missions ... competing for resources").

A stream of missions with mixed priorities arrives over a fixed inventory.
Compare arbitration policies: no preemption (FCFS hold) vs priority
preemption.  Expected shape: without preemption, early low-priority
missions starve late high-priority ones; with preemption, high-priority
admission stays near 1.0 at the cost of preempting low-priority work.
"""

from common import ResultTable, run_and_print, standard_scenario

from repro.core.mission import MissionGoal, MissionType
from repro.core.services.arbiter import MissionArbiter, MissionState
from repro.things.capabilities import SensingModality
from repro.util.geometry import Region


def _goal(scenario, rng, priority):
    # Overlapping half-region missions with demanding coverage: the
    # inventory can support only a couple at a time, so contention is real.
    w = scenario.region.width / 2
    x0 = float(rng.choice([0.0, w]))
    return MissionGoal(
        MissionType.SURVEIL,
        Region(x0, 0.0, x0 + w, scenario.region.height),
        min_coverage=0.75,
        priority=priority,
        duration_s=float(rng.uniform(100.0, 250.0)),
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
             SensingModality.CAMERA}
        ),
    )


def _run(preemption: bool, n_missions: int, seed: int = 81):
    scenario = standard_scenario(seed, n_blue=55, n_red=0, n_gray=0)
    arbiter = MissionArbiter(scenario, allow_preemption=preemption)
    sim = scenario.sim
    rng = sim.rng.get("mission-stream")
    high_priority_records = []

    def submit_one(i):
        priority = 10 if i % 3 == 0 else 1
        record = arbiter.submit(_goal(scenario, rng, priority))
        if priority == 10:
            high_priority_records.append(record)

    for i in range(n_missions):
        sim.call_at(20.0 + i * 40.0, lambda i=i: submit_one(i))
    sim.run(until=20.0 + n_missions * 40.0 + 300.0)
    report = arbiter.report()
    hp_admitted = sum(
        1
        for r in high_priority_records
        if r.state in (MissionState.ACTIVE, MissionState.COMPLETED)
    )
    report["hp_admission_rate"] = (
        hp_admitted / len(high_priority_records)
        if high_priority_records
        else float("nan")
    )
    return report


def run_experiment(quick: bool = True) -> ResultTable:
    n_missions = 9 if quick else 18
    table = ResultTable(
        "E16 — mission arbitration: priority preemption vs FCFS hold",
        ["policy", "submitted", "admission_rate", "hp_admission_rate",
         "preemptions"],
    )
    for preemption in (False, True):
        report = _run(preemption, n_missions)
        table.add_row(
            policy="preemptive" if preemption else "fcfs_hold",
            submitted=report["submitted"],
            admission_rate=report["admission_rate"],
            hp_admission_rate=report["hp_admission_rate"],
            preemptions=report["preemptions"],
        )
    return table


def test_e16_arbiter(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = {r["policy"]: r for r in table.to_dicts()}
    # Preemption never lowers high-priority admission.
    assert (
        rows["preemptive"]["hp_admission_rate"]
        >= rows["fcfs_hold"]["hp_admission_rate"]
    )
    assert rows["fcfs_hold"]["preemptions"] == 0


if __name__ == "__main__":
    run_experiment(quick=False).print()
