"""E2 (Figure 2 + §III): composition at scale, "minutes" for 10,000 nodes.

The paper requires assembling composites from inventories of "1,000s to
10,000s of nodes on demand and within an appropriately short time (e.g.,
minutes)".  This experiment sweeps inventory size and compares composer
strategies.  Expected shape: greedy composition stays within the minutes
budget at 10^4 nodes and dominates the random baseline on requirement
satisfaction; annealing buys a little quality for much more time.
"""

import time

import numpy as np
from common import ResultTable, run_and_print, standard_scenario

from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import (
    AnnealingComposer,
    GreedyComposer,
    RandomComposer,
    compile_goal,
    evaluate_composite,
)
from repro.net.topology import build_topology
from repro.things.capabilities import SensingModality


def _compose_at_scale(n_assets: int, composer_name: str, seed: int = 3):
    # Scale the district with the population (constant density).
    blocks = max(4, int(np.sqrt(n_assets / 2.0)))
    scenario = standard_scenario(
        seed, blocks=blocks, n_blue=n_assets, n_red=0, n_gray=0
    )
    goal = MissionGoal(
        MissionType.SURVEIL,
        scenario.region,
        min_coverage=0.6,
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
             SensingModality.CAMERA}
        ),
    )
    requirements = compile_goal(goal)
    pool = [a for a in scenario.inventory.blue() if a.alive]
    t0 = time.perf_counter()
    topology = build_topology(scenario.network)
    if composer_name == "greedy":
        composite = GreedyComposer().compose(requirements, pool, topology)
    elif composer_name == "annealing":
        composite = AnnealingComposer(
            np.random.default_rng(seed), iterations=30
        ).compose(requirements, pool, topology)
    else:
        composite = RandomComposer(np.random.default_rng(seed)).compose(
            requirements, pool, topology
        )
    elapsed = time.perf_counter() - t0
    return composite, elapsed


def run_experiment(quick: bool = True) -> ResultTable:
    sizes = (100, 300, 1000) if quick else (100, 300, 1000, 3000, 10_000)
    table = ResultTable(
        "E2 / Fig.2 — composition time & quality vs inventory size",
        ["n_assets", "composer", "time_s", "coverage", "satisfied", "score",
         "members"],
    )
    for n in sizes:
        composers = ["greedy", "random"] if n <= 1000 else ["greedy"]
        if not quick and n <= 1000:
            composers.append("annealing")
        for name in composers:
            composite, elapsed = _compose_at_scale(n, name)
            table.add_row(
                n_assets=n,
                composer=name,
                time_s=elapsed,
                coverage=composite.coverage,
                satisfied=composite.satisfies(),
                score=evaluate_composite(composite),
                members=composite.size,
            )
    return table


def test_fig2_synthesis_scale(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    greedy = [r for r in rows if r["composer"] == "greedy"]
    # Greedy must stay far inside the "minutes" budget at every quick size.
    assert all(r["time_s"] < 60.0 for r in greedy)
    # And beat random on composite quality at equal scale.
    for n in {r["n_assets"] for r in rows}:
        g = [r for r in rows if r["n_assets"] == n and r["composer"] == "greedy"]
        r_ = [r for r in rows if r["n_assets"] == n and r["composer"] == "random"]
        if g and r_:
            assert g[0]["score"] >= r_[0]["score"] - 1e-9


if __name__ == "__main__":
    run_experiment(quick=False).print()
