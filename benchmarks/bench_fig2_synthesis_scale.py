"""E2 (Figure 2 + §III): composition at scale, "minutes" for 10,000 nodes.

The paper requires assembling composites from inventories of "1,000s to
10,000s of nodes on demand and within an appropriately short time (e.g.,
minutes)".  This experiment sweeps inventory size and compares composer
strategies.  Expected shape: greedy composition stays within the minutes
budget at 10^4 nodes and dominates the random baseline on requirement
satisfaction; annealing buys a little quality for much more time.

The sweep runs through :mod:`repro.campaign` (`composer x n_assets` grid,
explicit seed 3 as before, so numbers match the pre-campaign harness);
``REPRO_BENCH_WORKERS`` parallelizes it and ``REPRO_CAMPAIGN_CACHE`` makes
re-runs free without changing the table.
"""

import time

import numpy as np
from common import ResultTable, campaign_runner, run_and_print, standard_scenario

from repro.campaign import SweepSpec
from repro.core.mission import MissionGoal, MissionType
from repro.core.synthesis import (
    AnnealingComposer,
    GreedyComposer,
    RandomComposer,
    compile_goal,
    evaluate_composite,
)
from repro.net.topology import build_topology
from repro.things.capabilities import SensingModality

QUICK_SIZES = (100, 300, 1000)
FULL_SIZES = (100, 300, 1000, 3000, 10_000)


def _compose_at_scale(n_assets: int, composer_name: str, seed: int = 3):
    # Scale the district with the population (constant density).
    blocks = max(4, int(np.sqrt(n_assets / 2.0)))
    scenario = standard_scenario(
        seed, blocks=blocks, n_blue=n_assets, n_red=0, n_gray=0
    )
    goal = MissionGoal(
        MissionType.SURVEIL,
        scenario.region,
        min_coverage=0.6,
        modalities=frozenset(
            {SensingModality.SEISMIC, SensingModality.ACOUSTIC,
             SensingModality.CAMERA}
        ),
    )
    requirements = compile_goal(goal)
    pool = [a for a in scenario.inventory.blue() if a.alive]
    sim = scenario.network.sim
    t0 = time.perf_counter()
    with sim.span("synthesis", composer=composer_name, n_assets=n_assets):
        topology = build_topology(scenario.network)
        if composer_name == "greedy":
            composite = GreedyComposer().compose(requirements, pool, topology)
        elif composer_name == "annealing":
            composite = AnnealingComposer(
                np.random.default_rng(seed), iterations=30
            ).compose(requirements, pool, topology)
        else:
            composite = RandomComposer(np.random.default_rng(seed)).compose(
                requirements, pool, topology
            )
    elapsed = time.perf_counter() - t0
    return composite, elapsed


def compose_task(params, seed):
    """Campaign task: one (n_assets, composer) cell."""
    composite, elapsed = _compose_at_scale(
        params["n_assets"], params["composer"], seed=seed
    )
    return {
        "time_s": elapsed,
        "coverage": composite.coverage,
        "satisfied": composite.satisfies(),
        "score": evaluate_composite(composite),
        "members": composite.size,
    }


def _selected(params, quick: bool) -> bool:
    """The composer set narrows as inventories grow (annealing: full only)."""
    n, composer = params["n_assets"], params["composer"]
    if composer == "greedy":
        return True
    if n > 1000:
        return False
    if composer == "random":
        return True
    return not quick  # annealing


def run_experiment(quick: bool = True) -> ResultTable:
    spec = SweepSpec(
        # One stable name: quick cells content-address identically in full
        # mode, so a full run reuses a quick run's cache entries.
        name="fig2-synthesis-scale",
        grid={
            "n_assets": QUICK_SIZES if quick else FULL_SIZES,
            "composer": ("greedy", "random", "annealing"),
        },
        seeds=(3,),  # the legacy harness composed every cell at seed 3
        where=lambda p: _selected(p, quick),
    )
    result = campaign_runner(compose_task).run(spec)
    return result.table(
        "E2 / Fig.2 — composition time & quality vs inventory size",
        param_cols=["n_assets", "composer"],
        metrics=["time_s", "coverage", "satisfied", "score", "members"],
    )


def test_fig2_synthesis_scale(benchmark):
    table = run_and_print(benchmark, run_experiment)
    rows = table.to_dicts()
    greedy = [r for r in rows if r["composer"] == "greedy"]
    # Greedy must stay far inside the "minutes" budget at every quick size.
    assert all(r["time_s"] < 60.0 for r in greedy)
    # And beat random on composite quality at equal scale.
    for n in {r["n_assets"] for r in rows}:
        g = [r for r in rows if r["n_assets"] == n and r["composer"] == "greedy"]
        r_ = [r for r in rows if r["n_assets"] == n and r["composer"] == "random"]
        if g and r_:
            assert g[0]["score"] >= r_[0]["score"] - 1e-9


if __name__ == "__main__":
    run_experiment(quick=False).print()
